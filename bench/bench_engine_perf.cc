// Copyright (c) the ROD reproduction authors.
//
// Perf baseline of the tuple-level simulation engine. Sweeps graph size x
// offered load on the single-run hot path (calendar queue + streaming
// latency metrics vs the legacy binary-heap + store-all-percentiles
// configuration, both in this binary) and the sweep runner (N independent
// runs across the thread pool), reporting events/sec, tuples/sec, sweep
// wall time, and bit-exactness between every configuration pair that must
// agree. Also times the hot path with a telemetry sink attached, so the
// enabled-telemetry overhead is part of the baseline, and runs a small
// telemetry-enabled showcase (chaos run + parallel sweep) whose metrics
// snapshot is embedded in the JSON and whose Chrome trace --trace exports.
// Emits a machine-readable JSON baseline (fields documented in
// docs/BENCH_ENGINE.md) so later PRs can regress against it.
//
//   bench_engine_perf [--mode smoke|full] [--json=PATH] [--trace=PATH]
//                     [--threads=1,2,4,8] [--max-telemetry-overhead=PCT]
//                     [--min-speedup=X]
//
// --mode smoke shrinks the sweep for CI; --json defaults to
// BENCH_engine.json. Exit code is nonzero iff a bit-exactness check fails,
// the enabled-telemetry overhead on the largest workload exceeds
// --max-telemetry-overhead, or the batch-mode speedup over the legacy
// engine on the largest workload falls below --min-speedup (both gates
// default to 0 = disabled).

#include <algorithm>
#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"
#include "runtime/chaos.h"
#include "runtime/supervisor.h"
#include "runtime/sweep.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace {

using namespace rod;

struct Workload {
  size_t streams = 0;
  size_t ops_per_tree = 0;
  double load_level = 0.0;  ///< Fraction of the placement's boundary.
  size_t total_ops() const { return streams * ops_per_tree; }
};

struct SingleRun {
  Workload w;
  double duration = 0.0;
  size_t reps = 0;
  size_t batch_size = 0;  ///< Delivery batch limit of the fast path.
  uint64_t events = 0;  ///< Events per rep (identical across reps).
  size_t input_tuples = 0;
  size_t output_tuples = 0;
  /// kBinaryHeap + exact (store-all) percentiles + batch_size 1: the
  /// engine exactly as it stood before the calendar queue, streaming
  /// latency metrics, and delivery batching landed.
  double legacy_events_per_sec = 0.0;
  double events_per_sec = 0.0;  ///< kCalendar + streaming + batching.
  double tuples_per_sec = 0.0;
  double batch1_events_per_sec = 0.0;  ///< Fast path with batching off.
  double speedup_vs_legacy = 0.0;
  bool bitexact_vs_heap = false;    ///< fast == heap+streaming, same batch.
  bool bitexact_vs_batch1 = false;  ///< fast == batch_size 1, incl. p99.
  bool batch1_vs_legacy = false;    ///< batch1 == legacy (SameResult).
  double telemetry_events_per_sec = 0.0;  ///< Fast path + telemetry sink.
  double telemetry_overhead_pct = 0.0;    ///< 100 * (off/on - 1), by ev/s.
  bool bitexact_vs_telemetry = false;
};

struct SweepRun {
  Workload w;
  size_t cases = 0;
  size_t threads = 0;
  double seconds = 0.0;
  double speedup_vs_1 = 0.0;
  bool bitexact_vs_seq = false;
};

/// One compiled workload: random trees, ROD-placed, rates at `load_level`
/// of the analytic uniform boundary.
struct Setup {
  query::QueryGraph graph;
  place::SystemSpec system;
  Result<query::LoadModel> model{Status::Internal("unset")};
  Result<place::Placement> plan{Status::Internal("unset")};
  std::vector<trace::RateTrace> traces;
};

Setup MakeSetup(const Workload& w, double duration, uint64_t seed) {
  Setup s;
  query::GraphGenOptions gen;
  gen.num_input_streams = w.streams;
  gen.ops_per_tree = w.ops_per_tree;
  // Cheap operators (vs the paper's 0.1-10ms delay ops): the feasibility
  // boundary moves to thousands of tuples/sec, so a run executes millions
  // of events and the measurement exercises the hot loop, not the setup.
  gen.min_cost = 2e-6;
  gen.max_cost = 2e-5;
  Rng rng(seed);
  s.graph = query::GenerateRandomTrees(gen, rng);
  s.model = query::BuildLoadModel(s.graph);
  ROD_CHECK_OK(s.model.status());
  s.system = place::SystemSpec::Homogeneous(std::max<size_t>(2, w.streams));
  s.plan = place::RodPlace(*s.model, s.system);
  ROD_CHECK_OK(s.plan.status());
  const place::PlacementEvaluator eval(*s.model, s.system);
  Vector unit(s.model->num_system_inputs(), 1.0);
  auto boundary = eval.BoundaryScaleAlong(*s.plan, unit);
  ROD_CHECK_OK(boundary.status());
  const double rate = w.load_level * *boundary;
  for (size_t k = 0; k < w.streams; ++k) {
    trace::RateTrace t;
    t.window_sec = duration;
    t.rates = {rate};
    s.traces.push_back(std::move(t));
  }
  return s;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The fields every configuration pair must agree on bit-for-bit.
bool SameResult(const sim::SimulationResult& a,
                const sim::SimulationResult& b) {
  return a.input_tuples == b.input_tuples &&
         a.output_tuples == b.output_tuples &&
         a.processed_events == b.processed_events &&
         a.mean_latency == b.mean_latency && a.max_latency == b.max_latency &&
         a.node_utilization == b.node_utilization &&
         a.final_backlog == b.final_backlog && a.saturated == b.saturated;
}

void WriteJson(const std::string& path, const std::string& mode,
               const std::vector<SingleRun>& singles,
               const std::vector<SweepRun>& sweeps,
               const telemetry::MetricsSnapshot& showcase) {
  std::ofstream out(path);
  telemetry::JsonWriter w(out);
  w.BeginObject();
  w.Key("bench").String("bench_engine_perf");
  w.Key("mode").String(mode);
  w.Key("hardware_concurrency")
      .Uint(std::max(1u, std::thread::hardware_concurrency()));
  bench::WriteBuildMetadata(w);
  w.Key("single_runs").BeginArray();
  for (const SingleRun& r : singles) {
    w.BeginObjectInline();
    w.Key("streams").Uint(r.w.streams);
    w.Key("total_ops").Uint(r.w.total_ops());
    w.Key("load_level").Double(r.w.load_level);
    w.Key("duration").Double(r.duration);
    w.Key("reps").Uint(r.reps);
    w.Key("batch_size").Uint(r.batch_size);
    w.Key("events").Uint(r.events);
    w.Key("input_tuples").Uint(r.input_tuples);
    w.Key("output_tuples").Uint(r.output_tuples);
    w.Key("legacy_events_per_sec").Double(r.legacy_events_per_sec);
    w.Key("events_per_sec").Double(r.events_per_sec);
    w.Key("tuples_per_sec").Double(r.tuples_per_sec);
    w.Key("batch1_events_per_sec").Double(r.batch1_events_per_sec);
    w.Key("speedup_vs_legacy").Double(r.speedup_vs_legacy);
    w.Key("bitexact_vs_heap").Bool(r.bitexact_vs_heap);
    w.Key("bitexact_vs_batch1").Bool(r.bitexact_vs_batch1);
    w.Key("batch1_vs_legacy").Bool(r.batch1_vs_legacy);
    w.Key("telemetry_events_per_sec").Double(r.telemetry_events_per_sec);
    w.Key("telemetry_overhead_pct").Double(r.telemetry_overhead_pct);
    w.Key("bitexact_vs_telemetry").Bool(r.bitexact_vs_telemetry);
    w.EndObject();
  }
  w.EndArray();
  w.Key("sweeps").BeginArray();
  for (const SweepRun& r : sweeps) {
    w.BeginObjectInline();
    w.Key("streams").Uint(r.w.streams);
    w.Key("total_ops").Uint(r.w.total_ops());
    w.Key("load_level").Double(r.w.load_level);
    w.Key("cases").Uint(r.cases);
    w.Key("threads").Uint(r.threads);
    w.Key("seconds").Double(r.seconds);
    w.Key("speedup_vs_1").Double(r.speedup_vs_1);
    w.Key("bitexact_vs_seq").Bool(r.bitexact_vs_seq);
    w.EndObject();
  }
  w.EndArray();
  w.Key("telemetry");
  telemetry::WriteSnapshotJson(showcase, w);
  w.EndObject();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  std::string mode = "full";
  std::string json_path = flags.json_path.empty() ? std::string("BENCH_engine.json")
                                                  : flags.json_path;
  std::vector<size_t> threads_list;
  double max_telemetry_overhead = 0.0;  // 0 disables the check
  double min_speedup = 0.0;             // 0 disables the check
  for (size_t a = 0; a < flags.rest.size(); ++a) {
    const std::string& arg = flags.rest[a];
    if (arg == "--mode" && a + 1 < flags.rest.size()) {
      mode = flags.rest[++a];
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_list = bench::ParseThreadList(arg.substr(10));
    } else if (arg.rfind("--max-telemetry-overhead=", 0) == 0) {
      max_telemetry_overhead = std::stod(arg.substr(25));
    } else if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::stod(arg.substr(14));
    } else {
      std::cerr << "usage: bench_engine_perf [--mode smoke|full] "
                   "[--json=PATH] [--trace=PATH] [--threads=1,2,4,8] "
                   "[--max-telemetry-overhead=PCT] [--min-speedup=X] "
                   "[--serve=PORT] [--flightrecorder=PATH]\n";
      return 2;
    }
  }
  // The live plane (--serve / --flightrecorder) gets its own session and
  // sink; --json/--trace stay owned by this binary's baseline writer and
  // showcase, so they are cleared from the session's view.
  bench::BenchFlags plane_flags = flags;
  plane_flags.json_path.clear();
  plane_flags.trace_path.clear();
  bench::TelemetrySession plane(plane_flags);
  plane.set_ready(true);
  if (mode != "smoke" && mode != "full") {
    std::cerr << "unknown mode '" << mode << "' (want smoke or full)\n";
    return 2;
  }
  const bool smoke = mode == "smoke";
  if (threads_list.empty()) {
    threads_list = smoke ? std::vector<size_t>{1, 2}
                         : std::vector<size_t>{1, 2, 4, 8};
  }

  // Graph size x offered load; the last entry is the "largest smoke
  // configuration" the acceptance criterion pins the single-run speedup to.
  const std::vector<Workload> workloads =
      smoke ? std::vector<Workload>{{2, 10, 0.5}, {4, 25, 0.8}}
            : std::vector<Workload>{{2, 10, 0.5}, {4, 25, 0.5}, {4, 25, 0.8},
                                    {5, 40, 0.8}};
  const double duration = smoke ? 15.0 : 40.0;
  const size_t reps = smoke ? 2 : 4;
  // The sweep section re-simulates the largest workload many times per
  // thread count, so it gets a shorter horizon than the single-run path.
  const double sweep_duration = smoke ? 6.0 : 12.0;
  const size_t sweep_cases = smoke ? 6 : 16;

  bench::Banner("engine single-run hot path (calendar+streaming vs legacy)");
  bench::Table single_table({"streams", "ops", "load", "events", "legacy ev/s",
                             "b1 ev/s", "new ev/s", "speedup", "tel ev/s",
                             "tel ovh%", "bitexact"});
  std::vector<SingleRun> singles;
  bool all_bitexact = true;

  for (const Workload& w : workloads) {
    const Setup s = MakeSetup(w, duration, /*seed=*/0xe9f0 + w.total_ops());

    sim::SimulationOptions fast;
    fast.duration = duration;
    fast.event_queue = sim::EventQueueImpl::kCalendar;
    // A realistic metro-area hop keeps many deliveries in flight, so the
    // event queue runs deep enough to exercise the queue kernel
    // (identical for every configuration; does not affect bit-exactness).
    fast.network_latency = 10e-3;
    // `legacy` is the engine as it stood before the calendar queue,
    // streaming latency metrics, and delivery batching: binary heap,
    // store-all percentiles (with their full final sort), one event per
    // delivered tuple.
    sim::SimulationOptions legacy = fast;
    legacy.event_queue = sim::EventQueueImpl::kBinaryHeap;
    legacy.exact_percentiles = true;
    legacy.batch_size = 1;
    sim::SimulationOptions heap_fast = fast;  // heap + streaming: isolates
    heap_fast.event_queue = sim::EventQueueImpl::kBinaryHeap;
    sim::SimulationOptions batch1 = fast;  // batching off: isolates batching
    batch1.batch_size = 1;
    // Fast path with a live telemetry sink: the enabled-overhead column.
    // Under --serve the runs record into the live plane's sink instead —
    // the aggregator samples and the HTTP server scrapes it concurrently,
    // so the overhead gate then covers the entire plane, not just the
    // recording fast path.
    telemetry::Telemetry run_telemetry;
    sim::SimulationOptions fast_telemetry = fast;
    fast_telemetry.telemetry = plane.telemetry() != nullptr
                                   ? plane.telemetry()
                                   : &run_telemetry;

    // All configurations are timed with their reps interleaved
    // round-robin (fast, legacy, ... fast, legacy, ...) rather than one
    // configuration at a time: on shared hardware the machine's
    // throughput drifts over the seconds a workload takes, and
    // interleaving exposes every configuration to the same drift, which
    // stabilizes the speedup ratios even when the absolute numbers move.
    // Best-of-reps then filters scheduler noise per configuration.
    enum Config { kFast, kLegacy, kHeapFast, kBatch1, kTelemetry, kConfigs };
    const std::array<const sim::SimulationOptions*, kConfigs> configs = {
        &fast, &legacy, &heap_fast, &batch1, &fast_telemetry};
    std::array<double, kConfigs> best{};
    std::array<sim::SimulationResult, kConfigs> results;
    for (const sim::SimulationOptions* options : configs) {
      // One short warmup per configuration grows the thread-local
      // workspace (and the calendar) before anything is timed.
      sim::SimulationOptions warm_options = *options;
      warm_options.duration = std::min(duration, 2.0);
      auto warm = sim::SimulatePlacement(s.graph, *s.plan, s.system,
                                         s.traces, warm_options);
      ROD_CHECK_OK(warm.status());
    }
    for (size_t rep = 0; rep < reps; ++rep) {
      for (size_t c = 0; c < configs.size(); ++c) {
        const auto t0 = std::chrono::steady_clock::now();
        auto run = sim::SimulatePlacement(s.graph, *s.plan, s.system,
                                          s.traces, *configs[c]);
        const double secs = SecondsSince(t0);
        ROD_CHECK_OK(run.status());
        if (rep == 0 || secs < best[c]) best[c] = secs;
        if (rep == 0) results[c] = std::move(*run);
      }
    }

    SingleRun r;
    r.w = w;
    r.duration = duration;
    r.reps = reps;
    r.batch_size = fast.batch_size;
    r.events = results[kFast].processed_events;
    r.input_tuples = results[kFast].input_tuples;
    r.output_tuples = results[kFast].output_tuples;
    r.legacy_events_per_sec = static_cast<double>(r.events) / best[kLegacy];
    r.events_per_sec = static_cast<double>(r.events) / best[kFast];
    r.tuples_per_sec = static_cast<double>(r.input_tuples) / best[kFast];
    r.batch1_events_per_sec = static_cast<double>(r.events) / best[kBatch1];
    r.speedup_vs_legacy = r.events_per_sec / r.legacy_events_per_sec;
    // Calendar + streaming must equal heap + streaming bit-for-bit (the
    // percentile mode is allowed to differ from `legacy`, the queue not).
    r.bitexact_vs_heap =
        SameResult(results[kFast], results[kHeapFast]) &&
        results[kFast].p99_latency == results[kHeapFast].p99_latency;
    // Delivery batching is bit-exact for every batch size (see engine.cc),
    // so turning it off must not move a bit either.
    r.bitexact_vs_batch1 =
        SameResult(results[kFast], results[kBatch1]) &&
        results[kFast].p99_latency == results[kBatch1].p99_latency;
    // batch=1 vs the legacy engine: identical results up to the latency
    // percentile mode (SameResult covers counts, mean/max latency,
    // utilization, backlog — the fields both modes compute exactly).
    r.batch1_vs_legacy = SameResult(results[kBatch1], results[kLegacy]);
    // Telemetry is observation-only, so attaching it must not move a bit.
    r.bitexact_vs_telemetry =
        SameResult(results[kFast], results[kTelemetry]) &&
        results[kFast].p99_latency == results[kTelemetry].p99_latency;
    r.telemetry_events_per_sec =
        static_cast<double>(r.events) / best[kTelemetry];
    r.telemetry_overhead_pct =
        100.0 * (r.events_per_sec / r.telemetry_events_per_sec - 1.0);
    all_bitexact = all_bitexact && r.bitexact_vs_heap &&
                   r.bitexact_vs_batch1 && r.batch1_vs_legacy &&
                   r.bitexact_vs_telemetry;
    singles.push_back(r);
    single_table.AddRow(
        {std::to_string(w.streams), std::to_string(w.total_ops()),
         bench::Fmt(w.load_level, 1), std::to_string(r.events),
         bench::Fmt(r.legacy_events_per_sec / 1e6, 2),
         bench::Fmt(r.batch1_events_per_sec / 1e6, 2),
         bench::Fmt(r.events_per_sec / 1e6, 2),
         bench::Fmt(r.speedup_vs_legacy, 2),
         bench::Fmt(r.telemetry_events_per_sec / 1e6, 2),
         bench::Fmt(r.telemetry_overhead_pct, 1),
         r.bitexact_vs_heap && r.bitexact_vs_batch1 && r.batch1_vs_legacy &&
                 r.bitexact_vs_telemetry
             ? "yes"
             : "NO"});
  }
  single_table.Print();

  bench::Banner("sweep runner wall time (largest workload)");
  bench::Table sweep_table(
      {"cases", "threads", "seconds", "speedup", "bitexact"});
  std::vector<SweepRun> sweeps;
  {
    const Workload& w = workloads.back();
    const Setup s =
        MakeSetup(w, sweep_duration, /*seed=*/0xe9f0 + w.total_ops());
    const auto seeds = sim::ForkSeeds(0x5eedba5e, sweep_cases);
    std::vector<sim::SimulationCase> cases;
    for (size_t i = 0; i < sweep_cases; ++i) {
      sim::SimulationCase c;
      c.graph = &s.graph;
      c.placement = &*s.plan;
      c.system = &s.system;
      c.inputs = &s.traces;
      c.options.duration = sweep_duration;
      c.options.seed = seeds[i];
      cases.push_back(c);
    }
    std::vector<sim::SimulationResult> reference;
    double base_secs = 0.0;
    {
      // One warm pass grows the pool workers' thread-local workspaces.
      sim::SweepOptions warm;
      warm.num_threads = threads_list.back();
      (void)sim::SimulateSweep(cases, warm);
    }
    for (size_t threads : threads_list) {
      sim::SweepOptions sweep;
      sweep.num_threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      auto results = sim::SimulateSweep(cases, sweep);
      const double secs = SecondsSince(t0);
      bool bitexact = true;
      if (threads == threads_list.front()) {
        base_secs = secs;
        for (auto& r : results) {
          ROD_CHECK_OK(r.status());
          reference.push_back(std::move(*r));
        }
      } else {
        for (size_t i = 0; i < results.size(); ++i) {
          ROD_CHECK_OK(results[i].status());
          bitexact = bitexact && SameResult(*results[i], reference[i]) &&
                     results[i]->p99_latency == reference[i].p99_latency;
        }
      }
      all_bitexact = all_bitexact && bitexact;
      SweepRun r;
      r.w = w;
      r.cases = sweep_cases;
      r.threads = threads;
      r.seconds = secs;
      r.speedup_vs_1 = base_secs / secs;
      r.bitexact_vs_seq = bitexact;
      sweeps.push_back(r);
      sweep_table.AddRow({std::to_string(sweep_cases),
                          std::to_string(threads), bench::Fmt(secs, 3),
                          bench::Fmt(r.speedup_vs_1, 2),
                          bitexact ? "yes" : "NO"});
    }
  }
  sweep_table.Print();

  // Telemetry showcase: one fully instrumented incident run (crash +
  // supervised repair) plus a small parallel sweep with the sink attached
  // to the sweep runner and the shared pool, so the embedded snapshot —
  // and the --trace export — carries engine, supervisor, sweep, and
  // thread-pool series.
  bench::Banner("telemetry showcase (chaos run + parallel sweep)");
  telemetry::Telemetry showcase;
  {
    const Workload& w = workloads.front();
    const double demo_duration = 10.0;
    const Setup s = MakeSetup(w, demo_duration, /*seed=*/0xe9f0);
    ThreadPool::Shared().set_telemetry(&showcase);

    sim::FailureSchedule chaos;
    chaos.CrashAt(demo_duration * 0.3, /*node=*/1);
    sim::Supervisor::Options sup_options;
    sup_options.detection_delay = 0.5;
    sup_options.policy = sim::Supervisor::Policy::kRepair;
    sup_options.telemetry = &showcase;
    // Under --serve / --flightrecorder the showcase crash also exercises
    // the flight recorder, so /flightrecorder (and the exported artifact)
    // carries a real incident.
    sup_options.flight_recorder = plane.flight_recorder();
    sim::Supervisor supervisor(*s.model, sup_options);
    sim::SimulationOptions incident;
    incident.duration = demo_duration;
    incident.failures = &chaos;
    incident.recovery = &supervisor;
    incident.telemetry = &showcase;
    incident.flight_recorder = plane.flight_recorder();
    auto incident_run =
        sim::SimulatePlacement(s.graph, *s.plan, s.system, s.traces, incident);
    ROD_CHECK_OK(incident_run.status());

    const auto seeds = sim::ForkSeeds(0x7e1e, 4);
    std::vector<sim::SimulationCase> cases;
    for (uint64_t seed : seeds) {
      sim::SimulationCase c;
      c.graph = &s.graph;
      c.placement = &*s.plan;
      c.system = &s.system;
      c.inputs = &s.traces;
      c.options.duration = demo_duration;
      c.options.seed = seed;
      c.options.telemetry = &showcase;
      cases.push_back(c);
    }
    sim::SweepOptions sweep;
    sweep.num_threads = threads_list.back();
    sweep.telemetry = &showcase;
    auto results = sim::SimulateSweep(cases, sweep);
    for (auto& r : results) ROD_CHECK_OK(r.status());
    // Re-attach the plane's sink (a no-op null when --serve is off).
    ThreadPool::Shared().set_telemetry(plane.telemetry());

    const telemetry::MetricsSnapshot snap = showcase.Snapshot();
    std::cout << "showcase recorded " << snap.counters.size() << " counters, "
              << snap.histograms.size() << " histograms, "
              << snap.trace_events_recorded << " trace events ("
              << snap.trace_events_dropped << " dropped)\n";
    if (!flags.trace_path.empty()) {
      std::ofstream trace_out(flags.trace_path);
      showcase.WriteChromeTrace(trace_out);
      std::cout << "wrote " << flags.trace_path << " (chrome trace)\n";
    }
  }

  bool speedup_ok = true;
  if (min_speedup > 0.0) {
    // Machine-independent form of the acceptance gate: batch-mode
    // events/sec vs the legacy engine measured in this same binary on
    // this same machine, at the largest workload.
    const double worst = singles.back().speedup_vs_legacy;
    speedup_ok = worst >= min_speedup;
    std::cout << "speedup vs legacy on largest workload: "
              << bench::Fmt(worst, 2) << "x (floor "
              << bench::Fmt(min_speedup, 2)
              << "x): " << (speedup_ok ? "ok" : "BELOW FLOOR") << "\n";
  }

  bool overhead_ok = true;
  if (max_telemetry_overhead > 0.0) {
    const double worst = singles.back().telemetry_overhead_pct;
    overhead_ok = worst <= max_telemetry_overhead;
    std::cout << "telemetry overhead on largest workload: "
              << bench::Fmt(worst, 1) << "% (limit "
              << bench::Fmt(max_telemetry_overhead, 1) << "%): "
              << (overhead_ok ? "ok" : "EXCEEDED") << "\n";
  }

  std::cout << "\nall bit-exactness checks passed: "
            << (all_bitexact ? "yes" : "NO") << "\n";
  WriteJson(json_path, mode, singles, sweeps, showcase.Snapshot());
  std::cout << "wrote " << json_path << " (" << singles.size()
            << " single runs, " << sweeps.size() << " sweep points)\n";
  return all_bitexact && overhead_ok && speedup_ok ? 0 : 1;
}
