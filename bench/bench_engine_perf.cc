// Copyright (c) the ROD reproduction authors.
//
// Perf baseline of the tuple-level simulation engine. Sweeps graph size x
// offered load on the single-run hot path (calendar queue + streaming
// latency metrics vs the legacy binary-heap + store-all-percentiles
// configuration, both in this binary) and the sweep runner (N independent
// runs across the thread pool), reporting events/sec, tuples/sec, sweep
// wall time, and bit-exactness between every configuration pair that must
// agree. Emits a machine-readable JSON baseline (fields documented in
// docs/BENCH_ENGINE.md) so later PRs can regress against it.
//
//   bench_engine_perf [--mode smoke|full] [--out=PATH] [--threads=1,2,4,8]
//
// --mode smoke shrinks the sweep for CI; --out defaults to
// BENCH_engine.json. Exit code is nonzero iff a bit-exactness check fails.

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"
#include "runtime/sweep.h"

namespace {

using namespace rod;

struct Workload {
  size_t streams = 0;
  size_t ops_per_tree = 0;
  double load_level = 0.0;  ///< Fraction of the placement's boundary.
  size_t total_ops() const { return streams * ops_per_tree; }
};

struct SingleRun {
  Workload w;
  double duration = 0.0;
  size_t reps = 0;
  uint64_t events = 0;  ///< Events per rep (identical across reps).
  size_t input_tuples = 0;
  size_t output_tuples = 0;
  double legacy_events_per_sec = 0.0;  ///< kBinaryHeap + exact_percentiles.
  double events_per_sec = 0.0;         ///< kCalendar + streaming metrics.
  double tuples_per_sec = 0.0;
  double speedup_vs_legacy = 0.0;
  bool bitexact_vs_heap = false;
};

struct SweepRun {
  Workload w;
  size_t cases = 0;
  size_t threads = 0;
  double seconds = 0.0;
  double speedup_vs_1 = 0.0;
  bool bitexact_vs_seq = false;
};

/// One compiled workload: random trees, ROD-placed, rates at `load_level`
/// of the analytic uniform boundary.
struct Setup {
  query::QueryGraph graph;
  place::SystemSpec system;
  Result<place::Placement> plan{Status::Internal("unset")};
  std::vector<trace::RateTrace> traces;
};

Setup MakeSetup(const Workload& w, double duration, uint64_t seed) {
  Setup s;
  query::GraphGenOptions gen;
  gen.num_input_streams = w.streams;
  gen.ops_per_tree = w.ops_per_tree;
  // Cheap operators (vs the paper's 0.1-10ms delay ops): the feasibility
  // boundary moves to thousands of tuples/sec, so a run executes millions
  // of events and the measurement exercises the hot loop, not the setup.
  gen.min_cost = 2e-6;
  gen.max_cost = 2e-5;
  Rng rng(seed);
  s.graph = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(s.graph);
  ROD_CHECK_OK(model.status());
  s.system = place::SystemSpec::Homogeneous(std::max<size_t>(2, w.streams));
  s.plan = place::RodPlace(*model, s.system);
  ROD_CHECK_OK(s.plan.status());
  const place::PlacementEvaluator eval(*model, s.system);
  Vector unit(model->num_system_inputs(), 1.0);
  auto boundary = eval.BoundaryScaleAlong(*s.plan, unit);
  ROD_CHECK_OK(boundary.status());
  const double rate = w.load_level * *boundary;
  for (size_t k = 0; k < w.streams; ++k) {
    trace::RateTrace t;
    t.window_sec = duration;
    t.rates = {rate};
    s.traces.push_back(std::move(t));
  }
  return s;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The fields every configuration pair must agree on bit-for-bit.
bool SameResult(const sim::SimulationResult& a,
                const sim::SimulationResult& b) {
  return a.input_tuples == b.input_tuples &&
         a.output_tuples == b.output_tuples &&
         a.processed_events == b.processed_events &&
         a.mean_latency == b.mean_latency && a.max_latency == b.max_latency &&
         a.node_utilization == b.node_utilization &&
         a.final_backlog == b.final_backlog && a.saturated == b.saturated;
}

std::vector<size_t> ParseThreadList(const std::string& spec) {
  std::vector<size_t> threads;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const unsigned long v = std::stoul(item);
    if (v > 0) threads.push_back(v);
  }
  return threads;
}

std::string JsonBool(bool b) { return b ? "true" : "false"; }

void WriteJson(const std::string& path, const std::string& mode,
               const std::vector<SingleRun>& singles,
               const std::vector<SweepRun>& sweeps) {
  std::ofstream out(path);
  out.precision(15);
  out << "{\n"
      << "  \"bench\": \"bench_engine_perf\",\n"
      << "  \"mode\": \"" << mode << "\",\n"
      << "  \"hardware_concurrency\": "
      << std::max(1u, std::thread::hardware_concurrency()) << ",\n"
      << "  \"single_runs\": [\n";
  for (size_t i = 0; i < singles.size(); ++i) {
    const SingleRun& r = singles[i];
    out << "    {\"streams\": " << r.w.streams
        << ", \"total_ops\": " << r.w.total_ops()
        << ", \"load_level\": " << r.w.load_level
        << ", \"duration\": " << r.duration << ", \"reps\": " << r.reps
        << ", \"events\": " << r.events
        << ", \"input_tuples\": " << r.input_tuples
        << ", \"output_tuples\": " << r.output_tuples
        << ", \"legacy_events_per_sec\": " << r.legacy_events_per_sec
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"tuples_per_sec\": " << r.tuples_per_sec
        << ", \"speedup_vs_legacy\": " << r.speedup_vs_legacy
        << ", \"bitexact_vs_heap\": " << JsonBool(r.bitexact_vs_heap) << "}"
        << (i + 1 < singles.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"sweeps\": [\n";
  for (size_t i = 0; i < sweeps.size(); ++i) {
    const SweepRun& r = sweeps[i];
    out << "    {\"streams\": " << r.w.streams
        << ", \"total_ops\": " << r.w.total_ops()
        << ", \"load_level\": " << r.w.load_level
        << ", \"cases\": " << r.cases << ", \"threads\": " << r.threads
        << ", \"seconds\": " << r.seconds
        << ", \"speedup_vs_1\": " << r.speedup_vs_1
        << ", \"bitexact_vs_seq\": " << JsonBool(r.bitexact_vs_seq) << "}"
        << (i + 1 < sweeps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "full";
  std::string out_path = "BENCH_engine.json";
  std::vector<size_t> threads_list;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--mode" && a + 1 < argc) {
      mode = argv[++a];
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_list = ParseThreadList(arg.substr(10));
    } else {
      std::cerr << "usage: bench_engine_perf [--mode smoke|full] "
                   "[--out=PATH] [--threads=1,2,4,8]\n";
      return 2;
    }
  }
  if (mode != "smoke" && mode != "full") {
    std::cerr << "unknown mode '" << mode << "' (want smoke or full)\n";
    return 2;
  }
  const bool smoke = mode == "smoke";
  if (threads_list.empty()) {
    threads_list = smoke ? std::vector<size_t>{1, 2}
                         : std::vector<size_t>{1, 2, 4, 8};
  }

  // Graph size x offered load; the last entry is the "largest smoke
  // configuration" the acceptance criterion pins the single-run speedup to.
  const std::vector<Workload> workloads =
      smoke ? std::vector<Workload>{{2, 10, 0.5}, {4, 25, 0.8}}
            : std::vector<Workload>{{2, 10, 0.5}, {4, 25, 0.5}, {4, 25, 0.8},
                                    {5, 40, 0.8}};
  const double duration = smoke ? 15.0 : 40.0;
  const size_t reps = smoke ? 2 : 4;
  // The sweep section re-simulates the largest workload many times per
  // thread count, so it gets a shorter horizon than the single-run path.
  const double sweep_duration = smoke ? 6.0 : 12.0;
  const size_t sweep_cases = smoke ? 6 : 16;

  bench::Banner("engine single-run hot path (calendar+streaming vs legacy)");
  bench::Table single_table({"streams", "ops", "load", "events", "legacy ev/s",
                             "new ev/s", "speedup", "tuples/s", "bitexact"});
  std::vector<SingleRun> singles;
  bool all_bitexact = true;

  for (const Workload& w : workloads) {
    const Setup s = MakeSetup(w, duration, /*seed=*/0xe9f0 + w.total_ops());

    sim::SimulationOptions fast;
    fast.duration = duration;
    fast.event_queue = sim::EventQueueImpl::kCalendar;
    // A realistic wide-area hop keeps hundreds of deliveries in flight,
    // so the event queue runs deep enough to exercise the queue kernel
    // (identical for every configuration; does not affect bit-exactness).
    fast.network_latency = 10e-3;
    sim::SimulationOptions legacy = fast;
    legacy.event_queue = sim::EventQueueImpl::kBinaryHeap;
    legacy.exact_percentiles = true;
    sim::SimulationOptions heap_fast = fast;  // heap + streaming: isolates
    heap_fast.event_queue = sim::EventQueueImpl::kBinaryHeap;

    auto time_runs = [&](const sim::SimulationOptions& options) {
      // One short warmup (grows the thread-local workspace), then `reps`
      // individually timed runs; best-of-reps filters scheduler noise.
      sim::SimulationOptions warm_options = options;
      warm_options.duration = std::min(duration, 2.0);
      auto warm = sim::SimulatePlacement(s.graph, *s.plan, s.system,
                                         s.traces, warm_options);
      ROD_CHECK_OK(warm.status());
      double best = 0.0;
      Result<sim::SimulationResult> result(Status::Internal("no reps"));
      for (size_t r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        auto run = sim::SimulatePlacement(s.graph, *s.plan, s.system,
                                          s.traces, options);
        const double secs = SecondsSince(t0);
        ROD_CHECK_OK(run.status());
        if (r == 0 || secs < best) best = secs;
        result = std::move(run);
      }
      return std::pair(std::move(*result), best);
    };

    auto [fast_result, fast_secs] = time_runs(fast);
    auto [legacy_result, legacy_secs] = time_runs(legacy);
    auto [heap_result, heap_secs] = time_runs(heap_fast);
    (void)heap_secs;

    SingleRun r;
    r.w = w;
    r.duration = duration;
    r.reps = reps;
    r.events = fast_result.processed_events;
    r.input_tuples = fast_result.input_tuples;
    r.output_tuples = fast_result.output_tuples;
    r.legacy_events_per_sec = static_cast<double>(r.events) / legacy_secs;
    r.events_per_sec = static_cast<double>(r.events) / fast_secs;
    r.tuples_per_sec = static_cast<double>(r.input_tuples) / fast_secs;
    r.speedup_vs_legacy = r.events_per_sec / r.legacy_events_per_sec;
    // Calendar + streaming must equal heap + streaming bit-for-bit (the
    // percentile mode is allowed to differ from `legacy`, the queue not).
    r.bitexact_vs_heap = SameResult(fast_result, heap_result) &&
                         fast_result.p99_latency == heap_result.p99_latency;
    all_bitexact = all_bitexact && r.bitexact_vs_heap;
    singles.push_back(r);
    single_table.AddRow(
        {std::to_string(w.streams), std::to_string(w.total_ops()),
         bench::Fmt(w.load_level, 1), std::to_string(r.events),
         bench::Fmt(r.legacy_events_per_sec / 1e6, 2),
         bench::Fmt(r.events_per_sec / 1e6, 2),
         bench::Fmt(r.speedup_vs_legacy, 2), bench::Fmt(r.tuples_per_sec / 1e6, 2),
         r.bitexact_vs_heap ? "yes" : "NO"});
  }
  single_table.Print();

  bench::Banner("sweep runner wall time (largest workload)");
  bench::Table sweep_table(
      {"cases", "threads", "seconds", "speedup", "bitexact"});
  std::vector<SweepRun> sweeps;
  {
    const Workload& w = workloads.back();
    const Setup s =
        MakeSetup(w, sweep_duration, /*seed=*/0xe9f0 + w.total_ops());
    const auto seeds = sim::ForkSeeds(0x5eedba5e, sweep_cases);
    std::vector<sim::SimulationCase> cases;
    for (size_t i = 0; i < sweep_cases; ++i) {
      sim::SimulationCase c;
      c.graph = &s.graph;
      c.placement = &*s.plan;
      c.system = &s.system;
      c.inputs = &s.traces;
      c.options.duration = sweep_duration;
      c.options.seed = seeds[i];
      cases.push_back(c);
    }
    std::vector<sim::SimulationResult> reference;
    double base_secs = 0.0;
    {
      // One warm pass grows the pool workers' thread-local workspaces.
      sim::SweepOptions warm;
      warm.num_threads = threads_list.back();
      (void)sim::SimulateSweep(cases, warm);
    }
    for (size_t threads : threads_list) {
      sim::SweepOptions sweep;
      sweep.num_threads = threads;
      const auto t0 = std::chrono::steady_clock::now();
      auto results = sim::SimulateSweep(cases, sweep);
      const double secs = SecondsSince(t0);
      bool bitexact = true;
      if (threads == threads_list.front()) {
        base_secs = secs;
        for (auto& r : results) {
          ROD_CHECK_OK(r.status());
          reference.push_back(std::move(*r));
        }
      } else {
        for (size_t i = 0; i < results.size(); ++i) {
          ROD_CHECK_OK(results[i].status());
          bitexact = bitexact && SameResult(*results[i], reference[i]) &&
                     results[i]->p99_latency == reference[i].p99_latency;
        }
      }
      all_bitexact = all_bitexact && bitexact;
      SweepRun r;
      r.w = w;
      r.cases = sweep_cases;
      r.threads = threads;
      r.seconds = secs;
      r.speedup_vs_1 = base_secs / secs;
      r.bitexact_vs_seq = bitexact;
      sweeps.push_back(r);
      sweep_table.AddRow({std::to_string(sweep_cases),
                          std::to_string(threads), bench::Fmt(secs, 3),
                          bench::Fmt(r.speedup_vs_1, 2),
                          bitexact ? "yes" : "NO"});
    }
  }
  sweep_table.Print();

  std::cout << "\nall bit-exactness checks passed: "
            << (all_bitexact ? "yes" : "NO") << "\n";
  WriteJson(out_path, mode, singles, sweeps);
  std::cout << "wrote " << out_path << " (" << singles.size()
            << " single runs, " << sweeps.size() << " sweep points)\n";
  return all_bitexact ? 0 : 1;
}
