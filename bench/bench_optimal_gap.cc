// Experiment E6 — paper §7.3.1's optimality-gap claim: "we compared the
// feasible set size of ROD with the optimal solution on small query graphs
// (no more than 12 operators and 2 to 5 input streams) on two nodes. The
// average feasible set size ratio of ROD to the optimal is 0.95 and the
// minimum ratio is 0.82."

#include <iostream>

#include "bench_util.h"
#include "placement/optimal.h"

namespace {

using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E6 (§7.3.1): ROD vs optimal on small "
               "graphs (2 nodes)\n";

  rod::place::OptimalOptions options;
  options.volume.num_samples = 8192;

  Table table({"d", "#ops", "seed", "ROD ratio", "optimal ratio",
               "ROD/optimal", "plans"});
  rod::RunningStats gap;
  const SystemSpec system = SystemSpec::Homogeneous(2);

  for (size_t dims = 2; dims <= 5; ++dims) {
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
      // Up to 12 operators total, split evenly across trees.
      const size_t ops_per_tree = 12 / dims;
      rod::query::GraphGenOptions gen;
      gen.num_input_streams = dims;
      gen.ops_per_tree = ops_per_tree;
      rod::Rng rng(0xe6000 + dims * 100 + seed);
      const rod::query::QueryGraph g =
          rod::query::GenerateRandomTrees(gen, rng);
      auto model = rod::query::BuildLoadModel(g);
      if (!model.ok()) continue;

      auto optimal = rod::place::OptimalPlace(*model, system, options);
      if (!optimal.ok()) {
        std::cerr << "optimal: " << optimal.status().ToString() << "\n";
        return 1;
      }
      auto rod_plan = rod::place::RodPlace(*model, system);
      const PlacementEvaluator eval(*model, system);
      const double rod_ratio = *eval.RatioToIdeal(*rod_plan, options.volume);
      const double ratio = optimal->ratio_to_ideal > 0
                               ? rod_ratio / optimal->ratio_to_ideal
                               : 1.0;
      gap.Add(ratio);
      table.AddRow({std::to_string(dims),
                    std::to_string(g.num_operators()),
                    std::to_string(seed), Fmt(rod_ratio),
                    Fmt(optimal->ratio_to_ideal), Fmt(ratio),
                    std::to_string(optimal->plans_evaluated)});
    }
  }

  rod::bench::Banner("ROD vs exhaustive optimum");
  table.Print();
  std::cout << "\naverage ROD/optimal = " << Fmt(gap.mean())
            << "   minimum = " << Fmt(gap.min())
            << "   (paper: average 0.95, minimum 0.82)\n";
  return 0;
}
