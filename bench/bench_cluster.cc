// Copyright (c) the ROD reproduction authors.
//
// Perf baseline of cluster mode (src/cluster): real multi-process runs
// on loopback with the coordinator in this process and each worker
// fork()ed, measuring the three numbers that define the distributed
// runtime's responsiveness —
//
//   1. plan-ship latency: first kPlan send to last kPlanAck across all
//      workers (serialization + framed TCP + worker-side deployment
//      compile), sampled over several registration/run cycles;
//   2. inter-worker tuple throughput: tuples that actually crossed
//      process boundaries per second of run time, under a rate high
//      enough that shipping dominates;
//   3. kill-to-recovery: SIGKILL one worker mid-run and split the
//      outage into detection (missed-heartbeat deadline) and repair
//      (supervisor placement + pause/drain/reassign/resume diff).
//
// Emits a machine-readable JSON baseline (fields documented in
// docs/BENCH_CLUSTER.md) so later PRs can regress against it.
//
//   bench_cluster [--mode smoke|full] [--json=PATH]
//                 [--workers N] [--ship-reps N] [--rate R]
//                 [--min-ship-tps X] [--max-plan-ship-ms X]
//                 [--max-recovery-s X]
//
// --mode smoke shrinks durations for CI; --json defaults to
// BENCH_CLUSTER.json. Exit code is nonzero iff a run fails, the chaos
// run does not recover, or a gate floor/ceiling is violated (all
// default 0 = disabled).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/coordinator.h"
#include "cluster/worker.h"
#include "common/random.h"
#include "query/graph_gen.h"
#include "telemetry/json_writer.h"

namespace {

using namespace rod;
using cluster::ClusterReport;
using cluster::Coordinator;
using cluster::CoordinatorOptions;

struct Config {
  bool smoke = false;
  size_t workers = 3;
  int ship_reps = 3;          ///< Plan-ship latency samples (one run each).
  double rate = 2000.0;       ///< Per-stream tuples/s for the throughput run.
  double min_ship_tps = 0.0;  ///< Floor on inter-worker tuples/s.
  double max_plan_ship_ms = 0.0;   ///< Ceiling on worst plan-ship sample.
  double max_recovery_s = 0.0;     ///< Ceiling on kill-to-recovery.
};

query::QueryGraph BenchGraph() {
  query::GraphGenOptions options;
  options.num_input_streams = 3;
  options.ops_per_tree = 6;
  Rng rng(7);
  return query::GenerateRandomTrees(options, rng);
}

CoordinatorOptions BaseOptions(const Config& cfg) {
  CoordinatorOptions options;
  options.expected_workers = cfg.workers;
  options.heartbeat_interval = 0.1;
  options.heartbeat_timeout = 0.5;
  options.register_timeout = 20.0;
  options.finish_grace = 0.4;
  return options;
}

/// Forks a worker running RunWorker against `port`. stdio is flushed
/// first so the child doesn't replay buffered bench output.
pid_t SpawnWorker(uint16_t port) {
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  cluster::WorkerOptions options;
  options.coordinator_port = port;
  options.serve_http = false;
  options.name = "bench-worker-" + std::to_string(::getpid());
  const Status status = cluster::RunWorker(options);
  ::_exit(status.ok() ? 0 : 1);
}

/// One full cluster lifecycle: listen, fork `workers` children, run to
/// completion (optionally SIGKILLing child 0 at `kill_at` seconds), reap
/// every child, and hand back the coordinator's report.
Result<ClusterReport> RunCluster(const query::QueryGraph& graph,
                                 const CoordinatorOptions& options,
                                 size_t workers, double kill_at = 0.0) {
  Coordinator coordinator(graph, options);
  ROD_RETURN_IF_ERROR(coordinator.Listen());

  std::vector<pid_t> pids;
  for (size_t i = 0; i < workers; ++i) {
    pids.push_back(SpawnWorker(coordinator.port()));
  }

  std::thread killer;
  if (kill_at > 0.0) {
    killer = std::thread([&pids, kill_at] {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(kill_at));
      ::kill(pids[0], SIGKILL);
    });
  }

  const Status run = coordinator.Run();
  if (killer.joinable()) killer.join();
  for (const pid_t pid : pids) {
    int wstatus = 0;
    ::waitpid(pid, &wstatus, 0);
  }
  ROD_RETURN_IF_ERROR(run);
  return coordinator.report();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  Config cfg;
  std::string json_path =
      flags.json_path.empty() ? "BENCH_CLUSTER.json" : flags.json_path;
  for (size_t a = 0; a < flags.rest.size(); ++a) {
    const std::string& arg = flags.rest[a];
    auto next = [&]() -> std::string {
      return ++a < flags.rest.size() ? flags.rest[a] : std::string();
    };
    if (arg == "--mode") {
      cfg.smoke = next() == "smoke";
      if (cfg.smoke) {
        cfg.ship_reps = 2;
        cfg.rate = 1000.0;
      }
    } else if (arg == "--workers") {
      cfg.workers = std::stoul(next());
    } else if (arg == "--ship-reps") {
      cfg.ship_reps = std::stoi(next());
    } else if (arg == "--rate") {
      cfg.rate = std::stod(next());
    } else if (arg == "--min-ship-tps") {
      cfg.min_ship_tps = std::stod(next());
    } else if (arg == "--max-plan-ship-ms") {
      cfg.max_plan_ship_ms = std::stod(next());
    } else if (arg == "--max-recovery-s") {
      cfg.max_recovery_s = std::stod(next());
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const query::QueryGraph graph = BenchGraph();
  bench::Banner("cluster mode (" + std::string(cfg.smoke ? "smoke" : "full") +
                ", " + std::to_string(cfg.workers) + " worker processes)");

  auto fail = [](const Status& status) {
    std::cerr << "bench_cluster: " << status.ToString() << "\n";
    return 1;
  };

  // --- 1. plan-ship latency: short runs, one sample each. -------------
  std::vector<double> ship_ms;
  for (int rep = 0; rep < cfg.ship_reps; ++rep) {
    CoordinatorOptions options = BaseOptions(cfg);
    options.duration = 0.4;
    options.default_rate = 200.0;
    auto report = RunCluster(graph, options, cfg.workers);
    if (!report.ok()) return fail(report.status());
    ship_ms.push_back(report->plan_ship_seconds * 1e3);
  }
  const double ship_min = *std::min_element(ship_ms.begin(), ship_ms.end());
  const double ship_max = *std::max_element(ship_ms.begin(), ship_ms.end());
  double ship_mean = 0.0;
  for (const double v : ship_ms) ship_mean += v;
  ship_mean /= static_cast<double>(ship_ms.size());

  // --- 2. inter-worker tuple throughput under a high source rate. -----
  CoordinatorOptions tput_options = BaseOptions(cfg);
  tput_options.duration = cfg.smoke ? 1.5 : 2.5;
  tput_options.default_rate = cfg.rate;
  auto tput = RunCluster(graph, tput_options, cfg.workers);
  if (!tput.ok()) return fail(tput.status());
  const double ship_tps =
      tput->run_seconds > 0.0
          ? static_cast<double>(tput->totals.shipped) / tput->run_seconds
          : 0.0;
  // Per-tuple-batch ship latency, offset-corrected onto the coordinator
  // clock by each receiver and federated back over kStatsReport.
  const ClusterReport::ShipLatency& lat = tput->ship_latency;

  // --- 3. kill-to-recovery: SIGKILL worker 0 mid-run. -----------------
  CoordinatorOptions chaos_options = BaseOptions(cfg);
  chaos_options.duration = 3.0;
  chaos_options.default_rate = 200.0;
  auto chaos = RunCluster(graph, chaos_options, cfg.workers,
                          /*kill_at=*/1.2);
  if (!chaos.ok()) return fail(chaos.status());
  if (!chaos->had_incident) {
    return fail(Status::Internal("chaos run produced no incident"));
  }
  const sim::IncidentReport& incident = chaos->incident;
  const double detection_s = incident.detect_time - incident.crash_time;
  const double repair_s = incident.plan_applied_time - incident.detect_time;
  const double recovery_s = incident.plan_applied_time - incident.crash_time;

  bench::Table table({"measurement", "value"});
  table.AddRow({"plan ship min/mean/max (ms)",
                bench::Fmt(ship_min, 2) + " / " + bench::Fmt(ship_mean, 2) +
                    " / " + bench::Fmt(ship_max, 2)});
  table.AddRow({"inter-worker ship (tuples/s)", bench::Fmt(ship_tps, 0)});
  table.AddRow({"  shipped == received",
                tput->totals.shipped == tput->totals.received ? "yes" : "NO"});
  table.AddRow({"ship latency p50/p99/max (us)",
                bench::Fmt(lat.p50_us, 1) + " / " + bench::Fmt(lat.p99_us, 1) +
                    " / " + bench::Fmt(lat.max_us, 1)});
  table.AddRow({"detection delay (s)", bench::Fmt(detection_s, 3)});
  table.AddRow({"repair: pause->resume (s)", bench::Fmt(repair_s, 3)});
  table.AddRow({"kill-to-recovery (s)", bench::Fmt(recovery_s, 3)});
  table.AddRow({"operators moved", std::to_string(incident.operators_moved)});
  table.AddRow({"availability", bench::Fmt(incident.availability, 4)});
  table.Print();

  // Gates.
  bool ok = true;
  if (!incident.recovered || incident.operators_moved == 0) {
    std::cerr << "GATE: chaos run did not recover via a plan diff\n";
    ok = false;
  }
  if (tput->totals.shipped != tput->totals.received ||
      tput->totals.lost_tuples != 0) {
    std::cerr << "GATE: healthy throughput run lost tuples ("
              << tput->totals.shipped << " shipped, "
              << tput->totals.received << " received, "
              << tput->totals.lost_tuples << " lost)\n";
    ok = false;
  }
  if (cfg.min_ship_tps > 0.0 && ship_tps < cfg.min_ship_tps) {
    std::cerr << "GATE: inter-worker ship " << ship_tps
              << " tuples/s < floor " << cfg.min_ship_tps << "\n";
    ok = false;
  }
  if (cfg.max_plan_ship_ms > 0.0 && ship_max > cfg.max_plan_ship_ms) {
    std::cerr << "GATE: plan ship " << ship_max << " ms > ceiling "
              << cfg.max_plan_ship_ms << " ms\n";
    ok = false;
  }
  if (cfg.max_recovery_s > 0.0 && recovery_s > cfg.max_recovery_s) {
    std::cerr << "GATE: kill-to-recovery " << recovery_s << " s > ceiling "
              << cfg.max_recovery_s << " s\n";
    ok = false;
  }

  {
    std::ofstream out(json_path);
    telemetry::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema").String("rod.bench_cluster.v1");
    bench::WriteBuildMetadata(w);
    w.Key("config").BeginObjectInline();
    w.Key("mode").String(cfg.smoke ? "smoke" : "full");
    w.Key("workers").Uint(cfg.workers);
    w.Key("ship_reps").Uint(static_cast<uint64_t>(cfg.ship_reps));
    w.Key("rate").Double(cfg.rate);
    w.Key("heartbeat_interval").Double(chaos_options.heartbeat_interval);
    w.Key("heartbeat_timeout").Double(chaos_options.heartbeat_timeout);
    w.EndObject();
    w.Key("plan_ship").BeginObjectInline();
    w.Key("samples").Uint(ship_ms.size());
    w.Key("min_ms").Double(ship_min);
    w.Key("mean_ms").Double(ship_mean);
    w.Key("max_ms").Double(ship_max);
    w.EndObject();
    w.Key("throughput").BeginObjectInline();
    w.Key("run_seconds").Double(tput->run_seconds);
    w.Key("generated").Uint(tput->totals.generated);
    w.Key("shipped").Uint(tput->totals.shipped);
    w.Key("received").Uint(tput->totals.received);
    w.Key("delivered").Uint(tput->totals.delivered);
    w.Key("lost").Uint(tput->totals.lost_tuples);
    w.Key("shipped_per_sec").Double(ship_tps);
    w.EndObject();
    w.Key("ship_latency").BeginObjectInline();
    w.Key("count").Uint(lat.count);
    w.Key("mean_us").Double(lat.mean_us);
    w.Key("p50_us").Double(lat.p50_us);
    w.Key("p99_us").Double(lat.p99_us);
    w.Key("max_us").Double(lat.max_us);
    w.EndObject();
    w.Key("recovery").BeginObjectInline();
    w.Key("detection_seconds").Double(detection_s);
    w.Key("repair_seconds").Double(repair_s);
    w.Key("kill_to_recovery_seconds").Double(recovery_s);
    if (chaos->phases.valid) {
      w.Key("pause_drain_seconds").Double(chaos->phases.pause_drain_seconds);
      w.Key("reassign_seconds").Double(chaos->phases.reassign_seconds);
      w.Key("resume_seconds").Double(chaos->phases.resume_seconds);
    }
    w.Key("operators_moved").Uint(incident.operators_moved);
    w.Key("plan_version").Uint(chaos->plan_version);
    w.Key("lost_tuples").Uint(incident.lost_tuples);
    w.Key("availability").Double(incident.availability);
    w.Key("recovered").Bool(incident.recovered);
    w.EndObject();
    w.Key("gates").BeginObjectInline();
    w.Key("min_ship_tps").Double(cfg.min_ship_tps);
    w.Key("max_plan_ship_ms").Double(cfg.max_plan_ship_ms);
    w.Key("max_recovery_s").Double(cfg.max_recovery_s);
    w.Key("passed").Bool(ok);
    w.EndObject();
    w.EndObject();
    out << "\n";
  }
  std::cout << "  baseline written to " << json_path << "\n";
  return ok ? 0 : 1;
}
