// Experiment A4 (ours) — the cost of an incident at tuple granularity:
// a 3-node cluster at ~55% of its boundary loses one node mid-run; the
// supervisor repairs the placement after a detection delay. Sweeps
// detection delay x repair move budget (plus the dump-orphans-on-one-node
// baseline) and reports tuples lost, availability, recovery time, and
// recovery-phase tail latency from the tuple-level engine — the numbers
// the fluid-model repair analysis (bench_repair) cannot see.

#include <deque>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "runtime/chaos.h"
#include "runtime/engine.h"
#include "runtime/supervisor.h"
#include "runtime/sweep.h"

namespace {

using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;
using rod::sim::FailureSchedule;
using rod::sim::SimulationOptions;
using rod::sim::Supervisor;

constexpr double kDuration = 80.0;
constexpr double kCrashTime = 20.0;
// ~45% of the 3-node boundary: survivable on 2 nodes (~68% total), so the
// repair policies can actually re-settle under the recovered threshold.
constexpr double kLoadLevel = 0.45;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0]
              << " [--json=PATH] [--trace=PATH] [--serve=PORT]"
                 " [--flightrecorder=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- A4: mid-run node crash, supervised "
               "recovery (tuple-level engine)\n"
            << "3 streams x 10 ops, 3 nodes at " << Fmt(kLoadLevel * 100, 0)
            << "% of boundary, node crash at t=" << Fmt(kCrashTime, 0)
            << "s of " << Fmt(kDuration, 0) << "s\n";

  rod::query::GraphGenOptions gen;
  gen.num_input_streams = 3;
  gen.ops_per_tree = 10;
  rod::Rng rng(0xa40001);
  const rod::query::QueryGraph graph = rod::query::GenerateRandomTrees(gen, rng);
  auto model = rod::query::BuildLoadModel(graph);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  const SystemSpec system = SystemSpec::Homogeneous(3);
  auto plan = rod::place::RodPlace(*model, system);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }

  // Uniform input rates at kLoadLevel of the plan's boundary.
  const PlacementEvaluator eval(*model, system);
  Vector unit(model->num_system_inputs(), 1.0);
  const Vector util = eval.NodeUtilizationAt(*plan, unit);
  double peak = 0.0;
  for (double u : util) peak = std::max(peak, u);
  std::vector<rod::trace::RateTrace> traces;
  for (size_t k = 0; k < model->num_system_inputs(); ++k) {
    rod::trace::RateTrace t;
    t.window_sec = kDuration;
    t.rates = {kLoadLevel / peak};
    traces.push_back(std::move(t));
  }

  // Crash the node hosting input 0's consumer so arrivals bounce until
  // the supervisor re-homes the orphans.
  uint32_t crash_node = 0;
  for (rod::query::OperatorId j = 0; j < graph.num_operators(); ++j) {
    for (const rod::query::Arc& arc : graph.inputs_of(j)) {
      if (arc.from.kind == rod::query::StreamRef::Kind::kInput &&
          arc.from.index == 0) {
        crash_node = static_cast<uint32_t>(plan->node_of(j));
      }
    }
  }
  FailureSchedule chaos;
  chaos.CrashAt(kCrashTime, crash_node);

  Table table({"policy", "detect(s)", "moves budget", "ops moved", "lost",
               "avail", "recovery(s)", "rec p95(ms)", "post p95(ms)"});

  // Every (policy, delay, budget) point is an independent crash run, so
  // the whole grid is one parallel sweep. Each case owns its Supervisor
  // (the recovery agent is stateful); the deque keeps addresses stable.
  struct Grid {
    Supervisor::Policy policy;
    double delay;
    size_t budget;
    std::string label;
  };
  std::vector<Grid> grid = {{Supervisor::Policy::kNone, 0.5, 0, "none"},
                            {Supervisor::Policy::kNaiveDump, 0.5, 0, "dump"}};
  for (double delay : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (size_t budget : {size_t{0}, size_t{2}, size_t{4}}) {
      grid.push_back({Supervisor::Policy::kRepair, delay, budget, "repair"});
    }
  }

  std::deque<Supervisor> supervisors;
  std::vector<rod::sim::SimulationCase> cases;
  for (const Grid& p : grid) {
    Supervisor::Options sup_options;
    sup_options.detection_delay = p.delay;
    sup_options.policy = p.policy;
    sup_options.rebalance_budget = p.budget;
    sup_options.telemetry = telemetry_session.telemetry();
    sup_options.flight_recorder = telemetry_session.flight_recorder();
    supervisors.emplace_back(*model, sup_options);
    rod::sim::SimulationCase c;
    c.graph = &graph;
    c.placement = &*plan;
    c.system = &system;
    c.inputs = &traces;
    c.options.duration = kDuration;
    c.options.failures = &chaos;
    c.options.recovery = &supervisors.back();
    c.options.telemetry = telemetry_session.telemetry();
    c.options.flight_recorder = telemetry_session.flight_recorder();
    cases.push_back(c);
  }
  telemetry_session.set_ready(true);  // setup done; /readyz flips to 200
  rod::sim::SweepOptions sweep_options;
  sweep_options.telemetry = telemetry_session.telemetry();
  const auto results = rod::sim::SimulateSweep(cases, sweep_options);

  for (size_t i = 0; i < grid.size(); ++i) {
    const Grid& p = grid[i];
    const auto& r = results[i];
    if (!r.ok() || !r->incident) {
      std::cerr << p.label << ": " << r.status().ToString() << "\n";
      continue;
    }
    const auto& inc = *r->incident;
    table.AddRow({p.label, Fmt(p.delay, 2), std::to_string(p.budget),
                  std::to_string(inc.operators_moved),
                  std::to_string(inc.lost_tuples), Fmt(inc.availability, 4),
                  inc.recovered ? Fmt(inc.recovery_time, 2) : "never",
                  Fmt(inc.during_recovery.p95 * 1e3, 2),
                  Fmt(inc.post_recovery.p95 * 1e3, 2)});
  }
  table.Print();
  std::cout << "\nlost = tuples dropped by the crash + rejected while dark; "
               "avail = accepted/offered;\nrecovery = crash -> first window "
               "stably under the recovered-utilization threshold;\nrec/post "
               "p95 = end-to-end latency during vs after recovery.\n";
  return 0;
}
