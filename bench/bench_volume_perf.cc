// Copyright (c) the ROD reproduction authors.
//
// Perf baseline of the feasible-set volume engine. Sweeps dims x nodes x
// samples x threads over ROD-placed weight matrices and measures the
// membership-kernel throughput (samples/sec), the speedup over 1 thread,
// bit-exact agreement between the parallel and sequential estimates, and
// the sample-cache cold (generate) vs warm (reuse) cost. Emits a
// machine-readable JSON baseline (fields documented in
// docs/BENCH_VOLUME.md) so later PRs can regress against it.
//
//   bench_volume_perf [--smoke] [--json=PATH] [--trace=PATH]
//                     [--threads=1,2,4,8]
//
// --smoke shrinks the sweep for CI; --json defaults to BENCH_volume.json.
// --trace attaches a telemetry sink to the shared thread pool and exports
// a Chrome trace of the pool's task spans (note: the per-task spans add
// measurable overhead, so trace-enabled throughput numbers are not
// comparable to the committed baseline).

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "geometry/feasible_set.h"
#include "geometry/hyperplane.h"
#include "geometry/sample_cache.h"
#include "placement/plan.h"
#include "placement/rod.h"
#include "telemetry/json_writer.h"

namespace {

using namespace rod;

struct Workload {
  size_t dims = 0;
  size_t nodes = 0;
};

struct Measurement {
  size_t dims, nodes, samples, threads, reps;
  double ratio = 0.0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
  bool bitexact_vs_seq = false;
  double cache_cold_ms = 0.0;
  double cache_warm_ms = 0.0;
};

/// A representative evaluator input: random operator load coefficients
/// (each operator mostly loads one stream), ROD-placed on a homogeneous
/// cluster — the exact shape every bench sweep feeds the estimator.
geom::FeasibleSet MakeWorkload(const Workload& w, uint64_t seed) {
  const size_t m = 6 * w.nodes;
  Matrix op_coeffs(m, w.dims);
  Rng rng(seed);
  for (size_t j = 0; j < m; ++j) {
    op_coeffs(j, j % w.dims) = rng.Uniform(0.5, 2.0);
    for (size_t k = 0; k < w.dims; ++k) {
      if (k != j % w.dims && rng.Bernoulli(0.3)) {
        op_coeffs(j, k) = rng.Uniform(0.05, 0.4);
      }
    }
  }
  Vector totals(w.dims, 0.0);
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k < w.dims; ++k) totals[k] += op_coeffs(j, k);
  }
  const auto system = place::SystemSpec::Homogeneous(w.nodes);
  auto placement = place::RodPlaceMatrix(op_coeffs, totals, system);
  ROD_CHECK_OK(placement.status());
  auto weights = geom::ComputeWeightMatrix(placement->NodeCoeffs(op_coeffs),
                                           totals, system.capacities);
  ROD_CHECK_OK(weights.status());
  return geom::FeasibleSet(std::move(*weights));
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void WriteJson(const std::string& path, const std::string& mode,
               const std::vector<Measurement>& rows) {
  std::ofstream out(path);
  telemetry::JsonWriter w(out);
  w.BeginObject();
  w.Key("bench").String("bench_volume_perf");
  w.Key("mode").String(mode);
  w.Key("hardware_concurrency")
      .Uint(std::max(1u, std::thread::hardware_concurrency()));
  w.Key("entries").BeginArray();
  for (const Measurement& m : rows) {
    w.BeginObjectInline();
    w.Key("dims").Uint(m.dims);
    w.Key("nodes").Uint(m.nodes);
    w.Key("samples").Uint(m.samples);
    w.Key("threads").Uint(m.threads);
    w.Key("reps").Uint(m.reps);
    w.Key("ratio").Double(m.ratio);
    w.Key("seconds").Double(m.seconds);
    w.Key("samples_per_sec").Double(m.samples_per_sec);
    w.Key("speedup_vs_1").Double(m.speedup_vs_1);
    w.Key("bitexact_vs_seq").Bool(m.bitexact_vs_seq);
    w.Key("cache_cold_ms").Double(m.cache_cold_ms);
    w.Key("cache_warm_ms").Double(m.cache_warm_ms);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  // The results baseline owns --json; the session only exports --trace
  // (pool task spans — the volume kernel itself runs inside pool chunks).
  bench::TelemetrySession telemetry(flags, /*owns_json=*/false);
  bool smoke = false;
  std::string out_path = flags.json_path.empty()
                             ? std::string("BENCH_volume.json")
                             : flags.json_path;
  std::vector<size_t> threads_list;
  for (const std::string& arg : flags.rest) {
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_list = bench::ParseThreadList(arg.substr(10));
    } else {
      std::cerr << "usage: bench_volume_perf [--smoke] [--json=PATH] "
                   "[--trace=PATH] [--threads=1,2,4,8]\n";
      return 2;
    }
  }
  if (threads_list.empty()) {
    threads_list = smoke ? std::vector<size_t>{1, 2}
                         : std::vector<size_t>{1, 2, 4, 8};
  }

  const std::vector<Workload> workloads =
      smoke ? std::vector<Workload>{{3, 5}, {6, 20}}
            : std::vector<Workload>{{3, 5}, {6, 20}, {10, 20}};
  const std::vector<size_t> sample_counts =
      smoke ? std::vector<size_t>{8192} : std::vector<size_t>{16384, 32768};
  // Samples evaluated per timed measurement (reps = target / samples).
  const size_t target_evals = smoke ? (1u << 17) : (1u << 22);

  bench::Banner("volume-engine perf sweep (dims x nodes x samples x threads)");
  bench::Table table({"dims", "nodes", "samples", "threads", "Msamples/s",
                      "speedup", "bitexact", "cold ms", "warm ms"});
  std::vector<Measurement> rows;
  bool all_bitexact = true;

  for (const Workload& w : workloads) {
    const geom::FeasibleSet fs = MakeWorkload(w, /*seed=*/42);
    for (size_t samples : sample_counts) {
      geom::VolumeOptions vol;
      vol.num_samples = samples;

      // Cold vs warm cache cost for this (dims, samples) key: generation
      // (miss) against a lookup returning the shared buffer (hit).
      geom::SimplexSampleCache fresh(4);
      geom::SimplexSampleKey key;
      key.dims = w.dims;
      key.num_samples = samples;
      auto t_cold = std::chrono::steady_clock::now();
      (void)fresh.Get(key);
      const double cold_ms = SecondsSince(t_cold) * 1e3;
      auto t_warm = std::chrono::steady_clock::now();
      (void)fresh.Get(key);
      const double warm_ms = SecondsSince(t_warm) * 1e3;

      const size_t reps = std::max<size_t>(1, target_evals / samples);
      double base_sps = 0.0;
      double seq_ratio = 0.0;
      for (size_t threads : threads_list) {
        vol.num_threads = threads;
        (void)fs.RatioToIdeal(vol);  // warm the global cache / pool
        double ratio = 0.0;
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t r = 0; r < reps; ++r) ratio = fs.RatioToIdeal(vol);
        const double secs = SecondsSince(t0);
        Measurement m;
        m.dims = w.dims;
        m.nodes = w.nodes;
        m.samples = samples;
        m.threads = threads;
        m.reps = reps;
        m.ratio = ratio;
        m.seconds = secs;
        m.samples_per_sec =
            static_cast<double>(samples) * static_cast<double>(reps) / secs;
        if (threads == threads_list.front()) {
          base_sps = m.samples_per_sec;
          seq_ratio = ratio;
        }
        m.speedup_vs_1 = m.samples_per_sec / base_sps;
        m.bitexact_vs_seq = (ratio == seq_ratio);
        all_bitexact = all_bitexact && m.bitexact_vs_seq;
        m.cache_cold_ms = cold_ms;
        m.cache_warm_ms = warm_ms;
        rows.push_back(m);
        table.AddRow({std::to_string(m.dims), std::to_string(m.nodes),
                      std::to_string(m.samples), std::to_string(m.threads),
                      bench::Fmt(m.samples_per_sec / 1e6, 1),
                      bench::Fmt(m.speedup_vs_1, 2),
                      m.bitexact_vs_seq ? "yes" : "NO",
                      bench::Fmt(m.cache_cold_ms, 2),
                      bench::Fmt(m.cache_warm_ms, 4)});
      }
    }
  }
  table.Print();
  std::cout << "\nparallel/sequential estimates bit-exact: "
            << (all_bitexact ? "yes" : "NO") << "\n";

  WriteJson(out_path, smoke ? "smoke" : "full", rows);
  std::cout << "wrote " << out_path << " (" << rows.size() << " entries)\n";
  return all_bitexact ? 0 : 1;
}
