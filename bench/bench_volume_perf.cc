// Copyright (c) the ROD reproduction authors.
//
// Perf baseline of the feasible-set volume engine. Sweeps dims x nodes x
// samples x threads over ROD-placed weight matrices — once per membership
// kernel path (AVX2 and forced-scalar, when the build and CPU support
// both) — and measures kernel throughput (samples/sec), the speedup over
// 1 thread, bit-exact agreement between the parallel and sequential
// estimates and between the SIMD and scalar paths, and the sample-cache
// cold (generate) vs warm (reuse) cost. A second section times ROD's
// volume-greedy placement with delta candidate scoring on vs off and
// checks the placements are identical. Emits a machine-readable JSON
// baseline (fields documented in docs/BENCH_VOLUME.md) so later PRs can
// regress against it.
//
//   bench_volume_perf [--smoke] [--json=PATH] [--trace=PATH]
//                     [--threads=1,2,4,8] [--min-simd-speedup=X]
//
// --smoke shrinks the sweep for CI; --json defaults to BENCH_volume.json.
// --min-simd-speedup=X exits non-zero unless the SIMD path beats the
// scalar path by at least X at the largest single-threaded workload
// (skipped with a note when the SIMD path is unavailable, e.g. under
// ROD_DISABLE_SIMD). --trace attaches a telemetry sink to the shared
// thread pool and exports a Chrome trace of the pool's task spans (note:
// the per-task spans add measurable overhead, so trace-enabled throughput
// numbers are not comparable to the committed baseline).

#include <chrono>
#include <fstream>
#include <iostream>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "geometry/feasible_set.h"
#include "geometry/hyperplane.h"
#include "geometry/sample_cache.h"
#include "geometry/simd_kernel.h"
#include "placement/plan.h"
#include "placement/rod.h"
#include "telemetry/json_writer.h"

namespace {

using namespace rod;

struct Workload {
  size_t dims = 0;
  size_t nodes = 0;
};

struct Measurement {
  size_t dims, nodes, samples, threads, reps;
  std::string simd_path;  ///< kernel path this row ran on: "avx2"/"scalar"
  double ratio = 0.0;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  double speedup_vs_1 = 0.0;
  bool bitexact_vs_seq = false;
  /// SIMD and scalar paths agree on the estimate (trivially true on the
  /// scalar rows; checked against the scalar run on the SIMD rows).
  bool bitexact_vs_scalar = false;
  /// SIMD-path throughput over the scalar path at the same
  /// (dims, nodes, samples, threads); 0 on scalar rows.
  double simd_speedup_vs_scalar = 0.0;
  double cache_cold_ms = 0.0;
  double cache_warm_ms = 0.0;
};

/// Delta-vs-full scoring comparison of one volume-greedy placement.
struct DeltaRun {
  size_t dims, nodes, samples;
  double delta_seconds = 0.0;
  double full_seconds = 0.0;
  double speedup = 0.0;       ///< full_seconds / delta_seconds
  bool identical = false;     ///< assignments equal element-wise
};

/// The raw matrices every sweep builds its evaluator input from: random
/// operator load coefficients (each operator mostly loads one stream) on
/// a homogeneous cluster.
struct WorkloadMatrices {
  Matrix op_coeffs;
  Vector totals;
  place::SystemSpec system;
};

WorkloadMatrices MakeMatrices(const Workload& w, uint64_t seed) {
  const size_t m = 6 * w.nodes;
  Matrix op_coeffs(m, w.dims);
  Rng rng(seed);
  for (size_t j = 0; j < m; ++j) {
    op_coeffs(j, j % w.dims) = rng.Uniform(0.5, 2.0);
    for (size_t k = 0; k < w.dims; ++k) {
      if (k != j % w.dims && rng.Bernoulli(0.3)) {
        op_coeffs(j, k) = rng.Uniform(0.05, 0.4);
      }
    }
  }
  Vector totals(w.dims, 0.0);
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k < w.dims; ++k) totals[k] += op_coeffs(j, k);
  }
  return {std::move(op_coeffs), std::move(totals),
          place::SystemSpec::Homogeneous(w.nodes)};
}

/// A representative evaluator input: the matrices above, ROD-placed —
/// the exact shape every bench sweep feeds the estimator.
geom::FeasibleSet MakeWorkload(const Workload& w, uint64_t seed) {
  const WorkloadMatrices wm = MakeMatrices(w, seed);
  auto placement =
      place::RodPlaceMatrix(wm.op_coeffs, wm.totals, wm.system);
  ROD_CHECK_OK(placement.status());
  auto weights = geom::ComputeWeightMatrix(placement->NodeCoeffs(wm.op_coeffs),
                                           wm.totals, wm.system.capacities);
  ROD_CHECK_OK(weights.status());
  return geom::FeasibleSet(std::move(*weights));
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void WriteJson(const std::string& path, const std::string& mode,
               bool simd_available, const std::vector<Measurement>& rows,
               const std::vector<DeltaRun>& delta_rows) {
  std::ofstream out(path);
  telemetry::JsonWriter w(out);
  w.BeginObject();
  w.Key("bench").String("bench_volume_perf");
  w.Key("mode").String(mode);
  bench::WriteBuildMetadata(w);
  w.Key("simd_available").Bool(simd_available);
  w.Key("hardware_concurrency")
      .Uint(std::max(1u, std::thread::hardware_concurrency()));
  w.Key("entries").BeginArray();
  for (const Measurement& m : rows) {
    w.BeginObjectInline();
    w.Key("dims").Uint(m.dims);
    w.Key("nodes").Uint(m.nodes);
    w.Key("samples").Uint(m.samples);
    w.Key("threads").Uint(m.threads);
    w.Key("reps").Uint(m.reps);
    w.Key("simd_path").String(m.simd_path);
    w.Key("ratio").Double(m.ratio);
    w.Key("seconds").Double(m.seconds);
    w.Key("samples_per_sec").Double(m.samples_per_sec);
    w.Key("speedup_vs_1").Double(m.speedup_vs_1);
    w.Key("bitexact_vs_seq").Bool(m.bitexact_vs_seq);
    w.Key("bitexact_vs_scalar").Bool(m.bitexact_vs_scalar);
    w.Key("simd_speedup_vs_scalar").Double(m.simd_speedup_vs_scalar);
    w.Key("cache_cold_ms").Double(m.cache_cold_ms);
    w.Key("cache_warm_ms").Double(m.cache_warm_ms);
    w.EndObject();
  }
  w.EndArray();
  w.Key("rod_delta").BeginArray();
  for (const DeltaRun& d : delta_rows) {
    w.BeginObjectInline();
    w.Key("dims").Uint(d.dims);
    w.Key("nodes").Uint(d.nodes);
    w.Key("samples").Uint(d.samples);
    w.Key("delta_seconds").Double(d.delta_seconds);
    w.Key("full_seconds").Double(d.full_seconds);
    w.Key("speedup").Double(d.speedup);
    w.Key("identical").Bool(d.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  // The results baseline owns --json; the session only exports --trace
  // (pool task spans — the volume kernel itself runs inside pool chunks).
  bench::TelemetrySession telemetry(flags, /*owns_json=*/false);
  bool smoke = false;
  double min_simd_speedup = 0.0;
  std::string out_path = flags.json_path.empty()
                             ? std::string("BENCH_volume.json")
                             : flags.json_path;
  std::vector<size_t> threads_list;
  for (const std::string& arg : flags.rest) {
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_list = bench::ParseThreadList(arg.substr(10));
    } else if (arg.rfind("--min-simd-speedup=", 0) == 0) {
      min_simd_speedup = std::stod(arg.substr(19));
    } else {
      std::cerr << "usage: bench_volume_perf [--smoke] [--json=PATH] "
                   "[--trace=PATH] [--threads=1,2,4,8] "
                   "[--min-simd-speedup=X]\n";
      return 2;
    }
  }
  if (threads_list.empty()) {
    threads_list = smoke ? std::vector<size_t>{1, 2}
                         : std::vector<size_t>{1, 2, 4, 8};
  }

  const std::vector<Workload> workloads =
      smoke ? std::vector<Workload>{{3, 5}, {6, 20}}
            : std::vector<Workload>{{3, 5}, {6, 20}, {10, 20}};
  const std::vector<size_t> sample_counts =
      smoke ? std::vector<size_t>{8192} : std::vector<size_t>{16384, 32768};
  // Samples evaluated per timed measurement (reps = target / samples).
  const size_t target_evals = smoke ? (1u << 17) : (1u << 22);

  // Kernel paths to sweep: the runtime-dispatched SIMD path first (when
  // compiled in, supported by this CPU, and not vetoed by
  // ROD_DISABLE_SIMD — the env veto is respected, which is what the CI
  // forced-scalar job relies on), then forced-scalar for the comparison
  // rows.
  const bool simd_available = geom::SimdKernelEnabled();
  std::vector<bool> simd_modes;
  if (simd_available) simd_modes.push_back(true);
  simd_modes.push_back(false);

  bench::Banner("volume-engine perf sweep (dims x nodes x samples x threads)");
  bench::Table table({"path", "dims", "nodes", "samples", "threads",
                      "Msamples/s", "speedup", "vs scalar", "bitexact",
                      "cold ms", "warm ms"});
  std::vector<Measurement> rows;
  bool all_bitexact = true;
  // SIMD-vs-scalar throughput at the largest workload, threads_list[0]
  // (single-threaded when the default list is used): the gate metric.
  double gate_simd_speedup = 0.0;

  for (const Workload& w : workloads) {
    const geom::FeasibleSet fs = MakeWorkload(w, /*seed=*/42);
    for (size_t samples : sample_counts) {
      geom::VolumeOptions vol;
      vol.num_samples = samples;

      // Cold vs warm cache cost for this (dims, samples) key: generation
      // (miss) against a lookup returning the shared buffer (hit).
      geom::SimplexSampleCache fresh(4);
      geom::SimplexSampleKey key;
      key.dims = w.dims;
      key.num_samples = samples;
      auto t_cold = std::chrono::steady_clock::now();
      (void)fresh.Get(key);
      const double cold_ms = SecondsSince(t_cold) * 1e3;
      auto t_warm = std::chrono::steady_clock::now();
      (void)fresh.Get(key);
      const double warm_ms = SecondsSince(t_warm) * 1e3;

      const size_t reps = std::max<size_t>(1, target_evals / samples);
      // Scalar-path results of this (samples) block, keyed by position in
      // threads_list, for the SIMD rows' vs-scalar columns. The scalar
      // pass runs last, so compare SIMD rows retroactively.
      std::vector<size_t> simd_rows(threads_list.size(), SIZE_MAX);
      for (bool use_simd : simd_modes) {
        geom::SetSimdKernelEnabled(use_simd);
        double base_sps = 0.0;
        double seq_ratio = 0.0;
        for (size_t ti = 0; ti < threads_list.size(); ++ti) {
          const size_t threads = threads_list[ti];
          vol.num_threads = threads;
          (void)fs.RatioToIdeal(vol);  // warm the global cache / pool
          double ratio = 0.0;
          const auto t0 = std::chrono::steady_clock::now();
          for (size_t r = 0; r < reps; ++r) ratio = fs.RatioToIdeal(vol);
          const double secs = SecondsSince(t0);
          Measurement m;
          m.dims = w.dims;
          m.nodes = w.nodes;
          m.samples = samples;
          m.threads = threads;
          m.reps = reps;
          m.simd_path = geom::ActiveSimdIsa();
          m.ratio = ratio;
          m.seconds = secs;
          m.samples_per_sec =
              static_cast<double>(samples) * static_cast<double>(reps) / secs;
          if (ti == 0) {
            base_sps = m.samples_per_sec;
            seq_ratio = ratio;
          }
          m.speedup_vs_1 = m.samples_per_sec / base_sps;
          m.bitexact_vs_seq = (ratio == seq_ratio);
          m.bitexact_vs_scalar = !use_simd;  // SIMD rows fixed below
          m.cache_cold_ms = cold_ms;
          m.cache_warm_ms = warm_ms;
          rows.push_back(m);
          if (use_simd) {
            simd_rows[ti] = rows.size() - 1;
          } else if (simd_rows[ti] != SIZE_MAX) {
            Measurement& sm = rows[simd_rows[ti]];
            sm.bitexact_vs_scalar = (sm.ratio == m.ratio);
            sm.simd_speedup_vs_scalar = sm.samples_per_sec / m.samples_per_sec;
            if (ti == 0 && w.dims == workloads.back().dims &&
                w.nodes == workloads.back().nodes &&
                samples == sample_counts.back()) {
              gate_simd_speedup = sm.simd_speedup_vs_scalar;
            }
          }
          all_bitexact = all_bitexact && m.bitexact_vs_seq;
        }
      }
      for (const Measurement& m : rows) {
        if (m.dims != w.dims || m.nodes != w.nodes || m.samples != samples) {
          continue;
        }
        all_bitexact = all_bitexact && m.bitexact_vs_scalar;
        table.AddRow({m.simd_path, std::to_string(m.dims),
                      std::to_string(m.nodes), std::to_string(m.samples),
                      std::to_string(m.threads),
                      bench::Fmt(m.samples_per_sec / 1e6, 1),
                      bench::Fmt(m.speedup_vs_1, 2),
                      m.simd_speedup_vs_scalar > 0.0
                          ? bench::Fmt(m.simd_speedup_vs_scalar, 2)
                          : std::string("-"),
                      m.bitexact_vs_seq && m.bitexact_vs_scalar ? "yes" : "NO",
                      bench::Fmt(m.cache_cold_ms, 2),
                      bench::Fmt(m.cache_warm_ms, 4)});
      }
    }
  }
  geom::SetSimdKernelEnabled(simd_available);  // restore dispatch state
  table.Print();
  std::cout << "\nparallel/sequential and simd/scalar estimates bit-exact: "
            << (all_bitexact ? "yes" : "NO") << "\n";

  // Volume-greedy ROD with delta candidate scoring on vs off: the
  // placements must be identical (the delta context replays exactly the
  // per-sample feasibility the full re-test computes); the timing shows
  // what the incremental path buys.
  bench::Banner("ROD volume-greedy placement: delta vs full scoring");
  bench::Table dtable({"dims", "nodes", "samples", "delta ms", "full ms",
                       "speedup", "identical"});
  std::vector<DeltaRun> delta_rows;
  bool all_identical = true;
  const size_t delta_samples = smoke ? 4096 : 16384;
  for (const Workload& w : workloads) {
    const WorkloadMatrices wm = MakeMatrices(w, /*seed=*/42);
    place::RodOptions ro;
    ro.mode = place::RodOptions::Mode::kVolumeGreedy;
    ro.volume.num_samples = delta_samples;
    DeltaRun d;
    d.dims = w.dims;
    d.nodes = w.nodes;
    d.samples = delta_samples;
    ro.delta_eval = true;
    auto t0 = std::chrono::steady_clock::now();
    auto with_delta =
        place::RodPlaceMatrix(wm.op_coeffs, wm.totals, wm.system, ro);
    d.delta_seconds = SecondsSince(t0);
    ro.delta_eval = false;
    t0 = std::chrono::steady_clock::now();
    auto full =
        place::RodPlaceMatrix(wm.op_coeffs, wm.totals, wm.system, ro);
    d.full_seconds = SecondsSince(t0);
    ROD_CHECK_OK(with_delta.status());
    ROD_CHECK_OK(full.status());
    d.identical = with_delta->assignment() == full->assignment();
    d.speedup = d.delta_seconds > 0 ? d.full_seconds / d.delta_seconds : 0.0;
    all_identical = all_identical && d.identical;
    delta_rows.push_back(d);
    dtable.AddRow({std::to_string(d.dims), std::to_string(d.nodes),
                   std::to_string(d.samples),
                   bench::Fmt(d.delta_seconds * 1e3, 1),
                   bench::Fmt(d.full_seconds * 1e3, 1),
                   bench::Fmt(d.speedup, 2), d.identical ? "yes" : "NO"});
  }
  dtable.Print();
  std::cout << "\ndelta and full scoring place identically: "
            << (all_identical ? "yes" : "NO") << "\n";

  bool simd_ok = true;
  if (min_simd_speedup > 0.0) {
    if (!simd_available) {
      std::cout << "--min-simd-speedup skipped: SIMD path unavailable\n";
    } else {
      simd_ok = gate_simd_speedup >= min_simd_speedup;
      std::cout << "simd speedup gate: " << bench::Fmt(gate_simd_speedup, 2)
                << (simd_ok ? " >= " : " BELOW FLOOR ")
                << bench::Fmt(min_simd_speedup, 2) << "\n";
    }
  }

  WriteJson(out_path, smoke ? "smoke" : "full", simd_available, rows,
            delta_rows);
  std::cout << "wrote " << out_path << " (" << rows.size() << " entries, "
            << delta_rows.size() << " delta runs)\n";
  return all_bitexact && all_identical && simd_ok ? 0 : 1;
}
