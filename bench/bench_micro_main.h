// Copyright (c) the ROD reproduction authors.
//
// Shared main() for the google-benchmark micro benches: strips the
// repo-standard flags (--json/--trace/--serve/--flightrecorder, wired
// through a TelemetrySession like every other bench binary) and hands
// whatever remains to the benchmark library's own parser, so
// --benchmark_filter and friends keep working:
//
//   bench_micro_rod --json=m1.json --benchmark_filter=BM_RodPlace
//
// The session attaches its sink to the shared thread pool, so parallel
// kernels under benchmark (e.g. the volume engine's ParallelFor) show up
// in the exported trace; export happens after RunSpecifiedBenchmarks
// returns, satisfying the exporters' quiescence requirement.

#ifndef ROD_BENCH_BENCH_MICRO_MAIN_H_
#define ROD_BENCH_BENCH_MICRO_MAIN_H_

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"

namespace rod::bench {

inline int MicroBenchMain(int argc, char** argv) {
  BenchFlags flags = ParseBenchFlags(argc, argv);
  TelemetrySession session(flags);
  session.set_ready(true);

  // Rebuild an argv holding only the flags we did not consume;
  // flags.rest owns the storage for the remainder of main.
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (std::string& arg : flags.rest) bench_argv.push_back(arg.data());
  int bench_argc = static_cast<int>(bench_argv.size());

  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rod::bench

#define ROD_MICRO_BENCH_MAIN()                              \
  int main(int argc, char** argv) {                         \
    return ::rod::bench::MicroBenchMain(argc, argv);        \
  }

#endif  // ROD_BENCH_BENCH_MICRO_MAIN_H_
