// Copyright (c) the ROD reproduction authors.
//
// Perf baseline of the trace-store ingest path (trace/store): writes a
// segmented store several times larger than the reader's resident-segment
// budget, then measures sustained read throughput three ways — the
// zero-copy BatchCursor scan with checksums verified, the same scan on
// the pread fallback path, and the engine-facing StoreReplay arrival feed
// — while watching the process RSS to prove the buffer manager really
// holds memory to its budget regardless of file size. Finally replays a
// store-backed trace through the simulation engine and asserts the
// result is bit-identical to driving the same arrivals from memory.
// Emits a machine-readable JSON baseline (fields documented in
// docs/BENCH_INGEST.md) so later PRs can regress against it.
//
//   bench_ingest_perf [--mode smoke|full] [--json=PATH]
//                     [--records N] [--records-per-segment N]
//                     [--resident N] [--min-scan-tps X] [--min-feed-tps X]
//                     [--max-rss-growth-mib X]
//
// --mode smoke shrinks the trace for CI; --json defaults to
// BENCH_INGEST.json. Exit code is nonzero iff the replay bit-exactness
// check fails, a throughput floor is violated (--min-*-tps, default 0 =
// disabled), or the scan's RSS growth exceeds --max-rss-growth-mib
// (default 0 = disabled).

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "runtime/engine.h"
#include "runtime/workload_driver.h"
#include "telemetry/json_writer.h"
#include "trace/store/reader.h"
#include "trace/store/replay.h"
#include "trace/store/writer.h"

namespace {

using namespace rod;
using trace::store::ArrivalRecord;
using trace::store::BatchCursor;
using trace::store::ReaderOptions;
using trace::store::ReplaySet;
using trace::store::SegmentReader;
using trace::store::SegmentWriter;
using trace::store::WriterOptions;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current resident set in KiB (/proc/self/status VmRSS); 0 off-Linux.
uint64_t RssKib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    uint64_t kib = 0;
    if (std::sscanf(line.c_str(), "VmRSS: %" SCNu64 " kB", &kib) == 1) {
      return kib;
    }
  }
  return 0;
}

struct Config {
  bool smoke = false;
  uint64_t records = 16ull << 20;       ///< 16 Mi records = 256 MiB payload.
  uint32_t records_per_segment = 64 * 1024;  ///< 1 MiB payload per segment.
  size_t resident_segments = 4;
  double min_scan_tps = 0.0;
  double min_feed_tps = 0.0;
  double max_rss_growth_mib = 0.0;
};

struct PhaseResult {
  double seconds = 0.0;
  double records_per_sec = 0.0;
  double mb_per_sec = 0.0;
};

PhaseResult Rate(uint64_t records, double seconds) {
  PhaseResult r;
  r.seconds = seconds;
  r.records_per_sec = static_cast<double>(records) / seconds;
  r.mb_per_sec =
      static_cast<double>(records) * sizeof(ArrivalRecord) / seconds / 1e6;
  return r;
}

/// Streams `records` synthetic Poisson arrivals straight into the writer
/// — never materialized in memory, so the write phase RSS stays flat and
/// the file can exceed RAM.
Result<PhaseResult> WritePhase(const std::string& path, const Config& cfg) {
  WriterOptions opts;
  opts.records_per_segment = cfg.records_per_segment;
  auto writer = SegmentWriter::Open(path, opts);
  ROD_RETURN_IF_ERROR(writer.status());
  Rng rng(0xbeefcafeULL);
  const double start = Now();
  double t = 0.0;
  for (uint64_t i = 0; i < cfg.records; ++i) {
    t += rng.Exponential(/*lambda=*/1e4);
    ROD_RETURN_IF_ERROR(writer->Append({.time = t}));
  }
  ROD_RETURN_IF_ERROR(writer->Finish());
  return Rate(cfg.records, Now() - start);
}

/// Full-file zero-copy cursor scan (checksums verified on load). The
/// returned checksum-ish sum keeps the loop from being optimized away.
Result<PhaseResult> ScanPhase(const std::string& path, const Config& cfg,
                              bool use_mmap, double* sum_out,
                              trace::store::ReaderStats* stats_out) {
  ReaderOptions opts;
  opts.resident_segments = cfg.resident_segments;
  opts.use_mmap = use_mmap;
  auto reader = SegmentReader::Open(path, opts);
  ROD_RETURN_IF_ERROR(reader.status());
  const double start = Now();
  BatchCursor cursor(&*reader);
  double sum = 0.0;
  uint64_t records = 0;
  for (;;) {
    auto span = cursor.NextSpan();
    ROD_RETURN_IF_ERROR(span.status());
    if (span->empty()) break;
    for (const ArrivalRecord& r : *span) sum += r.time;
    records += span->size();
    cursor.Advance(span->size());
  }
  const double seconds = Now() - start;
  if (records != reader->info().total_records) {
    return Status::Internal("scan count mismatch");
  }
  *sum_out = sum;
  if (stats_out != nullptr) *stats_out = reader->stats();
  return Rate(records, seconds);
}

/// The engine-facing hot path: one StoreReplay::NextArrival call per
/// tuple, exactly what the event loop does in replay mode.
Result<PhaseResult> FeedPhase(const std::string& path, const Config& cfg,
                              double* sum_out) {
  ReaderOptions opts;
  opts.resident_segments = cfg.resident_segments;
  auto replay = ReplaySet::OpenStores({path}, opts);
  ROD_RETURN_IF_ERROR(replay.status());
  const double start = Now();
  double sum = 0.0;
  uint64_t records = 0;
  for (;;) {
    const double t = replay->feed(0).NextArrival();
    if (!std::isfinite(t)) break;
    sum += t;
    ++records;
  }
  ROD_RETURN_IF_ERROR(replay->status());
  const double seconds = Now() - start;
  if (records != cfg.records) {
    return Status::Internal("feed count mismatch");
  }
  *sum_out = sum;
  return Rate(records, seconds);
}

/// Replay bit-exactness: a fan-out deployment driven once from in-memory
/// arrivals and once from the store file holding the same arrivals must
/// produce identical SimulationResults (store read path included).
struct ExactnessResult {
  bool bitexact = false;
  size_t output_tuples = 0;
};

bool SameResult(const sim::SimulationResult& a,
                const sim::SimulationResult& b) {
  if (a.input_tuples != b.input_tuples || a.shed_tuples != b.shed_tuples ||
      a.output_tuples != b.output_tuples ||
      a.processed_events != b.processed_events ||
      a.mean_latency != b.mean_latency || a.p50_latency != b.p50_latency ||
      a.p95_latency != b.p95_latency || a.p99_latency != b.p99_latency ||
      a.max_latency != b.max_latency ||
      a.max_node_utilization != b.max_node_utilization ||
      a.final_backlog != b.final_backlog) {
    return false;
  }
  if (a.node_utilization.size() != b.node_utilization.size()) return false;
  for (size_t i = 0; i < a.node_utilization.size(); ++i) {
    if (a.node_utilization[i] != b.node_utilization[i]) return false;
  }
  return true;
}

Result<ExactnessResult> ReplayExactness(const std::string& path) {
  query::QueryGraph graph;
  const auto in = graph.AddInputStream("I");
  auto src = graph.AddOperator({.name = "src", .kind = query::OperatorKind::kMap,
                                .cost = 2e-4, .selectivity = 1.0},
                               {query::StreamRef::Input(in)});
  ROD_RETURN_IF_ERROR(src.status());
  for (const char* name : {"a", "b", "c"}) {
    ROD_RETURN_IF_ERROR(
        graph
            .AddOperator({.name = name, .kind = query::OperatorKind::kMap,
                          .cost = 4e-4, .selectivity = 0.9},
                         {query::StreamRef::Op(*src)})
            .status());
  }
  const place::SystemSpec system = place::SystemSpec::Homogeneous(2);
  const place::Placement plan{2, {0, 1, 1, 1}};

  sim::SimulationOptions options;
  options.duration = 20.0;
  trace::RateTrace rate;
  rate.window_sec = options.duration;
  rate.rates = {400.0};

  const auto arrivals = sim::MaterializeArrivals(
      {rate}, options.poisson_arrivals, options.seed, options.duration);
  WriterOptions wopts;
  wopts.records_per_segment = 1024;
  ROD_RETURN_IF_ERROR(
      trace::store::WriteTimestamps(arrivals[0], 0, path, wopts));

  ReplaySet vec = ReplaySet::FromVectors(arrivals);
  options.replay = &vec;
  auto from_memory = sim::SimulatePlacement(graph, plan, system, {rate},
                                            options);
  ROD_RETURN_IF_ERROR(from_memory.status());

  ExactnessResult result;
  result.bitexact = true;
  result.output_tuples = from_memory->output_tuples;
  for (const bool use_mmap : {true, false}) {
    ReaderOptions ropts;
    ropts.use_mmap = use_mmap;
    ropts.resident_segments = 2;
    auto store = ReplaySet::OpenStores({path}, ropts);
    ROD_RETURN_IF_ERROR(store.status());
    options.replay = &*store;
    auto from_store =
        sim::SimulatePlacement(graph, plan, system, {rate}, options);
    ROD_RETURN_IF_ERROR(from_store.status());
    result.bitexact = result.bitexact && SameResult(*from_memory, *from_store);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchFlags flags = bench::ParseBenchFlags(argc, argv);
  Config cfg;
  std::string json_path =
      flags.json_path.empty() ? "BENCH_INGEST.json" : flags.json_path;
  for (size_t a = 0; a < flags.rest.size(); ++a) {
    const std::string& arg = flags.rest[a];
    auto next = [&]() -> std::string {
      return ++a < flags.rest.size() ? flags.rest[a] : std::string();
    };
    if (arg == "--mode") {
      const std::string mode = next();
      cfg.smoke = mode == "smoke";
      if (cfg.smoke) cfg.records = 2ull << 20;  // 32 MiB: 8x a 4 MiB budget
    } else if (arg == "--records") {
      cfg.records = std::stoull(next());
    } else if (arg == "--records-per-segment") {
      cfg.records_per_segment = static_cast<uint32_t>(std::stoul(next()));
    } else if (arg == "--resident") {
      cfg.resident_segments = std::stoul(next());
    } else if (arg == "--min-scan-tps") {
      cfg.min_scan_tps = std::stod(next());
    } else if (arg == "--min-feed-tps") {
      cfg.min_feed_tps = std::stod(next());
    } else if (arg == "--max-rss-growth-mib") {
      cfg.max_rss_growth_mib = std::stod(next());
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }

  const uint64_t budget_bytes =
      cfg.resident_segments *
      (trace::store::kSegmentHeaderBytes +
       static_cast<uint64_t>(cfg.records_per_segment) * sizeof(ArrivalRecord));
  const uint64_t payload_bytes = cfg.records * sizeof(ArrivalRecord);
  bench::Banner("trace-store ingest (" +
                std::string(cfg.smoke ? "smoke" : "full") + ")");
  std::cout << "  records            " << cfg.records << " ("
            << bench::Fmt(static_cast<double>(payload_bytes) / 1e6, 1)
            << " MB payload)\n"
            << "  segment capacity   " << cfg.records_per_segment
            << " records\n"
            << "  resident budget    " << cfg.resident_segments
            << " segments ("
            << bench::Fmt(static_cast<double>(budget_bytes) / 1e6, 1)
            << " MB) -> file is "
            << bench::Fmt(static_cast<double>(payload_bytes) /
                              static_cast<double>(budget_bytes),
                          1)
            << "x the budget\n";

  const std::string store_path = "bench_ingest.rodtrc";
  const std::string gate_path = "bench_ingest_gate.rodtrc";

  auto fail = [&](const Status& status) {
    std::cerr << "bench_ingest_perf: " << status.ToString() << "\n";
    std::remove(store_path.c_str());
    std::remove(gate_path.c_str());
    return 1;
  };

  const uint64_t rss_start_kib = RssKib();
  auto write = WritePhase(store_path, cfg);
  if (!write.ok()) return fail(write.status());

  const uint64_t rss_before_scan_kib = RssKib();
  double scan_sum = 0.0;
  trace::store::ReaderStats scan_stats;
  auto scan = ScanPhase(store_path, cfg, /*use_mmap=*/true, &scan_sum,
                        &scan_stats);
  if (!scan.ok()) return fail(scan.status());
  const uint64_t rss_after_scan_kib = RssKib();
  const double rss_growth_mib =
      rss_after_scan_kib > rss_before_scan_kib
          ? static_cast<double>(rss_after_scan_kib - rss_before_scan_kib) /
                1024.0
          : 0.0;

  double pread_sum = 0.0;
  auto pread_scan =
      ScanPhase(store_path, cfg, /*use_mmap=*/false, &pread_sum, nullptr);
  if (!pread_scan.ok()) return fail(pread_scan.status());
  if (pread_sum != scan_sum) {
    return fail(Status::Internal("mmap and pread scans disagree"));
  }

  double feed_sum = 0.0;
  auto feed = FeedPhase(store_path, cfg, &feed_sum);
  if (!feed.ok()) return fail(feed.status());
  if (feed_sum != scan_sum) {
    return fail(Status::Internal("cursor scan and replay feed disagree"));
  }

  auto exact = ReplayExactness(gate_path);
  if (!exact.ok()) return fail(exact.status());

  bench::Table table({"phase", "s", "Mrec/s", "MB/s"});
  auto add = [&table](const char* name, const PhaseResult& r) {
    table.AddRow({name, bench::Fmt(r.seconds, 3),
                  bench::Fmt(r.records_per_sec / 1e6, 2),
                  bench::Fmt(r.mb_per_sec, 1)});
  };
  add("write", *write);
  add("scan (mmap)", *scan);
  add("scan (pread)", *pread_scan);
  add("replay feed", *feed);
  table.Print();
  std::cout << "  scan RSS growth    " << bench::Fmt(rss_growth_mib, 1)
            << " MiB (budget "
            << bench::Fmt(static_cast<double>(budget_bytes) / 1e6, 1)
            << " MB; segment loads " << scan_stats.segment_loads
            << ", evictions " << scan_stats.evictions << ")\n"
            << "  replay bit-exact   "
            << (exact->bitexact ? "yes" : "NO — STORE DIVERGES") << " ("
            << exact->output_tuples << " sink outputs compared)\n";

  // Gates.
  bool ok = exact->bitexact;
  if (!exact->bitexact) {
    std::cerr << "GATE: store-backed replay is not bit-exact\n";
  }
  if (cfg.min_scan_tps > 0.0 && scan->records_per_sec < cfg.min_scan_tps) {
    std::cerr << "GATE: scan " << scan->records_per_sec << " rec/s < floor "
              << cfg.min_scan_tps << "\n";
    ok = false;
  }
  if (cfg.min_feed_tps > 0.0 && feed->records_per_sec < cfg.min_feed_tps) {
    std::cerr << "GATE: feed " << feed->records_per_sec << " rec/s < floor "
              << cfg.min_feed_tps << "\n";
    ok = false;
  }
  if (cfg.max_rss_growth_mib > 0.0 &&
      rss_growth_mib > cfg.max_rss_growth_mib) {
    std::cerr << "GATE: scan RSS growth " << rss_growth_mib
              << " MiB > ceiling " << cfg.max_rss_growth_mib << " MiB\n";
    ok = false;
  }

  {
    std::ofstream out(json_path);
    telemetry::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema").String("rod.bench_ingest.v1");
    bench::WriteBuildMetadata(w);
    w.Key("config").BeginObjectInline();
    w.Key("mode").String(cfg.smoke ? "smoke" : "full");
    w.Key("records").Uint(cfg.records);
    w.Key("records_per_segment").Uint(cfg.records_per_segment);
    w.Key("resident_segments").Uint(cfg.resident_segments);
    w.Key("payload_bytes").Uint(payload_bytes);
    w.Key("resident_budget_bytes").Uint(budget_bytes);
    w.EndObject();
    auto phase = [&w](const char* name, const PhaseResult& r) {
      w.Key(name).BeginObjectInline();
      w.Key("seconds").Double(r.seconds);
      w.Key("records_per_sec").Double(r.records_per_sec);
      w.Key("mb_per_sec").Double(r.mb_per_sec);
      w.EndObject();
    };
    phase("write", *write);
    phase("scan_mmap", *scan);
    phase("scan_pread", *pread_scan);
    phase("replay_feed", *feed);
    w.Key("memory").BeginObjectInline();
    w.Key("rss_start_kib").Uint(rss_start_kib);
    w.Key("rss_before_scan_kib").Uint(rss_before_scan_kib);
    w.Key("rss_after_scan_kib").Uint(rss_after_scan_kib);
    w.Key("scan_rss_growth_mib").Double(rss_growth_mib);
    w.Key("segment_loads").Uint(scan_stats.segment_loads);
    w.Key("evictions").Uint(scan_stats.evictions);
    w.EndObject();
    w.Key("replay").BeginObjectInline();
    w.Key("bitexact").Bool(exact->bitexact);
    w.Key("outputs_compared").Uint(exact->output_tuples);
    w.EndObject();
    w.Key("gates").BeginObjectInline();
    w.Key("min_scan_tps").Double(cfg.min_scan_tps);
    w.Key("min_feed_tps").Double(cfg.min_feed_tps);
    w.Key("max_rss_growth_mib").Double(cfg.max_rss_growth_mib);
    w.Key("passed").Bool(ok);
    w.EndObject();
    w.EndObject();
    out << "\n";
    std::cout << "wrote " << json_path << " (ingest baseline)\n";
  }

  std::remove(store_path.c_str());
  std::remove(gate_path.c_str());
  return ok ? 0 : 1;
}
