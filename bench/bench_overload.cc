// Experiment A5 (ours) — graceful degradation past the feasible
// boundary: goodput and p99 latency vs. load scale for ROD and Random
// placements under each overflow/shedding policy. Below the boundary all
// configurations are equivalent; past it, unbounded queues blow up the
// tail while bounded queues trade a controlled fraction of the input for
// bounded latency — and QoS-aware eviction keeps more of the *valuable*
// tuples than blind dropping. With --smoke the binary asserts the
// degradation contract on a reduced grid (CI's Release overload gate).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runtime/engine.h"
#include "runtime/node.h"
#include "runtime/sweep.h"
#include "telemetry/json_writer.h"

namespace {

using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;
using rod::sim::OverflowPolicy;
using rod::sim::SimulationOptions;
using rod::sim::SimulationResult;

constexpr double kDuration = 40.0;
constexpr size_t kQueueCapacity = 256;

struct PolicyChoice {
  std::string label;
  bool bounded = false;
  OverflowPolicy policy = OverflowPolicy::kDropNewest;
};

const std::vector<PolicyChoice>& Policies() {
  static const std::vector<PolicyChoice> kPolicies = {
      {"unbounded", false, OverflowPolicy::kDropNewest},
      {"drop-new", true, OverflowPolicy::kDropNewest},
      {"drop-old", true, OverflowPolicy::kDropOldest},
      {"random", true, OverflowPolicy::kRandom},
      {"qos", true, OverflowPolicy::kQosWeighted},
  };
  return kPolicies;
}

struct Row {
  std::string placement;
  std::string policy;
  double scale = 0.0;
  double goodput = 0.0;  ///< Sink outputs per virtual second.
  double p99_ms = 0.0;
  double shed_fraction = 0.0;
  size_t queue_high_water = 0;
  bool saturated = false;
};

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  bool smoke = false;
  std::string out_json;
  size_t num_threads = 0;
  for (const std::string& arg : bench_flags.rest) {
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_json = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = std::stoul(arg.substr(10));
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--out=PATH] [--threads=N] [--json=PATH]"
                   " [--trace=PATH] [--serve=PORT] [--flightrecorder=PATH]\n";
      return 2;
    }
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- A5: degradation curves past the feasible "
               "boundary\n3 streams x 8 ops, 3 nodes; bounded queues ("
            << kQueueCapacity << " tuples) vs. unbounded, "
            << kDuration << "s per point\n";

  rod::query::GraphGenOptions gen;
  gen.num_input_streams = 3;
  gen.ops_per_tree = 8;
  // Uniform per-tuple cost with a wide selectivity spread: every queued
  // tuple costs the same CPU, so the compiled drop weights (expected
  // downstream outputs; cost-blind by design) rank exactly by goodput
  // contribution and the qos-vs-blind comparison isolates the eviction
  // policy rather than cost heterogeneity.
  gen.min_cost = 1e-3;
  gen.max_cost = 1e-3;
  gen.min_selectivity = 0.05;
  rod::Rng rng(0xa50001);
  const rod::query::QueryGraph graph =
      rod::query::GenerateRandomTrees(gen, rng);
  auto model = rod::query::BuildLoadModel(graph);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  const SystemSpec system = SystemSpec::Homogeneous(3);

  struct Plan {
    std::string label;
    rod::place::Placement placement{1, {}};
  };
  std::vector<Plan> plans;
  {
    auto p = rod::place::RodPlace(*model, system);
    if (!p.ok()) {
      std::cerr << p.status().ToString() << "\n";
      return 1;
    }
    plans.push_back({"ROD", std::move(*p)});
    rod::Rng prng(0xa50002);
    auto q = rod::place::RandomPlace(*model, system, prng);
    if (!q.ok()) {
      std::cerr << q.status().ToString() << "\n";
      return 1;
    }
    plans.push_back({"Random", std::move(*q)});
  }

  // Rates are expressed as multiples of each plan's own analytic
  // feasible boundary along the uniform direction, so "scale 2.0" means
  // the same thing — 2x what this placement can absorb — for both plans.
  const PlacementEvaluator eval(*model, system);
  const Vector unit(model->num_system_inputs(), 1.0);
  std::vector<double> boundary_rate(plans.size());
  for (size_t p = 0; p < plans.size(); ++p) {
    const Vector util = eval.NodeUtilizationAt(plans[p].placement, unit);
    double peak = 0.0;
    for (double u : util) peak = std::max(peak, u);
    boundary_rate[p] = 1.0 / peak;  // uniform per-stream boundary rate
  }

  const std::vector<double> scales =
      smoke ? std::vector<double>{0.6, 2.0}
            : std::vector<double>{0.6, 0.9, 1.1, 1.5, 2.0, 3.0};

  // One grid point = (plan, policy, scale); every point is an independent
  // deterministic run, so the full grid is a single parallel sweep.
  struct Point {
    size_t plan;
    size_t policy;
    double scale;
  };
  std::vector<Point> points;
  std::vector<std::vector<rod::trace::RateTrace>> traces;  // stable storage
  for (size_t p = 0; p < plans.size(); ++p) {
    for (size_t q = 0; q < Policies().size(); ++q) {
      for (double s : scales) {
        points.push_back({p, q, s});
        std::vector<rod::trace::RateTrace> t;
        for (size_t k = 0; k < model->num_system_inputs(); ++k) {
          rod::trace::RateTrace one;
          one.window_sec = kDuration;
          one.rates = {s * boundary_rate[p]};
          t.push_back(std::move(one));
        }
        traces.push_back(std::move(t));
      }
    }
  }

  std::vector<rod::sim::SimulationCase> cases;
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    const PolicyChoice& pc = Policies()[pt.policy];
    rod::sim::SimulationCase c;
    c.graph = &graph;
    c.placement = &plans[pt.plan].placement;
    c.system = &system;
    c.inputs = &traces[i];
    c.options.duration = kDuration;
    c.options.warmup = 5.0;
    if (pc.bounded) {
      c.options.queue_bound.capacity = kQueueCapacity;
      c.options.queue_bound.policy = pc.policy;
    }
    c.options.telemetry = telemetry_session.telemetry();
    cases.push_back(c);
  }
  telemetry_session.set_ready(true);
  rod::sim::SweepOptions sweep_options;
  sweep_options.num_threads = num_threads;
  sweep_options.telemetry = telemetry_session.telemetry();
  const auto results = rod::sim::SimulateSweep(cases, sweep_options);

  std::vector<Row> rows;
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& pt = points[i];
    if (!results[i].ok()) {
      std::cerr << plans[pt.plan].label << "/" << Policies()[pt.policy].label
                << " @" << pt.scale << ": "
                << results[i].status().ToString() << "\n";
      return 1;
    }
    const SimulationResult& r = *results[i];
    const size_t offered =
        r.input_tuples + r.shed_tuples + r.overload.shed_overflow;
    Row row;
    row.placement = plans[pt.plan].label;
    row.policy = Policies()[pt.policy].label;
    row.scale = pt.scale;
    row.goodput = static_cast<double>(r.output_tuples) / kDuration;
    row.p99_ms = r.p99_latency * 1e3;
    row.shed_fraction =
        offered == 0 ? 0.0
                     : static_cast<double>(r.overload.total_shed()) /
                           static_cast<double>(offered);
    row.queue_high_water = r.overload.queue_depth_high_water;
    row.saturated = r.saturated;
    rows.push_back(row);
  }

  Table table({"placement", "policy", "scale", "goodput(t/s)", "p99(ms)",
               "shed frac", "queue hw", "saturated"});
  for (const Row& row : rows) {
    table.AddRow({row.placement, row.policy, Fmt(row.scale, 1),
                  Fmt(row.goodput, 1), Fmt(row.p99_ms, 2),
                  Fmt(row.shed_fraction, 3),
                  std::to_string(row.queue_high_water),
                  row.saturated ? "yes" : "no"});
  }
  table.Print();
  std::cout << "\ngoodput = sink outputs/s; shed frac = dropped/offered; "
               "queue hw = deepest per-node tuple queue seen.\nPast scale "
               "1.0 the unbounded rows saturate (runaway queues and p99); "
               "bounded rows shed the excess and keep both in check.\n";

  if (!out_json.empty()) {
    std::ofstream out(out_json);
    rod::telemetry::JsonWriter w(out);
    w.BeginObject();
    w.Key("schema").String("rod.bench_overload.v1");
    w.Key("duration_sec").Double(kDuration);
    w.Key("queue_capacity").Uint(kQueueCapacity);
    w.Key("rows").BeginArray();
    for (const Row& row : rows) {
      w.BeginObjectInline();
      w.Key("placement").String(row.placement);
      w.Key("policy").String(row.policy);
      w.Key("scale").Double(row.scale);
      w.Key("goodput").Double(row.goodput);
      w.Key("p99_ms").Double(row.p99_ms);
      w.Key("shed_fraction").Double(row.shed_fraction);
      w.Key("queue_high_water").Uint(row.queue_high_water);
      w.Key("saturated").Bool(row.saturated);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    out << "\n";
    std::cout << "wrote " << out_json << " (degradation curves)\n";
  }

  if (smoke) {
    // Degradation contract at 2x the feasible boundary (the CI gate):
    //  1. every bounded policy keeps a goodput floor — at least 60% of
    //     what the boundary itself can deliver — while shedding;
    //  2. bounded queue depth never exceeds the configured capacity;
    //  3. QoS-aware eviction is never worse than blind drop-newest;
    //  4. the whole grid is deterministic across thread counts.
    auto find_row = [&](const std::string& plan, const std::string& policy,
                        double scale) -> const Row* {
      for (const Row& row : rows) {
        if (row.placement == plan && row.policy == policy &&
            row.scale == scale) {
          return &row;
        }
      }
      return nullptr;
    };
    int failures = 0;
    auto expect = [&](bool ok, const std::string& what) {
      if (!ok) {
        std::cerr << "SMOKE FAIL: " << what << "\n";
        ++failures;
      }
    };
    for (const Plan& plan : plans) {
      const Row* calm = find_row(plan.label, "drop-new", 0.6);
      expect(calm != nullptr, plan.label + ": missing calm row");
      for (const PolicyChoice& pc : Policies()) {
        if (!pc.bounded) continue;
        const Row* hot = find_row(plan.label, pc.label, 2.0);
        expect(hot != nullptr, plan.label + "/" + pc.label + ": missing row");
        if (hot == nullptr || calm == nullptr) continue;
        // At 2x the boundary a shedding system still runs its nodes flat
        // out, so goodput must stay at least at the 0.6x-load level
        // (= 60% of the boundary throughput), not collapse.
        expect(hot->goodput >= 0.8 * calm->goodput,
               plan.label + "/" + pc.label + ": goodput " +
                   Fmt(hot->goodput, 1) + " under the floor " +
                   Fmt(0.8 * calm->goodput, 1));
        expect(hot->queue_high_water <= kQueueCapacity,
               plan.label + "/" + pc.label + ": queue high water " +
                   std::to_string(hot->queue_high_water) + " > capacity");
        expect(hot->shed_fraction > 0.0,
               plan.label + "/" + pc.label + ": no shedding at 2x");
      }
      const Row* qos = find_row(plan.label, "qos", 2.0);
      const Row* blind = find_row(plan.label, "drop-new", 2.0);
      if (qos != nullptr && blind != nullptr) {
        expect(qos->goodput >= blind->goodput * 0.999,
               plan.label + ": qos goodput " + Fmt(qos->goodput, 1) +
                   " < drop-newest " + Fmt(blind->goodput, 1));
      }
    }
    // Re-run the grid sequentially; results must be bit-identical.
    rod::sim::SweepOptions seq;
    seq.num_threads = 1;
    const auto sequential = rod::sim::SimulateSweep(cases, seq);
    for (size_t i = 0; i < results.size(); ++i) {
      expect(sequential[i].ok(), "sequential rerun failed");
      if (!sequential[i].ok()) continue;
      expect(sequential[i]->output_tuples == results[i]->output_tuples &&
                 sequential[i]->shed_tuples == results[i]->shed_tuples &&
                 sequential[i]->processed_events ==
                     results[i]->processed_events,
             "thread-count dependence at grid point " + std::to_string(i));
    }
    if (failures > 0) {
      std::cerr << failures << " smoke assertion(s) failed\n";
      return 1;
    }
    std::cout << "smoke: all degradation assertions held\n";
  }
  return 0;
}
