// Experiment E11 (reconstructed; see DESIGN.md) — the paper's motivating
// claim quantified (§1): "Operator movement is too expensive to alleviate
// short-term bursts; ... dealing with short-term load fluctuations by
// frequent operator re-distribution is typically prohibitive", while
// dynamic distribution "is suitable for medium-to-long term variations".
// The fluid simulator runs a static ROD plan, a static LLF plan, and LLF
// plus a reactive migrating balancer under (a) short-term self-similar
// bursts and (b) slow diurnal-style drift, with the paper's "few hundred
// milliseconds" migration overhead.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "placement/correlation_policy.h"
#include "placement/dynamic.h"
#include "runtime/fluid.h"
#include "trace/trace.h"

namespace {

using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

void RunScenario(const std::string& title,
                 const rod::query::LoadModel& model, const SystemSpec& system,
                 const std::vector<rod::trace::RateTrace>& traces) {
  rod::bench::Banner(title);

  auto rod_plan = rod::place::RodPlace(model, system);
  // LLF is tuned to the load observed when the plan was made — the rates
  // at the start of the run (the paper's "single load point" critique).
  Vector observed(traces.size());
  for (size_t k = 0; k < traces.size(); ++k) {
    observed[k] = std::max(traces[k].RateAt(0.0), 1e-9);
  }
  auto llf_plan =
      rod::place::LargestLoadFirstPlace(model, system, observed);
  if (!rod_plan.ok() || !llf_plan.ok()) {
    std::cerr << "placement failed\n";
    std::exit(1);
  }

  rod::sim::FluidOptions fopts;
  fopts.epoch_sec = 1.0;
  fopts.migration_latency = 0.3;  // paper §1: "a few hundred milliseconds"
  fopts.migration_cpu_cost = 0.05;

  enum class Policy { kNone, kReactive, kReactiveLight, kCorrelation };
  struct Case {
    std::string name;
    const rod::place::Placement* plan;
    Policy policy;
  };
  const std::vector<Case> cases = {
      {"static ROD", &*rod_plan, Policy::kNone},
      {"static LLF", &*llf_plan, Policy::kNone},
      {"LLF + reactive migration", &*llf_plan, Policy::kReactive},
      {"LLF + correlation migration [23]", &*llf_plan, Policy::kCorrelation},
      {"ROD + light-op migration", &*rod_plan, Policy::kReactiveLight},
  };

  Table table({"strategy", "overloaded epochs", "mean util", "max util",
               "mean backlog s", "max backlog s", "migrations"});
  for (const Case& c : cases) {
    rod::place::ReactiveBalancer::Options bopts;
    if (c.policy == Policy::kReactiveLight) {
      bopts.max_movable_load_fraction = 0.05;
    }
    rod::place::ReactiveBalancer reactive(bopts);
    rod::place::CorrelationBalancer correlation;
    rod::sim::MigrationPolicy* policy = nullptr;
    if (c.policy == Policy::kReactive || c.policy == Policy::kReactiveLight) {
      policy = &reactive;
    } else if (c.policy == Policy::kCorrelation) {
      policy = &correlation;
    }
    auto r = rod::sim::FluidSimulate(model, *c.plan, system, traces, fopts,
                                     policy);
    if (!r.ok()) {
      std::cerr << c.name << ": " << r.status().ToString() << "\n";
      std::exit(1);
    }
    table.AddRow({c.name,
                  std::to_string(r->overloaded_epochs) + "/" +
                      std::to_string(r->epochs),
                  Fmt(r->mean_utilization, 2), Fmt(r->max_utilization, 2),
                  Fmt(r->mean_backlog_sec, 3), Fmt(r->max_backlog_sec, 3),
                  std::to_string(r->migrations)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E11: static resilient placement vs "
               "dynamic migration\n";

  rod::query::GraphGenOptions gen;
  gen.num_input_streams = 3;
  gen.ops_per_tree = 15;
  rod::Rng graph_rng(0xd1100);
  const rod::query::QueryGraph g =
      rod::query::GenerateRandomTrees(gen, graph_rng);
  auto model = rod::query::BuildLoadModel(g);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  const SystemSpec system = SystemSpec::Homogeneous(3);
  const PlacementEvaluator eval(*model, system);

  // Calibrate the mean rate at 80% of ROD's uniform boundary.
  const rod::bench::AlgorithmSuite suite{g, *model, system};
  rod::Rng rng(1);
  auto rod_plan = suite.Run("ROD", rng);
  Vector unit(3, 1.0);
  const Vector util = eval.NodeUtilizationAt(*rod_plan, unit);
  const double mean_rate =
      0.8 / *std::max_element(util.begin(), util.end());
  constexpr size_t kEpochs = 600;

  // (a) Short-term bursts: TCP-like self-similar traces, new burst every
  // few seconds — faster than any migration can amortize.
  {
    std::vector<rod::trace::RateTrace> traces;
    for (size_t k = 0; k < 3; ++k) {
      rod::Rng trng(0xb005 + k);
      traces.push_back(rod::trace::GeneratePreset(
                           rod::trace::TracePreset::kTcp, kEpochs, 1.0, trng)
                           .ScaledToMean(mean_rate));
    }
    RunScenario("(a) short-term bursts (TCP-like, 1 s time-scale)",
                *model, system, traces);
  }

  // (b) Medium/long-term drift: slow out-of-phase sinusoids (business-day
  // pattern); hours-scale in spirit, compressed to the run length. The
  // load mix rotates completely away from what any single-point plan was
  // tuned for.
  {
    std::vector<rod::trace::RateTrace> traces;
    for (size_t k = 0; k < 3; ++k) {
      rod::trace::SinusoidOptions sopts;
      sopts.num_windows = kEpochs;
      sopts.mean = 1.1 * mean_rate;
      sopts.relative_amplitude = 0.9;
      sopts.period = 300.0;
      sopts.phase = 2.1 * static_cast<double>(k);
      traces.push_back(rod::trace::GenerateSinusoid(sopts));
    }
    RunScenario("(b) slow drift (out-of-phase sinusoids, 300 s period)",
                *model, system, traces);
  }

  std::cout
      << "\nExpected shape: under short bursts the reactive migrator fires\n"
         "often, pays stall + marshalling cost, and still trails static\n"
         "ROD (the paper's motivation). Under slow drift, migration\n"
         "amortizes: LLF + migration closes most of its gap to ROD, and\n"
         "static single-point LLF is the one that suffers.\n";
  return 0;
}
