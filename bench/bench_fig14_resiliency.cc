// Experiment E4 — paper Figure 14: base resiliency results. For query
// graphs of 25..200 operators over 5 input streams, compares the average
// feasible-set-size ratio of ROD against the four baselines, reporting
// both panels of the figure: (A / Ideal) and (A / ROD). Baselines are
// averaged over 10 randomized trials; ROD is deterministic and runs once
// (§7.3.1).

#include <iostream>

#include "bench_util.h"
#include "runtime/sweep.h"

namespace {

using rod::bench::AlgorithmNames;
using rod::bench::AlgorithmSuite;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

struct Row {
  size_t num_operators;
  // ratio-to-ideal per algorithm, in AlgorithmNames() order.
  std::vector<double> ratios;
};

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E4 (Figure 14): base resiliency\n"
            << "5 input streams, 5 homogeneous nodes, 10 trials per "
               "baseline, QMC 2^13 samples\n";
  constexpr size_t kInputs = 5;
  constexpr size_t kNodes = 5;
  constexpr int kTrials = 10;
  const std::vector<size_t> kOpCounts = {25, 50, 100, 150, 200};

  rod::geom::VolumeOptions vol;
  vol.num_samples = 8192;

  // Each point averages over several independent graph realizations (the
  // paper repeats every algorithm except ROD ten times; averaging over
  // graphs additionally smooths single-realization noise). Every
  // (size, graph) realization is an independent unit of work — graph
  // generation, placement trials, and volume estimates are pure functions
  // of the unit index — so the grid runs as one deterministic SweepMap.
  constexpr int kGraphs = 4;
  struct Unit {
    rod::Status status;
    // Per-algorithm ratio-to-ideal of every trial, AlgorithmNames() order.
    std::vector<std::vector<double>> ratios;
  };
  const size_t num_units = kOpCounts.size() * kGraphs;
  const auto units = rod::sim::SweepMap(num_units, [&](size_t u) {
    const size_t total_ops = kOpCounts[u / kGraphs];
    const int gi = static_cast<int>(u % kGraphs);
    Unit unit;
    rod::query::GraphGenOptions gen;
    gen.num_input_streams = kInputs;
    gen.ops_per_tree = total_ops / kInputs;
    rod::Rng graph_rng(0xf14000 + total_ops * 17 + gi);
    const rod::query::QueryGraph g =
        rod::query::GenerateRandomTrees(gen, graph_rng);
    auto model = rod::query::BuildLoadModel(g);
    if (!model.ok()) {
      unit.status = model.status();
      return unit;
    }
    const SystemSpec system = SystemSpec::Homogeneous(kNodes);
    const PlacementEvaluator eval(*model, system);
    const AlgorithmSuite suite{g, *model, system};

    for (size_t a = 0; a < AlgorithmNames().size(); ++a) {
      const std::string& name = AlgorithmNames()[a];
      rod::Rng trial_rng(0xabc + total_ops * 13 + gi);
      const int trials = name == "ROD" ? 1 : kTrials;
      std::vector<double> alg_ratios;
      for (int t = 0; t < trials; ++t) {
        auto plan = suite.Run(name, trial_rng);
        if (!plan.ok()) {
          unit.status = plan.status();
          return unit;
        }
        alg_ratios.push_back(*eval.RatioToIdeal(*plan, vol));
      }
      unit.ratios.push_back(std::move(alg_ratios));
    }
    return unit;
  });

  std::vector<Row> rows;
  for (size_t s = 0; s < kOpCounts.size(); ++s) {
    std::vector<rod::RunningStats> per_alg(AlgorithmNames().size());
    for (int gi = 0; gi < kGraphs; ++gi) {
      const Unit& unit = units[s * kGraphs + gi];
      if (!unit.status.ok()) {
        std::cerr << unit.status.ToString() << "\n";
        return 1;
      }
      for (size_t a = 0; a < per_alg.size(); ++a) {
        for (double r : unit.ratios[a]) per_alg[a].Add(r);
      }
    }
    Row row{kOpCounts[s], {}};
    for (const auto& stats : per_alg) row.ratios.push_back(stats.mean());
    rows.push_back(std::move(row));
  }

  rod::bench::Banner("Figure 14 (left): average feasible set size / ideal");
  {
    std::vector<std::string> header = {"#ops"};
    for (const auto& n : AlgorithmNames()) header.push_back(n);
    Table table(header);
    for (const Row& row : rows) {
      std::vector<std::string> cells = {std::to_string(row.num_operators)};
      for (double r : row.ratios) cells.push_back(Fmt(r));
      table.AddRow(std::move(cells));
    }
    table.Print();
  }

  rod::bench::Banner("Figure 14 (right): average feasible set size / ROD");
  {
    std::vector<std::string> header = {"#ops"};
    for (size_t a = 1; a < AlgorithmNames().size(); ++a) {
      header.push_back(AlgorithmNames()[a]);
    }
    Table table(header);
    for (const Row& row : rows) {
      std::vector<std::string> cells = {std::to_string(row.num_operators)};
      for (size_t a = 1; a < row.ratios.size(); ++a) {
        cells.push_back(Fmt(row.ratios[a] / row.ratios[0]));
      }
      table.AddRow(std::move(cells));
    }
    table.Print();
  }

  std::cout
      << "\nExpected shape (paper Fig. 14): ROD strictly above every\n"
         "baseline at every size; Correlation-based the best baseline,\n"
         "Connected the worst (whole subtrees per node cannot absorb\n"
         "spikes); all curves rise toward 1 as operators per node grow,\n"
         "while ROD's relative edge persists even at 25 operators.\n";
  return 0;
}
