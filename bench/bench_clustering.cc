// Experiment E10 (reconstructed; see DESIGN.md) — operator clustering
// under per-tuple communication cost (§6.3). Chains with increasingly
// expensive arcs are placed by (i) plain ROD (comm-oblivious), (ii) the
// §6.3 clustered-ROD sweep, and (iii) the Connected baseline (comm-minimal
// but resilience-poor). Reported: inter-node arcs, comm-aware minimum
// plane distance (the selection metric), and tuple-level runtime results
// at a fixed operating point.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "geometry/hyperplane.h"
#include "placement/clustering.h"
#include "runtime/engine.h"

namespace {

using rod::Matrix;
using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::Placement;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;
using rod::query::OperatorKind;
using rod::query::QueryGraph;
using rod::query::StreamRef;

/// Three 8-operator chains, one per stream, with every operator-to-
/// operator arc carrying `comm_cost` CPU-seconds per tuple.
QueryGraph ChainWorkload(double comm_cost, rod::Rng& rng) {
  QueryGraph g;
  for (size_t k = 0; k < 3; ++k) {
    const auto in = g.AddInputStream("I" + std::to_string(k));
    StreamRef prev = StreamRef::Input(in);
    for (int j = 0; j < 8; ++j) {
      prev = StreamRef::Op(*g.AddOperator(
          {.name = "c" + std::to_string(k) + "_" + std::to_string(j),
           .kind = OperatorKind::kDelay,
           .cost = rng.Uniform(0.5e-3, 2e-3),
           .selectivity = rng.Uniform(0.7, 1.0)},
          {prev}, {j == 0 ? 0.0 : comm_cost}));
    }
  }
  return g;
}

double CommAwarePlaneDistance(const Placement& plan,
                              const rod::query::LoadModel& model,
                              const QueryGraph& g, const SystemSpec& system) {
  const Matrix coeffs = rod::place::NodeCoeffsWithComm(plan, model, g);
  auto w = rod::geom::ComputeWeightMatrix(coeffs, model.total_coeffs(),
                                          system.capacities);
  return rod::geom::MinPlaneDistance(*w);
}

}  // namespace

int main() {
  std::cout << "ROD reproduction -- E10 (§6.3): operator clustering vs "
               "communication cost\n"
            << "3 chains x 8 operators, 3 nodes; comm cost gamma x 1ms per "
               "crossing tuple\n";

  const SystemSpec system = SystemSpec::Homogeneous(3);
  for (double gamma : {0.0, 0.5, 1.0, 2.0}) {
    rod::Rng graph_rng(0xea000);
    const QueryGraph g = ChainWorkload(gamma * 1e-3, graph_rng);
    auto model = rod::query::BuildLoadModel(g);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    const PlacementEvaluator eval(*model, system);

    auto rod_plain = rod::place::RodPlace(*model, system);
    auto sweep = rod::place::ClusteredRodPlace(*model, g, system);
    rod::Rng base_rng(1);
    Vector flat(3, 1.0);
    auto connected =
        rod::place::ConnectedLoadBalancePlace(*model, g, system, flat);
    if (!rod_plain.ok() || !sweep.ok() || !connected.ok()) {
      std::cerr << "placement failed\n";
      return 1;
    }

    // Operating point: 70% of plain ROD's comm-free uniform boundary.
    Vector unit(3, 1.0);
    const Vector util = eval.NodeUtilizationAt(*rod_plain, unit);
    const double rate =
        0.7 / *std::max_element(util.begin(), util.end());
    rod::sim::SimulationOptions sopts;
    sopts.duration = 60.0;
    std::vector<rod::trace::RateTrace> traces;
    for (int k = 0; k < 3; ++k) {
      rod::trace::RateTrace t;
      t.window_sec = sopts.duration;
      t.rates = {rate};
      traces.push_back(std::move(t));
    }

    rod::bench::Banner("gamma = " + Fmt(gamma, 1) +
                       " (comm cost / ~avg op cost)");
    Table table({"plan", "clusters", "cross arcs", "comm-aware r",
                 "sim p95 ms", "sim max util", "saturated"});
    struct Case {
      std::string name;
      const Placement* plan;
      size_t clusters;
    };
    const std::vector<Case> cases = {
        {"ROD (unclustered)", &*rod_plain, g.num_operators()},
        {"ROD + clustering sweep", &sweep->placement,
         sweep->clustering.num_clusters()},
        {"Connected", &*connected, 0},
    };
    for (const Case& c : cases) {
      auto run =
          rod::sim::SimulatePlacement(g, *c.plan, system, traces, sopts);
      if (!run.ok()) {
        std::cerr << c.name << ": " << run.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({c.name,
                    c.clusters == 0 ? "-" : std::to_string(c.clusters),
                    std::to_string(c.plan->CountCrossNodeArcs(g)),
                    Fmt(CommAwarePlaneDistance(*c.plan, *model, g, system)),
                    Fmt(run->p95_latency * 1e3, 2),
                    Fmt(run->max_node_utilization, 2),
                    run->saturated ? "YES" : "no"});
    }
    table.Print();
  }

  std::cout
      << "\nExpected shape: at gamma = 0 clustering collapses to plain ROD\n"
         "(identical rows) and Connected has the smallest plane distance.\n"
         "As gamma grows, unclustered ROD's crossings inflate its real\n"
         "load (utilization, latency); the sweep trades resilience for\n"
         "fewer crossings -- merging ever larger clusters (up to whole\n"
         "chains at extreme gamma, where it converges toward Connected's\n"
         "layout) -- and always holds the largest comm-aware r.\n";
  return 0;
}
