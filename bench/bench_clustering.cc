// Experiment E10 (reconstructed; see DESIGN.md) — operator clustering
// under per-tuple communication cost (§6.3). Chains with increasingly
// expensive arcs are placed by (i) plain ROD (comm-oblivious), (ii) the
// §6.3 clustered-ROD sweep, and (iii) the Connected baseline (comm-minimal
// but resilience-poor). Reported: inter-node arcs, comm-aware minimum
// plane distance (the selection metric), and tuple-level runtime results
// at a fixed operating point.

#include <algorithm>
#include <deque>
#include <iostream>

#include "bench_util.h"
#include "geometry/hyperplane.h"
#include "placement/clustering.h"
#include "runtime/engine.h"
#include "runtime/sweep.h"

namespace {

using rod::Matrix;
using rod::Vector;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::Placement;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;
using rod::query::OperatorKind;
using rod::query::QueryGraph;
using rod::query::StreamRef;

/// Three 8-operator chains, one per stream, with every operator-to-
/// operator arc carrying `comm_cost` CPU-seconds per tuple.
QueryGraph ChainWorkload(double comm_cost, rod::Rng& rng) {
  QueryGraph g;
  for (size_t k = 0; k < 3; ++k) {
    const auto in = g.AddInputStream("I" + std::to_string(k));
    StreamRef prev = StreamRef::Input(in);
    for (int j = 0; j < 8; ++j) {
      prev = StreamRef::Op(*g.AddOperator(
          {.name = "c" + std::to_string(k) + "_" + std::to_string(j),
           .kind = OperatorKind::kDelay,
           .cost = rng.Uniform(0.5e-3, 2e-3),
           .selectivity = rng.Uniform(0.7, 1.0)},
          {prev}, {j == 0 ? 0.0 : comm_cost}));
    }
  }
  return g;
}

double CommAwarePlaneDistance(const Placement& plan,
                              const rod::query::LoadModel& model,
                              const QueryGraph& g, const SystemSpec& system) {
  const Matrix coeffs = rod::place::NodeCoeffsWithComm(plan, model, g);
  auto w = rod::geom::ComputeWeightMatrix(coeffs, model.total_coeffs(),
                                          system.capacities);
  return rod::geom::MinPlaneDistance(*w);
}

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E10 (§6.3): operator clustering vs "
               "communication cost\n"
            << "3 chains x 8 operators, 3 nodes; comm cost gamma x 1ms per "
               "crossing tuple\n";

  const SystemSpec system = SystemSpec::Homogeneous(3);
  const std::vector<double> kGammas = {0.0, 0.5, 1.0, 2.0};

  // Build every gamma's workload and the three candidate plans up front,
  // then run all (gamma x plan) tuple-level simulations as one parallel
  // deterministic sweep.
  struct GammaSetup {
    QueryGraph graph;
    rod::query::LoadModel model;
    rod::Result<Placement> rod_plain{rod::Status::Internal("unset")};
    rod::Result<rod::place::ClusterSweepResult> sweep{
        rod::Status::Internal("unset")};
    rod::Result<Placement> connected{rod::Status::Internal("unset")};
    std::vector<rod::trace::RateTrace> traces;
  };
  std::deque<GammaSetup> setups;
  std::vector<rod::sim::SimulationCase> cases;
  rod::sim::SimulationOptions sopts;
  sopts.duration = 60.0;
  sopts.telemetry = telemetry_session.telemetry();
  for (double gamma : kGammas) {
    rod::Rng graph_rng(0xea000);
    GammaSetup& s = setups.emplace_back();
    s.graph = ChainWorkload(gamma * 1e-3, graph_rng);
    auto model = rod::query::BuildLoadModel(s.graph);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    s.model = std::move(*model);
    const PlacementEvaluator eval(s.model, system);

    s.rod_plain = rod::place::RodPlace(s.model, system);
    s.sweep = rod::place::ClusteredRodPlace(s.model, s.graph, system);
    Vector flat(3, 1.0);
    s.connected =
        rod::place::ConnectedLoadBalancePlace(s.model, s.graph, system, flat);
    if (!s.rod_plain.ok() || !s.sweep.ok() || !s.connected.ok()) {
      std::cerr << "placement failed\n";
      return 1;
    }

    // Operating point: 70% of plain ROD's comm-free uniform boundary
    // (the analytic boundary scale along the all-ones direction).
    Vector unit(3, 1.0);
    auto boundary = eval.BoundaryScaleAlong(*s.rod_plain, unit);
    if (!boundary.ok()) {
      std::cerr << boundary.status().ToString() << "\n";
      return 1;
    }
    const double rate = 0.7 * *boundary;
    for (int k = 0; k < 3; ++k) {
      rod::trace::RateTrace t;
      t.window_sec = sopts.duration;
      t.rates = {rate};
      s.traces.push_back(std::move(t));
    }

    for (const Placement* plan : {&*s.rod_plain, &s.sweep->placement,
                                  &*s.connected}) {
      rod::sim::SimulationCase c;
      c.graph = &s.graph;
      c.placement = plan;
      c.system = &system;
      c.inputs = &s.traces;
      c.options = sopts;
      cases.push_back(c);
    }
  }
  rod::sim::SweepOptions sweep_options;
  sweep_options.telemetry = telemetry_session.telemetry();
  const auto results = rod::sim::SimulateSweep(cases, sweep_options);

  for (size_t gi = 0; gi < kGammas.size(); ++gi) {
    const GammaSetup& s = setups[gi];
    rod::bench::Banner("gamma = " + Fmt(kGammas[gi], 1) +
                       " (comm cost / ~avg op cost)");
    Table table({"plan", "clusters", "cross arcs", "comm-aware r",
                 "sim p95 ms", "sim max util", "saturated"});
    struct Row {
      std::string name;
      const Placement* plan;
      size_t clusters;
    };
    const std::vector<Row> rows = {
        {"ROD (unclustered)", &*s.rod_plain, s.graph.num_operators()},
        {"ROD + clustering sweep", &s.sweep->placement,
         s.sweep->clustering.num_clusters()},
        {"Connected", &*s.connected, 0},
    };
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      const Row& row = rows[ri];
      const auto& run = results[gi * rows.size() + ri];
      if (!run.ok()) {
        std::cerr << row.name << ": " << run.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({row.name,
                    row.clusters == 0 ? "-" : std::to_string(row.clusters),
                    std::to_string(row.plan->CountCrossNodeArcs(s.graph)),
                    Fmt(CommAwarePlaneDistance(*row.plan, s.model, s.graph,
                                               system)),
                    Fmt(run->p95_latency * 1e3, 2),
                    Fmt(run->max_node_utilization, 2),
                    run->saturated ? "YES" : "no"});
    }
    table.Print();
  }

  std::cout
      << "\nExpected shape: at gamma = 0 clustering collapses to plain ROD\n"
         "(identical rows) and Connected has the smallest plane distance.\n"
         "As gamma grows, unclustered ROD's crossings inflate its real\n"
         "load (utilization, latency); the sweep trades resilience for\n"
         "fewer crossings -- merging ever larger clusters (up to whole\n"
         "chains at extreme gamma, where it converges toward Connected's\n"
         "layout) -- and always holds the largest comm-aware r.\n";
  return 0;
}
