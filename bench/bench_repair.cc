// Experiment A3 (ours) — placement maintenance under cluster changes:
// when a node fails, how much resilience does an incremental repair
// (re-home orphans only) retain versus ROD-from-scratch, and at what
// migration cost? The operational argument for static resilient
// placement extends to topology changes: repairs should move few
// operators (migrations are the expensive resource, §1) while keeping
// most of the feasible set.

#include <iostream>

#include "bench_util.h"
#include "placement/repair.h"

namespace {

using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- A3: repair after node failure\n"
            << "5 streams x 20 ops, 5 -> 4 nodes (node 4 lost), 6 graphs\n";

  rod::geom::VolumeOptions vol;
  vol.num_samples = 8192;

  Table table({"graph", "ROD(5) ratio", "scratch ROD(4)", "repair only",
               "repair+4 moves", "orphans", "scratch moves"});
  rod::RunningStats repair_vs_scratch;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    rod::query::GraphGenOptions gen;
    gen.num_input_streams = 5;
    gen.ops_per_tree = 20;
    rod::Rng rng(0xa3000 + seed);
    const rod::query::QueryGraph g = rod::query::GenerateRandomTrees(gen, rng);
    auto model = rod::query::BuildLoadModel(g);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    const SystemSpec five = SystemSpec::Homogeneous(5);
    const SystemSpec four = SystemSpec::Homogeneous(4);
    auto original = rod::place::RodPlace(*model, five);
    auto scratch = rod::place::RodPlace(*model, four);
    const std::vector<size_t> mapping = {0, 1, 2, 3, rod::place::kUnassigned};
    auto repair = rod::place::RepairPlacement(*model, *original, four, mapping);
    rod::place::RepairOptions ropts;
    ropts.max_rebalance_moves = 4;
    auto repair_plus =
        rod::place::RepairPlacement(*model, *original, four, mapping, ropts);
    if (!original.ok() || !scratch.ok() || !repair.ok() || !repair_plus.ok()) {
      std::cerr << "placement failed\n";
      return 1;
    }

    const PlacementEvaluator eval5(*model, five);
    const PlacementEvaluator eval4(*model, four);
    const double r5 = *eval5.RatioToIdeal(*original, vol);
    const double r_scratch = *eval4.RatioToIdeal(*scratch, vol);
    const double r_repair = *eval4.RatioToIdeal(repair->placement, vol);
    const double r_plus = *eval4.RatioToIdeal(repair_plus->placement, vol);

    size_t scratch_moves = 0;
    for (size_t j = 0; j < model->num_operators(); ++j) {
      const size_t old_node = original->node_of(j);
      const size_t carried = old_node < 4 ? old_node : SIZE_MAX;
      scratch_moves += scratch->node_of(j) != carried;
    }
    repair_vs_scratch.Add(r_scratch > 0 ? r_repair / r_scratch : 0);
    table.AddRow({std::to_string(seed), Fmt(r5), Fmt(r_scratch),
                  Fmt(r_repair) + " (" +
                      std::to_string(repair->operators_moved) + " mv)",
                  Fmt(r_plus) + " (" +
                      std::to_string(repair_plus->operators_moved) + " mv)",
                  std::to_string(repair->operators_moved),
                  std::to_string(scratch_moves)});
  }
  rod::bench::Banner("feasible ratios after losing one of five nodes");
  table.Print();
  std::cout << "\nmean repair/scratch ratio: " << Fmt(repair_vs_scratch.mean())
            << " (min " << Fmt(repair_vs_scratch.min()) << ")\n"
            << "Expected shape: repair retains ~80% of the from-scratch\n"
               "resilience while moving only the orphaned ~1/5 of the\n"
               "operators (scratch reshuffles ~3/4 of them). The rebalance\n"
               "budget greedily improves the plane-distance lower bound;\n"
               "its volume effect is marginal — resilience lost to a dead\n"
               "node is mostly recovered by re-homing alone.\n";
  return 0;
}
