// Experiment E9 (reconstructed; see DESIGN.md) — nonlinear load models
// (§6.2): query graphs with time-window joins are linearized and placed
// with ROD; resilience is then measured in the *physical* rate space by
// sampling random rate points and counting the fraction each placement
// keeps feasible (the feasible region of a join graph is not a polytope in
// physical rates, so volumes are estimated by direct sampling through the
// nonlinear load functions).

#include <algorithm>
#include <iostream>

#include "bench_util.h"

namespace {

using rod::Vector;
using rod::bench::AlgorithmNames;
using rod::bench::AlgorithmSuite;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;
using rod::query::OperatorKind;
using rod::query::QueryGraph;
using rod::query::StreamRef;

/// d input streams; per stream a 3-operator chain; each adjacent pair of
/// chains feeds a windowed join with two downstream operators — the
/// paper's Figure 13 pattern tiled across streams.
QueryGraph JoinWorkload(size_t dims, rod::Rng& rng) {
  QueryGraph g;
  std::vector<StreamRef> chain_tails;
  for (size_t k = 0; k < dims; ++k) {
    const auto in = g.AddInputStream("I" + std::to_string(k));
    StreamRef prev = StreamRef::Input(in);
    for (int j = 0; j < 3; ++j) {
      prev = StreamRef::Op(*g.AddOperator(
          {.name = "c" + std::to_string(k) + "_" + std::to_string(j),
           .kind = OperatorKind::kDelay,
           .cost = rng.Uniform(0.5e-3, 2e-3),
           .selectivity = rng.Uniform(0.6, 1.0)},
          {prev}));
    }
    chain_tails.push_back(prev);
  }
  for (size_t k = 0; k + 1 < dims; ++k) {
    auto join = g.AddOperator(
        {.name = "join" + std::to_string(k),
         .kind = OperatorKind::kJoin,
         .cost = rng.Uniform(0.5e-5, 2e-5),
         .selectivity = rng.Uniform(0.05, 0.2),
         .window = rng.Uniform(0.2, 1.0)},
        {chain_tails[k], chain_tails[k + 1]});
    StreamRef prev = StreamRef::Op(*join);
    for (int j = 0; j < 2; ++j) {
      prev = StreamRef::Op(*g.AddOperator(
          {.name = "d" + std::to_string(k) + "_" + std::to_string(j),
           .kind = OperatorKind::kDelay,
           .cost = rng.Uniform(0.5e-3, 2e-3),
           .selectivity = rng.Uniform(0.6, 1.0)},
          {prev}));
    }
  }
  return g;
}

/// Largest uniform rate (per stream) still feasible for `plan`, found by
/// bisection (utilization is monotone but nonlinear in the scale).
double UniformBoundary(const PlacementEvaluator& eval,
                       const rod::place::Placement& plan, size_t dims) {
  double lo = 0.0, hi = 1.0;
  while (eval.FeasibleAt(plan, Vector(dims, hi))) hi *= 2.0;
  for (int it = 0; it < 40; ++it) {
    const double mid = 0.5 * (lo + hi);
    (eval.FeasibleAt(plan, Vector(dims, mid)) ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E9 (§6.2): join graphs via "
               "linearization\n"
            << "3 nodes; feasibility sampled over the physical rate box "
               "[0, 1.4 x ROD's uniform boundary]^d\n";

  for (size_t dims : {2u, 3u, 4u}) {
    rod::Rng graph_rng(0xe9000 + dims);
    const QueryGraph g = JoinWorkload(dims, graph_rng);
    auto model = rod::query::BuildLinearizedLoadModel(g);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    const SystemSpec system = SystemSpec::Homogeneous(3);
    const PlacementEvaluator eval(*model, system);
    const AlgorithmSuite suite{g, *model, system};

    rod::Rng rod_rng(1);
    auto rod_plan = suite.Run("ROD", rod_rng);
    const double box = 1.4 * UniformBoundary(eval, *rod_plan, dims);

    rod::bench::Banner("d = " + std::to_string(dims) + " (" +
                       std::to_string(g.num_operators()) + " operators, " +
                       std::to_string(model->num_vars() - dims) +
                       " auxiliary variables)");
    Table table({"algorithm", "feasible fraction", "vs ROD"});
    double rod_fraction = 0.0;
    for (const std::string& name : AlgorithmNames()) {
      rod::Rng trial_rng(0x909 + dims);
      rod::RunningStats stats;
      const int trials = name == "ROD" ? 1 : 5;
      for (int t = 0; t < trials; ++t) {
        auto plan = suite.Run(name, trial_rng);
        if (!plan.ok()) {
          std::cerr << name << ": " << plan.status().ToString() << "\n";
          return 1;
        }
        // Sample the physical box; each point flows through the nonlinear
        // load functions (ExtendRates) inside FeasibleAt.
        rod::Rng sample_rng(0x5a5a + t);
        size_t feasible = 0;
        const size_t samples = 4096;
        Vector rates(dims);
        for (size_t s = 0; s < samples; ++s) {
          for (double& r : rates) r = sample_rng.NextDouble() * box;
          feasible += eval.FeasibleAt(*plan, rates);
        }
        stats.Add(static_cast<double>(feasible) /
                  static_cast<double>(samples));
      }
      if (name == "ROD") rod_fraction = stats.mean();
      table.AddRow({name, Fmt(stats.mean()),
                    Fmt(rod_fraction > 0 ? stats.mean() / rod_fraction : 0)});
    }
    table.Print();
  }

  std::cout
      << "\nExpected shape: linearized ROD keeps the largest feasible\n"
         "fraction; the gap mirrors Figure 14 — balancing each *variable*\n"
         "(including join-output rates) across nodes is what resilience\n"
         "requires once loads are nonlinear in the physical rates.\n";
  return 0;
}
