// Micro-benchmark M2: Quasi-Monte-Carlo volume estimation — Halton vs
// pseudo-random throughput and the cost profile across dimensions and
// node counts ("even computing the feasible set size of a single plan ...
// is expensive", §2.4 — this is why ROD avoids volume computations
// entirely).

#include <benchmark/benchmark.h>

#include "bench_micro_main.h"
#include "geometry/feasible_set.h"
#include "geometry/qmc.h"

namespace {

using rod::Matrix;

Matrix RandomWeights(size_t nodes, size_t dims, uint64_t seed) {
  rod::Rng rng(seed);
  Matrix w(nodes, dims);
  for (size_t i = 0; i < nodes; ++i) {
    for (size_t k = 0; k < dims; ++k) w(i, k) = rng.Uniform(0.0, 2.0);
  }
  return w;
}

void BM_RatioToIdealHalton(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const size_t samples = static_cast<size_t>(state.range(1));
  const rod::geom::FeasibleSet fs(RandomWeights(10, dims, 7));
  rod::geom::VolumeOptions options;
  options.num_samples = samples;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.RatioToIdeal(options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(samples));
}

void BM_RatioToIdealPseudo(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  const size_t samples = static_cast<size_t>(state.range(1));
  const rod::geom::FeasibleSet fs(RandomWeights(10, dims, 7));
  rod::geom::VolumeOptions options;
  options.num_samples = samples;
  options.use_pseudo_random = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.RatioToIdeal(options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(samples));
}

void BM_HaltonNext(benchmark::State& state) {
  rod::geom::HaltonSequence halton(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(halton.Next());
  }
}

void BM_SimplexMap(benchmark::State& state) {
  const size_t dims = static_cast<size_t>(state.range(0));
  rod::Rng rng(3);
  for (auto _ : state) {
    rod::Vector cube(dims);
    for (double& v : cube) v = rng.NextDouble();
    benchmark::DoNotOptimize(rod::geom::MapUnitCubeToSimplex(std::move(cube)));
  }
}

}  // namespace

BENCHMARK(BM_RatioToIdealHalton)
    ->Args({3, 4096})
    ->Args({5, 4096})
    ->Args({5, 32768})
    ->Args({10, 32768});
BENCHMARK(BM_RatioToIdealPseudo)->Args({5, 32768})->Args({16, 32768});
BENCHMARK(BM_HaltonNext)->Arg(3)->Arg(10);
BENCHMARK(BM_SimplexMap)->Arg(3)->Arg(10);

ROD_MICRO_BENCH_MAIN()
