// Experiment E7 (reconstructed; see DESIGN.md) — end-to-end latency and
// overload behaviour under bursty real-trace-like workloads, the paper's
// prototype-side evaluation ("we ... report results on feasible set size
// as well as processing latencies", §7). The aggregation-heavy traffic
// monitoring graph is driven with TCP-like self-similar traces whose mean
// rates sit at increasing fractions of ROD's feasible boundary; each
// placement algorithm's tail latency and overloaded-window count is
// reported from the tuple-level runtime.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "runtime/engine.h"
#include "trace/trace.h"

namespace {

using rod::Vector;
using rod::bench::AlgorithmNames;
using rod::bench::AlgorithmSuite;
using rod::bench::Fmt;
using rod::bench::Table;
using rod::place::PlacementEvaluator;
using rod::place::SystemSpec;

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E7: latency under bursty load "
               "(traffic-monitoring workload, TCP-like traces)\n";

  rod::query::TrafficMonitoringOptions topts;
  topts.num_links = 3;
  topts.windows = {1.0, 10.0};
  const rod::query::QueryGraph g =
      rod::query::BuildTrafficMonitoringGraph(topts);
  auto model = rod::query::BuildLoadModel(g);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  const SystemSpec system = SystemSpec::Homogeneous(3);
  const PlacementEvaluator eval(*model, system);
  const AlgorithmSuite suite{g, *model, system};
  std::cout << "graph: " << g.num_operators() << " operators, "
            << g.num_input_streams() << " links, 3 nodes\n";

  // Calibrate: the balanced-rate boundary of ROD's plan.
  rod::Rng rod_rng(1);
  auto rod_plan = suite.Run("ROD", rod_rng);
  Vector unit(g.num_input_streams(), 1.0);
  const Vector util = eval.NodeUtilizationAt(*rod_plan, unit);
  const double boundary = 1.0 / *std::max_element(util.begin(), util.end());

  rod::sim::SimulationOptions sopts;
  sopts.duration = 180.0;
  sopts.telemetry = telemetry_session.telemetry();

  for (double level : {0.5, 0.7, 0.85}) {
    rod::bench::Banner("mean load = " + Fmt(level, 2) +
                       " of ROD's balanced boundary");
    Table table({"algorithm", "p50 ms", "p95 ms", "p99 ms", "max util",
                 "overloaded windows", "backlog", "saturated"});
    for (const std::string& name : AlgorithmNames()) {
      rod::Rng trial_rng(0xe7 + static_cast<uint64_t>(level * 100));
      auto plan = suite.Run(name, trial_rng);
      if (!plan.ok()) {
        std::cerr << name << ": " << plan.status().ToString() << "\n";
        return 1;
      }
      // Fresh bursty traces per level, shared across algorithms so the
      // comparison is paired.
      std::vector<rod::trace::RateTrace> traces;
      for (size_t k = 0; k < g.num_input_streams(); ++k) {
        rod::Rng trng(0x7ace + k + static_cast<uint64_t>(level * 1000));
        traces.push_back(rod::trace::GeneratePreset(
                             rod::trace::TracePreset::kTcp,
                             static_cast<size_t>(sopts.duration), 1.0, trng)
                             .ScaledToMean(level * boundary));
      }
      auto run = rod::sim::SimulatePlacement(g, *plan, system, traces, sopts);
      if (!run.ok()) {
        std::cerr << name << ": " << run.status().ToString() << "\n";
        return 1;
      }
      table.AddRow({name, Fmt(run->p50_latency * 1e3, 2),
                    Fmt(run->p95_latency * 1e3, 2),
                    Fmt(run->p99_latency * 1e3, 2),
                    Fmt(run->max_node_utilization, 2),
                    std::to_string(run->overloaded_windows) + "/" +
                        std::to_string(run->total_windows),
                    std::to_string(run->final_backlog),
                    run->saturated ? "YES" : "no"});
    }
    table.Print();
  }

  std::cout
      << "\nExpected shape: at low load all plans behave; as the mean\n"
         "approaches the boundary, bursts overload the baselines' weak\n"
         "directions first -- ROD shows the fewest overloaded windows and\n"
         "the flattest tail latencies; Connected degrades first.\n";
  return 0;
}
