// Experiment E1 — paper Figure 2: "Stream rates exhibit significant
// variation over time." Generates the synthetic PKT / TCP / HTTP stand-in
// traces (DESIGN.md substitution #1), normalizes them, and reports the
// per-time-scale variability and self-similarity statistics the figure
// annotates.

#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "trace/hurst.h"
#include "trace/trace.h"

namespace {

using rod::bench::Fmt;
using rod::bench::Table;

void VariabilityTable() {
  rod::bench::Banner(
      "Figure 2: normalized stream-rate variability (synthetic stand-ins)");
  Table table({"trace", "windows", "mean", "std", "cv", "min", "max",
               "Hurst(R/S)", "Hurst(var-time)"});
  for (auto preset : {rod::trace::TracePreset::kPkt,
                      rod::trace::TracePreset::kTcp,
                      rod::trace::TracePreset::kHttp}) {
    rod::Rng rng(0x51234 + static_cast<uint64_t>(preset));
    const rod::trace::RateTrace t =
        rod::trace::GeneratePreset(preset, 4096, 1.0, rng);
    auto hurst_rs = rod::trace::EstimateHurstRS(t.rates);
    auto hurst_vt = rod::trace::EstimateHurstVarianceTime(t.rates);
    double lo = t.rates[0], hi = t.rates[0];
    for (double r : t.rates) {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    table.AddRow({rod::trace::TracePresetName(preset),
                  std::to_string(t.num_windows()), Fmt(t.MeanRate()),
                  Fmt(t.StdDevRate()), Fmt(t.CoefficientOfVariation()),
                  Fmt(lo), Fmt(hi),
                  hurst_rs.ok() ? Fmt(*hurst_rs) : "n/a",
                  hurst_vt.ok() ? Fmt(*hurst_vt) : "n/a"});
  }
  table.Print();
  std::cout << "\nPaper reference: PKT/TCP/HTTP Internet Traffic Archive\n"
               "traces, normalized rates with visible std at every\n"
               "time-scale (self-similar; Hurst > 0.5). Expected shape:\n"
               "cv(TCP) > cv(HTTP) > cv(PKT), all Hurst well above 0.5.\n";
}

void TimeScaleTable() {
  rod::bench::Banner("Figure 2 (inset): variability across time-scales");
  Table table({"trace", "agg=1s", "agg=4s", "agg=16s", "agg=64s"});
  for (auto preset : {rod::trace::TracePreset::kPkt,
                      rod::trace::TracePreset::kTcp,
                      rod::trace::TracePreset::kHttp}) {
    rod::Rng rng(0x999 + static_cast<uint64_t>(preset));
    const rod::trace::RateTrace t =
        rod::trace::GeneratePreset(preset, 8192, 1.0, rng);
    std::vector<std::string> row = {rod::trace::TracePresetName(preset)};
    for (size_t factor : {1u, 4u, 16u, 64u}) {
      std::vector<double> agg = rod::AggregateSeries(t.rates, factor);
      for (double& v : agg) v /= static_cast<double>(factor);
      const double mean = rod::Mean(agg);
      row.push_back(Fmt(mean > 0 ? rod::StdDev(agg) / mean : 0.0));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::cout << "\nAn iid series' cv would shrink by 2x per 4x aggregation;\n"
               "self-similar traffic retains most of its burstiness --\n"
               "\"similar behaviour is observed at other time-scales\" (§1).\n";
}

}  // namespace

int main(int argc, char** argv) {
  const rod::bench::BenchFlags bench_flags =
      rod::bench::ParseBenchFlags(argc, argv);
  if (!bench_flags.rest.empty()) {
    std::cerr << "usage: " << argv[0] << " [--json=PATH] [--trace=PATH]\n";
    return 2;
  }
  rod::bench::TelemetrySession telemetry_session(bench_flags);
  std::cout << "ROD reproduction -- E1 (Figure 2): input trace "
               "characteristics\n";
  VariabilityTable();
  TimeScaleTable();
  return 0;
}
