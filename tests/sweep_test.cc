// Tests for the parallel deterministic sweep runner: results must be
// bit-identical for every thread count and identical to a sequential
// loop over Simulate() — the contract the benches and the feasibility
// boundary search rely on.

#include "runtime/sweep.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "placement/evaluator.h"
#include "query/load_model.h"
#include "runtime/deployment.h"

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

trace::RateTrace ConstantTrace(double rate, double duration) {
  trace::RateTrace t;
  t.window_sec = duration;
  t.rates = {rate};
  return t;
}

/// Two chains on two nodes with a cross-node hop: exercises network
/// events, per-sink metrics, and both scheduling queues.
QueryGraph TwoChainGraph() {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("A");
  const InputStreamId i1 = g.AddInputStream("B");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                          .cost = 1e-3, .selectivity = 0.9},
                         {StreamRef::Input(i0)});
  EXPECT_TRUE(a.ok());
  auto a2 = g.AddOperator({.name = "a2", .kind = OperatorKind::kMap,
                           .cost = 5e-4},
                          {StreamRef::Op(*a)});
  EXPECT_TRUE(a2.ok());
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                          .cost = 2e-3, .selectivity = 0.5},
                         {StreamRef::Input(i1)});
  EXPECT_TRUE(b.ok());
  return g;
}

void ExpectIdentical(const SimulationResult& x, const SimulationResult& y) {
  EXPECT_EQ(x.input_tuples, y.input_tuples);
  EXPECT_EQ(x.shed_tuples, y.shed_tuples);
  EXPECT_EQ(x.output_tuples, y.output_tuples);
  EXPECT_EQ(x.mean_latency, y.mean_latency);  // bit-exact, not NEAR
  EXPECT_EQ(x.p50_latency, y.p50_latency);
  EXPECT_EQ(x.p95_latency, y.p95_latency);
  EXPECT_EQ(x.p99_latency, y.p99_latency);
  EXPECT_EQ(x.max_latency, y.max_latency);
  ASSERT_EQ(x.sink_latencies.size(), y.sink_latencies.size());
  for (size_t i = 0; i < x.sink_latencies.size(); ++i) {
    EXPECT_EQ(x.sink_latencies[i].sink_op, y.sink_latencies[i].sink_op);
    EXPECT_EQ(x.sink_latencies[i].outputs, y.sink_latencies[i].outputs);
    EXPECT_EQ(x.sink_latencies[i].mean, y.sink_latencies[i].mean);
    EXPECT_EQ(x.sink_latencies[i].p50, y.sink_latencies[i].p50);
    EXPECT_EQ(x.sink_latencies[i].p95, y.sink_latencies[i].p95);
  }
  ASSERT_EQ(x.op_stats.size(), y.op_stats.size());
  for (size_t i = 0; i < x.op_stats.size(); ++i) {
    EXPECT_EQ(x.op_stats[i].tuples_processed, y.op_stats[i].tuples_processed);
    EXPECT_EQ(x.op_stats[i].pairs_probed, y.op_stats[i].pairs_probed);
    EXPECT_EQ(x.op_stats[i].tuples_emitted, y.op_stats[i].tuples_emitted);
    EXPECT_EQ(x.op_stats[i].cpu_seconds, y.op_stats[i].cpu_seconds);
  }
  EXPECT_EQ(x.node_utilization, y.node_utilization);
  EXPECT_EQ(x.max_node_utilization, y.max_node_utilization);
  EXPECT_EQ(x.overloaded_windows, y.overloaded_windows);
  EXPECT_EQ(x.total_windows, y.total_windows);
  EXPECT_EQ(x.final_backlog, y.final_backlog);
  EXPECT_EQ(x.saturated, y.saturated);
  EXPECT_EQ(x.processed_events, y.processed_events);
}

TEST(SweepTest, MatchesSequentialSimulateForEveryThreadCount) {
  const QueryGraph g = TwoChainGraph();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0, 1});

  // Distinct rates and seeds per case so a mixed-up slot would show.
  const std::vector<uint64_t> seeds = ForkSeeds(123, 4);
  std::vector<std::vector<trace::RateTrace>> inputs;
  std::vector<SimulationCase> cases;
  for (size_t i = 0; i < seeds.size(); ++i) {
    const double rate = 40.0 + 25.0 * static_cast<double>(i);
    inputs.push_back({ConstantTrace(rate, 12.0), ConstantTrace(rate, 12.0)});
  }
  for (size_t i = 0; i < seeds.size(); ++i) {
    SimulationCase c;
    c.graph = &g;
    c.placement = &plan;
    c.system = &system;
    c.inputs = &inputs[i];
    c.options.duration = 12.0;
    c.options.seed = seeds[i];
    cases.push_back(c);
  }

  // Ground truth: a plain sequential loop over SimulatePlacement.
  std::vector<SimulationResult> expected;
  for (const SimulationCase& c : cases) {
    auto r = SimulatePlacement(*c.graph, *c.placement, *c.system, *c.inputs,
                               c.options);
    ASSERT_TRUE(r.ok()) << r.status().message();
    expected.push_back(std::move(*r));
  }

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SweepOptions sweep;
    sweep.num_threads = threads;
    auto results = SimulateSweep(cases, sweep);
    ASSERT_EQ(results.size(), cases.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << "threads=" << threads << " case=" << i;
      ExpectIdentical(*results[i], expected[i]);
    }
  }
}

TEST(SweepTest, AcceptsPrecompiledDeployments) {
  const QueryGraph g = TwoChainGraph();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 1, 1});
  auto deployment = CompileDeployment(g, plan, system);
  ASSERT_TRUE(deployment.ok());

  const std::vector<trace::RateTrace> inputs = {ConstantTrace(60.0, 8.0),
                                                ConstantTrace(60.0, 8.0)};
  SimulationCase c;
  c.deployment = &*deployment;
  c.inputs = &inputs;
  c.options.duration = 8.0;
  c.options.seed = 7;

  auto direct = Simulate(*deployment, inputs, c.options);
  ASSERT_TRUE(direct.ok());
  auto swept = SimulateSweep(std::vector<SimulationCase>{c, c});
  ASSERT_EQ(swept.size(), 2u);
  for (auto& r : swept) {
    ASSERT_TRUE(r.ok());
    ExpectIdentical(*r, *direct);
  }
}

TEST(SweepTest, ReportsPerCaseErrorsInPlace) {
  const QueryGraph g = TwoChainGraph();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0, 1});
  const std::vector<trace::RateTrace> good = {ConstantTrace(50.0, 5.0),
                                              ConstantTrace(50.0, 5.0)};

  SimulationCase ok_case;
  ok_case.graph = &g;
  ok_case.placement = &plan;
  ok_case.system = &system;
  ok_case.inputs = &good;
  ok_case.options.duration = 5.0;

  SimulationCase missing_inputs = ok_case;
  missing_inputs.inputs = nullptr;

  SimulationCase underspecified;  // neither deployment nor triple
  underspecified.inputs = &good;

  auto results = SimulateSweep(
      std::vector<SimulationCase>{ok_case, missing_inputs, underspecified});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
}

TEST(SweepTest, ProbeFeasibleSweepMatchesPointProbes) {
  const QueryGraph g = TwoChainGraph();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0, 1});
  SimulationOptions options;
  options.duration = 15.0;

  // Rates straddling the boundary (node 0 saturates near rate ~714).
  std::vector<Vector> points;
  for (double r : {100.0, 400.0, 900.0, 1500.0}) {
    points.push_back(Vector{r, r});
  }

  std::vector<bool> expected;
  for (const Vector& p : points) {
    auto probe = ProbeFeasibleAt(g, plan, system, p, options);
    ASSERT_TRUE(probe.ok());
    expected.push_back(*probe);
  }
  EXPECT_TRUE(expected.front());
  EXPECT_FALSE(expected.back());

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SweepOptions sweep;
    sweep.num_threads = threads;
    auto swept = ProbeFeasibleSweep(g, plan, system, points, options, sweep);
    ASSERT_EQ(swept.size(), points.size());
    for (size_t i = 0; i < swept.size(); ++i) {
      ASSERT_TRUE(swept[i].ok());
      EXPECT_EQ(*swept[i], expected[i]) << "threads=" << threads;
    }
  }
}

TEST(SweepTest, ProbeFeasibleSweepRejectsBadPointDimension) {
  const QueryGraph g = TwoChainGraph();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0, 1});
  std::vector<Vector> points = {Vector{100.0, 100.0}, Vector{100.0}};
  auto swept = ProbeFeasibleSweep(g, plan, system, points);
  ASSERT_EQ(swept.size(), 2u);
  EXPECT_TRUE(swept[0].ok());
  EXPECT_FALSE(swept[1].ok());
}

TEST(SweepTest, BoundaryScaleIsThreadIndependentAndNearAnalytic) {
  const QueryGraph g = TwoChainGraph();
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0, 1});
  const place::PlacementEvaluator eval(*model, system);
  const Vector direction = {1.0, 1.0};
  auto analytic = eval.BoundaryScaleAlong(plan, direction);
  ASSERT_TRUE(analytic.ok());

  SimulationOptions options;
  options.duration = 20.0;
  BoundarySearchOptions search;
  search.rel_tol = 0.05;

  double first = 0.0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SweepOptions sweep;
    sweep.num_threads = threads;
    auto scale = SimulatedBoundaryScale(g, plan, system, direction, options,
                                        search, sweep);
    ASSERT_TRUE(scale.ok()) << scale.status().message();
    if (threads == 1) {
      first = *scale;
      // The simulated boundary should land near the analytic one (the
      // probe adds queueing slack, so allow a generous band).
      EXPECT_GT(*scale, 0.5 * *analytic);
      EXPECT_LT(*scale, 1.5 * *analytic);
    } else {
      EXPECT_EQ(*scale, first) << "threads=" << threads;  // bit-exact
    }
  }
}

TEST(SweepTest, BoundaryScaleValidatesDirection) {
  const QueryGraph g = TwoChainGraph();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0, 1});
  EXPECT_FALSE(SimulatedBoundaryScale(g, plan, system, Vector{1.0}).ok());
  EXPECT_FALSE(
      SimulatedBoundaryScale(g, plan, system, Vector{0.0, 0.0}).ok());
  EXPECT_FALSE(
      SimulatedBoundaryScale(g, plan, system, Vector{-1.0, 1.0}).ok());
}

TEST(SweepTest, ForkSeedsAreDeterministicAndDistinct) {
  const auto a = ForkSeeds(42, 16);
  const auto b = ForkSeeds(42, 16);
  EXPECT_EQ(a, b);
  std::set<uint64_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
  const auto c = ForkSeeds(43, 16);
  EXPECT_NE(a, c);
}

TEST(SweepTest, SweepMapPreservesInputOrder) {
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    SweepOptions sweep;
    sweep.num_threads = threads;
    auto out = SweepMap(
        100, [](size_t i) { return static_cast<int>(i) * 3 + 1; }, sweep);
    ASSERT_EQ(out.size(), 100u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) * 3 + 1);
    }
  }
}

}  // namespace
}  // namespace rod::sim
