// Tests for the normalized-space geometry, pinned to Theorem 1.

#include "geometry/hyperplane.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace rod::geom {
namespace {

TEST(WeightMatrixTest, IdealBalanceGivesAllOnes) {
  // Theorem 1: l^n*_ik = l_k * C_i / C_T  =>  w_ik = 1 everywhere.
  const Vector total = {10.0, 11.0};
  const Vector caps = {1.0, 3.0};
  const double ct = 4.0;
  Matrix node_coeffs(2, 2);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t k = 0; k < 2; ++k) {
      node_coeffs(i, k) = total[k] * caps[i] / ct;
    }
  }
  auto w = ComputeWeightMatrix(node_coeffs, total, caps);
  ASSERT_TRUE(w.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (size_t k = 0; k < 2; ++k) {
      EXPECT_NEAR((*w)(i, k), 1.0, 1e-12);
    }
  }
}

TEST(WeightMatrixTest, HandComputedExample) {
  // Example 2, Plan (a): node1 = {o1,o2}, node2 = {o3,o4}; equal caps.
  // L^n = [[10,0],[0,11]], l = (10,11), C_i/C_T = 1/2.
  const Matrix node_coeffs = Matrix::FromRows({{10.0, 0.0}, {0.0, 11.0}});
  const Vector total = {10.0, 11.0};
  const Vector caps = {1.0, 1.0};
  auto w = ComputeWeightMatrix(node_coeffs, total, caps);
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)(0, 0), 2.0, 1e-12);  // all of stream 1 on half capacity
  EXPECT_NEAR((*w)(0, 1), 0.0, 1e-12);
  EXPECT_NEAR((*w)(1, 0), 0.0, 1e-12);
  EXPECT_NEAR((*w)(1, 1), 2.0, 1e-12);
}

TEST(WeightMatrixTest, RejectsBadInputs) {
  const Matrix node_coeffs = Matrix::FromRows({{1.0, 1.0}});
  EXPECT_FALSE(ComputeWeightMatrix(node_coeffs, Vector{1.0}, Vector{1.0}).ok());
  EXPECT_FALSE(
      ComputeWeightMatrix(node_coeffs, Vector{1.0, 0.0}, Vector{1.0}).ok());
  EXPECT_FALSE(
      ComputeWeightMatrix(node_coeffs, Vector{1.0, 1.0}, Vector{0.0}).ok());
  EXPECT_FALSE(
      ComputeWeightMatrix(node_coeffs, Vector{1.0, 1.0}, Vector{1.0, 1.0}).ok());
}

TEST(IdealVolumeTest, MatchesClosedForm) {
  // V(F*) = C_T^d / (d! prod l_k); d = 2, C_T = 2, l = (10, 11):
  // 4 / (2 * 110) = 1/55.
  auto v = IdealFeasibleVolume(Vector{10.0, 11.0}, 2.0);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 4.0 / 220.0, 1e-12);
}

TEST(IdealVolumeTest, HighDimensionalStability) {
  // d = 30 with unit coefficients: C_T^d / d! stays finite via log-space.
  Vector total(30, 1.0);
  auto v = IdealFeasibleVolume(total, 1.0);
  ASSERT_TRUE(v.ok());
  EXPECT_GT(*v, 0.0);
  EXPECT_NEAR(std::log(*v), -std::lgamma(31.0), 1e-9);
}

TEST(IdealVolumeTest, RejectsDegenerate) {
  EXPECT_FALSE(IdealFeasibleVolume(Vector{1.0}, 0.0).ok());
  EXPECT_FALSE(IdealFeasibleVolume(Vector{0.0}, 1.0).ok());
  EXPECT_FALSE(IdealFeasibleVolume(Vector{}, 1.0).ok());
}

TEST(PlaneDistanceTest, BasicAndEmptyRow) {
  EXPECT_NEAR(PlaneDistance(Vector{3.0, 4.0}), 1.0 / 5.0, 1e-12);
  EXPECT_TRUE(std::isinf(PlaneDistance(Vector{0.0, 0.0})));
}

TEST(PlaneDistanceTest, IdealHyperplaneDistance) {
  // All-ones weight row: distance = 1/sqrt(d) = r*.
  for (size_t d : {1u, 2u, 5u, 10u}) {
    Vector row(d, 1.0);
    EXPECT_NEAR(PlaneDistance(row), IdealPlaneDistance(d), 1e-12);
  }
}

TEST(PlaneDistanceTest, MinOverNodes) {
  const Matrix w = Matrix::FromRows({{1.0, 0.0}, {3.0, 4.0}});
  EXPECT_NEAR(MinPlaneDistance(w), 0.2, 1e-12);
}

TEST(PlaneDistanceFromTest, ShiftedOrigin) {
  // Hyperplane x + y = 1, from point (0.5, 0): (1 - 0.5)/sqrt(2).
  EXPECT_NEAR(PlaneDistanceFrom(Vector{1.0, 1.0}, Vector{0.5, 0.0}),
              0.5 / std::sqrt(2.0), 1e-12);
  // Point above the hyperplane gives a negative (signed) distance.
  EXPECT_LT(PlaneDistanceFrom(Vector{1.0, 1.0}, Vector{0.8, 0.8}), 0.0);
}

TEST(PlaneDistanceFromTest, OriginReducesToPlaneDistance) {
  const Vector row = {2.0, 5.0, 1.0};
  const Vector origin(3, 0.0);
  EXPECT_NEAR(PlaneDistanceFrom(row, origin), PlaneDistance(row), 1e-12);
}

TEST(AxisDistanceTest, ReciprocalWeightsAndInfinity) {
  const Matrix w = Matrix::FromRows({{2.0, 0.0}, {0.5, 4.0}});
  EXPECT_NEAR(AxisDistance(w, 0, 0), 0.5, 1e-12);
  EXPECT_TRUE(std::isinf(AxisDistance(w, 0, 1)));
  EXPECT_NEAR(AxisDistance(w, 1, 1), 0.25, 1e-12);
  const Vector mins = MinAxisDistances(w);
  EXPECT_NEAR(mins[0], 0.5, 1e-12);
  EXPECT_NEAR(mins[1], 0.25, 1e-12);
}

TEST(AxisDistanceBoundTest, MMADLowerBound) {
  // §4.1: feasible ratio >= prod_k min(1, min-axis-distance_k).
  const Matrix w = Matrix::FromRows({{2.0, 0.0}, {0.0, 2.0}});
  EXPECT_NEAR(AxisDistanceVolumeLowerBound(w), 0.25, 1e-12);
  // Ideal plan: bound = 1.
  const Matrix ideal = Matrix::FromRows({{1.0, 1.0}, {1.0, 1.0}});
  EXPECT_NEAR(AxisDistanceVolumeLowerBound(ideal), 1.0, 1e-12);
}

TEST(NormalizePointTest, MapsRatesToUnitlessSpace) {
  // x_k = l_k r_k / C_T.
  const Vector x = NormalizePoint(Vector{2.0, 3.0}, Vector{10.0, 11.0}, 4.0);
  EXPECT_NEAR(x[0], 5.0, 1e-12);
  EXPECT_NEAR(x[1], 8.25, 1e-12);
}

TEST(NormalizePointTest, IdealBoundaryMapsToUnitSimplexBoundary) {
  // A rate point on the ideal hyperplane (l . R = C_T) maps to sum(x) = 1.
  const Vector total = {4.0, 6.0};
  const double ct = 12.0;
  const Vector rates = {1.5, 1.0};  // 4*1.5 + 6*1 = 12 = C_T
  const Vector x = NormalizePoint(rates, total, ct);
  EXPECT_NEAR(x[0] + x[1], 1.0, 1e-12);
}

}  // namespace
}  // namespace rod::geom
