// Tests for the fluid epoch simulator and the reactive migration policy.

#include "runtime/fluid.h"

#include <gtest/gtest.h>

#include "placement/dynamic.h"
#include "query/query_graph.h"

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

/// Two independent single-op chains (one per stream), costs 1e-3 each.
struct TwoOpFixture {
  QueryGraph g;
  query::LoadModel model;

  TwoOpFixture() {
    const InputStreamId i0 = g.AddInputStream("I0");
    const InputStreamId i1 = g.AddInputStream("I1");
    EXPECT_TRUE(g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                               .cost = 1e-3},
                              {StreamRef::Input(i0)})
                    .ok());
    EXPECT_TRUE(g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                               .cost = 1e-3},
                              {StreamRef::Input(i1)})
                    .ok());
    model = *query::BuildLoadModel(g);
  }
};

trace::RateTrace Constant(double rate, size_t windows) {
  trace::RateTrace t;
  t.window_sec = 1.0;
  t.rates.assign(windows, rate);
  return t;
}

TEST(FluidTest, SteadyFeasibleLoadHasNoBacklog) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 1});
  auto r = FluidSimulate(f.model, plan, system,
                         {Constant(400.0, 20), Constant(400.0, 20)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->epochs, 20u);
  EXPECT_EQ(r->overloaded_epochs, 0u);
  EXPECT_NEAR(r->max_utilization, 0.4, 1e-9);
  EXPECT_DOUBLE_EQ(r->max_backlog_sec, 0.0);
  EXPECT_EQ(r->migrations, 0u);
}

TEST(FluidTest, OverloadAccumulatesBacklogLinearly) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0});  // both ops on node 0
  // Node 0 demand = 2 * 1e-3 * 700 = 1.4: overload 0.4 CPU-sec per sec.
  auto r = FluidSimulate(f.model, plan, system,
                         {Constant(700.0, 10), Constant(700.0, 10)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->overloaded_epochs, 10u);
  EXPECT_NEAR(r->final_backlog_sec, 0.4 * 10.0, 1e-9);
  EXPECT_NEAR(r->max_utilization, 1.4, 1e-9);
}

TEST(FluidTest, SpareCapacityDrainsBacklog) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0});
  // 5 overloaded epochs (1.4) then 15 light ones (0.2): backlog 2.0
  // CPU-sec drains at 0.8/sec.
  trace::RateTrace burst;
  burst.window_sec = 1.0;
  burst.rates.assign(5, 700.0);
  burst.rates.resize(20, 100.0);
  auto r = FluidSimulate(f.model, plan, system, {burst, burst});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->max_backlog_sec, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(r->final_backlog_sec, 0.0);
}

TEST(FluidTest, ValidatesInputs) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 1});
  // Wrong trace count.
  EXPECT_FALSE(FluidSimulate(f.model, plan, system,
                             {Constant(1.0, 5)})
                   .ok());
  // Bad epoch.
  FluidOptions bad;
  bad.epoch_sec = 0.0;
  EXPECT_FALSE(FluidSimulate(f.model, plan, system,
                             {Constant(1.0, 5), Constant(1.0, 5)}, bad)
                   .ok());
  // Mismatched placement.
  EXPECT_FALSE(FluidSimulate(f.model, Placement(2, {0}), system,
                             {Constant(1.0, 5), Constant(1.0, 5)})
                   .ok());
}

TEST(ReactiveBalancerTest, MovesLoadOffHotNode) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0});  // misplaced: both on node 0
  place::ReactiveBalancer balancer;
  auto r = FluidSimulate(f.model, plan, system,
                         {Constant(480.0, 30), Constant(480.0, 30)},
                         FluidOptions{}, &balancer);
  ASSERT_TRUE(r.ok());
  // Node 0 at 0.96 >= watermark: one op must migrate, after which both
  // nodes run at 0.48 and no further moves happen.
  EXPECT_EQ(r->migrations, 1u);
  EXPECT_NE(r->final_assignment[0], r->final_assignment[1]);
  EXPECT_EQ(r->overloaded_epochs, 0u);  // 0.96 < the 1.0 threshold
}

TEST(ReactiveBalancerTest, QuietBelowWatermark) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0});
  place::ReactiveBalancer balancer;
  auto r = FluidSimulate(f.model, plan, system,
                         {Constant(300.0, 20), Constant(300.0, 20)},
                         FluidOptions{}, &balancer);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->migrations, 0u);  // 0.6 util: nothing to do
}

TEST(ReactiveBalancerTest, MigrationPaysCosts) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0});
  place::ReactiveBalancer balancer;
  FluidOptions options;
  options.migration_latency = 2.0;   // exaggerated stall
  options.migration_cpu_cost = 0.5;  // exaggerated marshalling
  auto with_costs =
      FluidSimulate(f.model, plan, system,
                    {Constant(480.0, 30), Constant(480.0, 30)}, options,
                    &balancer);
  ASSERT_TRUE(with_costs.ok());
  ASSERT_EQ(with_costs->migrations, 1u);
  // The stalled operator's deferred work shows up as backlog.
  EXPECT_GT(with_costs->max_backlog_sec, 0.5);
}

TEST(ReactiveBalancerTest, CooldownLimitsThrashing) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0});
  place::ReactiveBalancer::Options bopts;
  bopts.cooldown_epochs = 100;  // effectively one decision per run
  bopts.max_moves = 1;
  place::ReactiveBalancer balancer(bopts);
  // Oscillating load that would tempt a reactive policy every epoch.
  trace::RateTrace osc;
  osc.window_sec = 1.0;
  for (int i = 0; i < 40; ++i) osc.rates.push_back(i % 2 ? 900.0 : 100.0);
  auto r = FluidSimulate(f.model, plan, system, {osc, osc}, FluidOptions{},
                         &balancer);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->migrations, 1u);
}

TEST(FluidTest, AgreesWithAnalyticFeasibilityOnConstantRates) {
  TwoOpFixture f;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const Placement good(2, {0, 1});
  auto r = FluidSimulate(f.model, good, system,
                         {Constant(900.0, 10), Constant(900.0, 10)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->overloaded_epochs, 0u);  // 0.9 per node: feasible

  auto bad = FluidSimulate(f.model, Placement(2, {0, 0}), system,
                           {Constant(900.0, 10), Constant(900.0, 10)});
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->overloaded_epochs, 10u);  // 1.8 on node 0
}

}  // namespace
}  // namespace rod::sim
