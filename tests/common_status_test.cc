// Tests for Status / Result error handling.

#include "common/status.h"

#include <gtest/gtest.h>

namespace rod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, UnavailableIsSurfacedDistinctly) {
  const Status s = Status::Unavailable("peer gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "unavailable: peer gone");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "unavailable");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  EXPECT_EQ(Status::NotFound("who").ToString(), "not_found: who");
  EXPECT_EQ(Status(StatusCode::kInternal, "").ToString(), "internal");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "unimplemented");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MovesPayload) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  ROD_RETURN_IF_ERROR(fail ? Status::OutOfRange("deep") : Status::OK());
  return Status::Internal("should not reach on failure");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace rod
