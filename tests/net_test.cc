// Tests for the shared raw-socket helpers (common/net) extracted from
// the HTTP server: loopback listen/connect/accept, exact read/write,
// EOF vs. error distinction, and the self-pipe wakeup primitive.

#include "common/net.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <thread>

namespace rod::net {
namespace {

TEST(NetTest, ListenConnectAcceptRoundTrip) {
  std::string error;
  const int listen_fd = ListenLoopback(0, &error);
  ASSERT_GE(listen_fd, 0) << error;
  const uint16_t port = BoundPort(listen_fd);
  ASSERT_NE(port, 0);

  const int client = ConnectLoopback(port, &error);
  ASSERT_GE(client, 0) << error;
  const int server = AcceptConnection(listen_fd);
  ASSERT_GE(server, 0);

  const char out[] = "ping across loopback";
  ASSERT_TRUE(WriteAll(client, out, sizeof(out)));
  char in[sizeof(out)] = {};
  ASSERT_TRUE(ReadExactly(server, in, sizeof(out)));
  EXPECT_STREQ(in, out);

  int cfd = client, sfd = server, lfd = listen_fd;
  CloseFd(&cfd);
  CloseFd(&sfd);
  CloseFd(&lfd);
  EXPECT_EQ(cfd, -1);
}

TEST(NetTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close it, then dial it: must fail with a
  // filled error string, not hang.
  std::string error;
  int fd = ListenLoopback(0, &error);
  ASSERT_GE(fd, 0);
  const uint16_t port = BoundPort(fd);
  CloseFd(&fd);

  const int client = ConnectLoopback(port, &error);
  EXPECT_LT(client, 0);
  EXPECT_FALSE(error.empty());
}

TEST(NetTest, ReadExactlySignalsCleanEofWithZeroErrno) {
  std::string error;
  const int listen_fd = ListenLoopback(0, &error);
  ASSERT_GE(listen_fd, 0);
  int client = ConnectLoopback(BoundPort(listen_fd), &error);
  ASSERT_GE(client, 0);
  int server = AcceptConnection(listen_fd);
  ASSERT_GE(server, 0);

  ASSERT_TRUE(WriteAll(client, "abc", 3));
  CloseFd(&client);  // Half the expected bytes, then EOF.

  char buf[8] = {};
  errno = 77;
  EXPECT_FALSE(ReadExactly(server, buf, 8));
  EXPECT_EQ(errno, 0) << "clean EOF must be distinguishable from errors";

  CloseFd(&server);
  int lfd = listen_fd;
  CloseFd(&lfd);
}

TEST(NetTest, WriteToDeadPeerFailsWithoutSigpipe) {
  // The whole point of MSG_NOSIGNAL in WriteAll: writing to a peer that
  // closed must return false (EPIPE), not kill the process.
  std::string error;
  const int listen_fd = ListenLoopback(0, &error);
  ASSERT_GE(listen_fd, 0);
  int client = ConnectLoopback(BoundPort(listen_fd), &error);
  ASSERT_GE(client, 0);
  int server = AcceptConnection(listen_fd);
  ASSERT_GE(server, 0);
  CloseFd(&server);

  // First write may land in the kernel buffer; keep writing until the
  // RST surfaces. Bounded so a regression fails rather than spins.
  std::string chunk(4096, 'x');
  bool failed = false;
  for (int i = 0; i < 1000 && !failed; ++i) {
    failed = !WriteAll(client, chunk.data(), chunk.size());
  }
  EXPECT_TRUE(failed);

  CloseFd(&client);
  int lfd = listen_fd;
  CloseFd(&lfd);
}

TEST(NetTest, SelfPipeWakesAndDrains) {
  SelfPipe pipe;
  std::string error;
  ASSERT_TRUE(pipe.Open(&error)) << error;
  ASSERT_TRUE(pipe.open());

  // Drain on an empty pipe must not block (read end is non-blocking).
  pipe.Drain();

  std::thread notifier([&pipe] { pipe.Notify(); });
  notifier.join();
  char byte = 0;
  ASSERT_TRUE(ReadExactly(pipe.read_fd(), &byte, 1));
  EXPECT_EQ(byte, 'w');

  pipe.Notify();
  pipe.Notify();
  pipe.Drain();  // Multiple pending wakeups drain without blocking.
  pipe.Close();
  EXPECT_FALSE(pipe.open());
}

TEST(NetTest, SocketTimeoutsTurnIdleReadsIntoErrors) {
  std::string error;
  const int listen_fd = ListenLoopback(0, &error);
  ASSERT_GE(listen_fd, 0);
  int client = ConnectLoopback(BoundPort(listen_fd), &error);
  ASSERT_GE(client, 0);
  int server = AcceptConnection(listen_fd);
  ASSERT_GE(server, 0);

  SetSocketTimeouts(server, 0.05);
  char buf[4];
  errno = 0;
  EXPECT_FALSE(ReadExactly(server, buf, sizeof(buf)));
  EXPECT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK) << std::strerror(errno);

  CloseFd(&client);
  CloseFd(&server);
  int lfd = listen_fd;
  CloseFd(&lfd);
}

}  // namespace
}  // namespace rod::net
