// Tests for trace persistence and timestamp conversion.

#include "trace/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace rod::trace {
namespace {

RateTrace SampleTrace() {
  RateTrace t;
  t.window_sec = 0.5;
  t.rates = {1.25, 0.0, 3.75, 2.0};
  return t;
}

TEST(TraceCsvTest, StringRoundTrip) {
  const RateTrace t = SampleTrace();
  auto back = FromCsvString(ToCsvString(t));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->window_sec, 0.5);
  EXPECT_EQ(back->rates, t.rates);
}

TEST(TraceCsvTest, PreservesPrecision) {
  RateTrace t;
  t.window_sec = 1.0 / 3.0;
  t.rates = {0.1 + 0.2, 1e-17 + 1.0};
  auto back = FromCsvString(ToCsvString(t));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->window_sec, t.window_sec);
  EXPECT_DOUBLE_EQ(back->rates[0], t.rates[0]);
}

TEST(TraceCsvTest, RejectsMalformedContent) {
  EXPECT_FALSE(FromCsvString("").ok());
  EXPECT_FALSE(FromCsvString("bogus\n1.0\n").ok());
  EXPECT_FALSE(FromCsvString("window_sec,abc\n1.0\n").ok());
  EXPECT_FALSE(FromCsvString("window_sec,0\n1.0\n").ok());        // zero width
  EXPECT_FALSE(FromCsvString("window_sec,1.0\n").ok());           // no rows
  EXPECT_FALSE(FromCsvString("window_sec,1.0\n-2.0\n").ok());     // negative
  EXPECT_FALSE(FromCsvString("window_sec,1.0\n1.0x\n").ok());     // trailing
  EXPECT_FALSE(FromCsvString("window_sec,1.0\nnan\n").ok());      // non-finite
}

TEST(TraceCsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rod_trace_io_test.csv")
          .string();
  const RateTrace t = SampleTrace();
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto back = LoadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rates, t.rates);
  std::remove(path.c_str());
}

TEST(TraceCsvTest, LoadMissingFileIsNotFound) {
  auto r = LoadCsv("/definitely/not/here.csv");
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(TimestampsTest, CountsPerWindow) {
  // 1-second windows: 3 arrivals in [0,1), 1 in [1,2), 2 in [2,3).
  const std::vector<double> ts = {0.1, 0.5, 0.9, 1.5, 2.0, 2.99};
  auto trace = RatesFromTimestamps(ts, 1.0);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->rates, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(TimestampsTest, RatesScaleWithWindowWidth) {
  const std::vector<double> ts = {0.0, 0.1, 0.2, 0.3};
  auto trace = RatesFromTimestamps(ts, 0.5);
  ASSERT_TRUE(trace.ok());
  EXPECT_DOUBLE_EQ(trace->window_sec, 0.5);
  EXPECT_DOUBLE_EQ(trace->rates[0], 4.0 / 0.5);  // 4 tuples in 0.5 s
}

TEST(TimestampsTest, MeanRateMatchesArrivalDensity) {
  std::vector<double> ts;
  for (int i = 0; i < 1000; ++i) ts.push_back(i * 0.01);  // 100/s for 10 s
  auto trace = RatesFromTimestamps(ts, 1.0);
  ASSERT_TRUE(trace.ok());
  EXPECT_NEAR(trace->MeanRate(), 100.0, 1.0);
}

TEST(TimestampsTest, RejectsBadInput) {
  EXPECT_FALSE(RatesFromTimestamps({}, 1.0).ok());
  EXPECT_FALSE(RatesFromTimestamps({1.0, 0.5}, 1.0).ok());   // unsorted
  EXPECT_FALSE(RatesFromTimestamps({-1.0, 0.5}, 1.0).ok());  // negative
  EXPECT_FALSE(RatesFromTimestamps({1.0}, 0.0).ok());        // bad window
}

TEST(TimestampLogTest, LoadsSortedLogSkippingCommentsAndBlanks) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rod_trace_io_test.log")
          .string();
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# ITA-style arrival log\n"
        << "0.25\n"
        << "\n"
        << "0.5\n"
        << "0.5\n"  // equal timestamps are legal
        << "2.75\n";
  }
  auto ts = LoadTimestampLog(path);
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();
  EXPECT_EQ(*ts, (std::vector<double>{0.25, 0.5, 0.5, 2.75}));
  std::remove(path.c_str());
}

TEST(TimestampLogTest, RejectsBadLogs) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rod_trace_io_bad.log")
          .string();
  auto write = [&path](const char* content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  };
  write("1.0\n0.5\n");  // out of order
  EXPECT_FALSE(LoadTimestampLog(path).ok());
  write("-1.0\n");
  EXPECT_FALSE(LoadTimestampLog(path).ok());
  write("abc\n");
  EXPECT_FALSE(LoadTimestampLog(path).ok());
  write("1.0x\n");  // trailing characters
  EXPECT_FALSE(LoadTimestampLog(path).ok());
  write("# only a comment\n");
  EXPECT_FALSE(LoadTimestampLog(path).ok());  // no entries
  std::remove(path.c_str());
  EXPECT_EQ(LoadTimestampLog(path).status().code(), StatusCode::kNotFound);
}

TEST(TimestampsTest, RoundTripThroughCsv) {
  const std::vector<double> ts = {0.2, 0.7, 1.1, 3.4, 3.5};
  auto trace = RatesFromTimestamps(ts, 1.0);
  ASSERT_TRUE(trace.ok());
  auto back = FromCsvString(ToCsvString(*trace));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rates, trace->rates);
}

}  // namespace
}  // namespace rod::trace
