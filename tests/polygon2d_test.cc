// Tests for exact 2-D feasible polygon computation.

#include "geometry/polygon2d.h"

#include <gtest/gtest.h>

namespace rod::geom {
namespace {

TEST(PolygonAreaTest, KnownShapes) {
  const Polygon2 triangle = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_NEAR(PolygonArea(triangle), 0.5, 1e-12);
  const Polygon2 square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_NEAR(PolygonArea(square), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(PolygonArea({}), 0.0);
  EXPECT_DOUBLE_EQ(PolygonArea({{0, 0}, {1, 1}}), 0.0);
}

TEST(PolygonAreaTest, OrientationInvariant) {
  const Polygon2 ccw = {{0, 0}, {1, 0}, {0, 1}};
  const Polygon2 cw = {{0, 0}, {0, 1}, {1, 0}};
  EXPECT_NEAR(PolygonArea(ccw), PolygonArea(cw), 1e-12);
}

TEST(ClipTest, HalfPlaneKeepsInsidePart) {
  const Polygon2 square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  // Keep x <= 1.
  const Polygon2 clipped = ClipHalfPlane(square, 1.0, 0.0, 1.0);
  EXPECT_NEAR(PolygonArea(clipped), 2.0, 1e-12);
}

TEST(ClipTest, NoOpWhenFullyInside) {
  const Polygon2 tri = {{0, 0}, {1, 0}, {0, 1}};
  const Polygon2 clipped = ClipHalfPlane(tri, 1.0, 1.0, 5.0);
  EXPECT_NEAR(PolygonArea(clipped), 0.5, 1e-12);
}

TEST(ClipTest, EmptyWhenFullyOutside) {
  const Polygon2 tri = {{1, 1}, {2, 1}, {1, 2}};
  const Polygon2 clipped = ClipHalfPlane(tri, 1.0, 1.0, 1.0);
  EXPECT_TRUE(clipped.empty());
}

TEST(FeasiblePolygonTest, IdealWeightsKeepWholeTriangle) {
  const Matrix w = Matrix::FromRows({{1.0, 1.0}, {1.0, 1.0}});
  auto ratio = ExactRatioToIdeal2D(w);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 1.0, 1e-12);
}

TEST(FeasiblePolygonTest, PaperExample2PlanA) {
  // Plan (a) of Example 2: W = [[2,0],[0,2]] (each node hosts one whole
  // stream on half the capacity). Feasible set: x <= 1/2, y <= 1/2 within
  // the triangle -> area = 1/4 + ... compute: the square [0,1/2]^2 lies
  // under the ideal hyperplane except its upper-right half? x+y <= 1 always
  // holds inside [0,.5]^2, so the feasible region *within the ideal
  // triangle* is the full square: area 1/4, ratio 1/2.
  const Matrix w = Matrix::FromRows({{2.0, 0.0}, {0.0, 2.0}});
  auto ratio = ExactRatioToIdeal2D(w);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 0.5, 1e-12);
}

TEST(FeasiblePolygonTest, SingleDominatingNode) {
  // One node carries everything: W = [[2,2]] -> feasible is the scaled
  // triangle x+y <= 1/2: ratio 1/4. (A second, empty node adds nothing.)
  const Matrix w = Matrix::FromRows({{2.0, 2.0}, {0.0, 0.0}});
  auto ratio = ExactRatioToIdeal2D(w);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 0.25, 1e-12);
}

TEST(FeasiblePolygonTest, RequiresTwoColumns) {
  EXPECT_FALSE(ExactRatioToIdeal2D(Matrix(1, 3, 1.0)).ok());
}

TEST(FeasiblePolygonTest, AsymmetricPlan) {
  // W = [[1.5, 0.5], [0.5, 1.5]]: symmetric crossing planes. The corner
  // (0.5, 0.5) satisfies both constraints with equality... 1.5*.5+.5*.5 = 1.
  // Vertices: (0,0), (2/3,0), (.5,.5), (0,2/3). Area = shoelace.
  const Matrix w = Matrix::FromRows({{1.5, 0.5}, {0.5, 1.5}});
  auto poly = FeasiblePolygon(w);
  ASSERT_TRUE(poly.ok());
  auto ratio = ExactRatioToIdeal2D(w);
  ASSERT_TRUE(ratio.ok());
  // Shoelace of (0,0),(2/3,0),(1/2,1/2),(0,2/3): area = 1/3 + ... compute
  // numerically: 0.5*|x1*y2 - x2*y1 + ...| = 0.5*(2/3*1/2 + 1/2*2/3)
  // = 0.5*(1/3+1/3) = 1/3. Ratio = (1/3)/(1/2) = 2/3.
  EXPECT_NEAR(*ratio, 2.0 / 3.0, 1e-9);
}

}  // namespace
}  // namespace rod::geom
