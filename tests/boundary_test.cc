// Tests for feasibility-boundary analysis.

#include "geometry/boundary.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rod::geom {
namespace {

TEST(BoundaryScaleTest, SimpleAxisCases) {
  const Matrix w = Matrix::FromRows({{2.0, 0.0}, {0.0, 4.0}});
  // Along axis 0: node 0 saturates at x = 0.5.
  auto s0 = BoundaryScale(w, Vector{1.0, 0.0});
  ASSERT_TRUE(s0.ok());
  EXPECT_NEAR(*s0, 0.5, 1e-12);
  // Along axis 1: node 1 saturates at y = 0.25.
  auto s1 = BoundaryScale(w, Vector{0.0, 1.0});
  ASSERT_TRUE(s1.ok());
  EXPECT_NEAR(*s1, 0.25, 1e-12);
}

TEST(BoundaryScaleTest, DiagonalDirection) {
  const Matrix w = Matrix::FromRows({{1.0, 1.0}});
  auto s = BoundaryScale(w, Vector{1.0, 1.0});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(*s, 0.5, 1e-12);  // x + y = 1 hit at (0.5, 0.5)
}

TEST(BoundaryScaleTest, InfiniteWhenUnloaded) {
  const Matrix w = Matrix::FromRows({{0.0, 1.0}});
  auto s = BoundaryScale(w, Vector{1.0, 0.0});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(std::isinf(*s));
}

TEST(BoundaryScaleTest, ScaledPointIsOnBoundary) {
  const Matrix w = Matrix::FromRows({{1.2, 0.4}, {0.3, 1.7}, {0.9, 0.9}});
  const Vector dir = {0.6, 0.8};
  auto s = BoundaryScale(w, dir);
  ASSERT_TRUE(s.ok());
  // At the boundary the binding node's constraint is exactly 1.
  double max_load = 0.0;
  for (size_t i = 0; i < w.rows(); ++i) {
    max_load = std::max(max_load, Dot(w.Row(i), Scale(dir, *s)));
  }
  EXPECT_NEAR(max_load, 1.0, 1e-12);
}

TEST(BoundaryScaleTest, RejectsBadDirections) {
  const Matrix w = Matrix::FromRows({{1.0, 1.0}});
  EXPECT_FALSE(BoundaryScale(w, Vector{1.0}).ok());
  EXPECT_FALSE(BoundaryScale(w, Vector{-1.0, 1.0}).ok());
  EXPECT_FALSE(BoundaryScale(w, Vector{0.0, 0.0}).ok());
}

TEST(BottleneckNodeTest, IdentifiesBindingNode) {
  const Matrix w = Matrix::FromRows({{2.0, 0.0}, {0.0, 4.0}});
  auto along_x = BottleneckNode(w, Vector{1.0, 0.0});
  ASSERT_TRUE(along_x.ok());
  EXPECT_EQ(*along_x, 0u);
  auto along_y = BottleneckNode(w, Vector{0.0, 1.0});
  ASSERT_TRUE(along_y.ok());
  EXPECT_EQ(*along_y, 1u);
}

TEST(BottleneckNodeTest, FailsWhenNoneBinds) {
  const Matrix w = Matrix::FromRows({{0.0, 1.0}});
  EXPECT_FALSE(BottleneckNode(w, Vector{1.0, 0.0}).ok());
}

TEST(CriticalDirectionTest, PointsAtWeakestHyperplane) {
  const Matrix w = Matrix::FromRows({{3.0, 4.0}, {1.0, 0.5}});
  // Row 0 has norm 5 -> distance 0.2; row 1 distance ~0.894.
  auto dir = CriticalDirection(w);
  ASSERT_TRUE(dir.ok());
  EXPECT_NEAR((*dir)[0], 0.6, 1e-12);
  EXPECT_NEAR((*dir)[1], 0.8, 1e-12);
  // Boundary along the critical direction equals the min plane distance.
  auto s = BoundaryScale(w, *dir);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(*s, 0.2, 1e-12);
}

TEST(CriticalDirectionTest, FailsOnAllZero) {
  EXPECT_FALSE(CriticalDirection(Matrix(2, 2, 0.0)).ok());
}

TEST(HeadroomTest, BelowAndAboveBoundary) {
  const Matrix w = Matrix::FromRows({{1.0, 1.0}});
  auto inside = Headroom(w, Vector{0.2, 0.2});
  ASSERT_TRUE(inside.ok());
  EXPECT_NEAR(*inside, 2.5, 1e-12);  // can scale 2.5x before x + y = 1
  auto outside = Headroom(w, Vector{0.8, 0.8});
  ASSERT_TRUE(outside.ok());
  EXPECT_LT(*outside, 1.0);  // already infeasible
}

TEST(BoundaryScaleTest, MoreNodesNeverIncreaseBoundary) {
  const Matrix one = Matrix::FromRows({{1.0, 0.7}});
  const Matrix two = Matrix::FromRows({{1.0, 0.7}, {0.6, 1.3}});
  const Vector dir = {0.5, 0.5};
  auto s1 = BoundaryScale(one, dir);
  auto s2 = BoundaryScale(two, dir);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_LE(*s2, *s1 + 1e-12);
}

}  // namespace
}  // namespace rod::geom
