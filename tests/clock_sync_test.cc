// Clock-offset estimator tests: synthetic two-clock exchanges with known
// skew and jittered path delays, verifying the NTP-midpoint estimate,
// the minimum-RTT filter, the rtt/2 error bound, and sample rejection.

#include "cluster/clock_sync.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace rod::cluster {
namespace {

/// Builds the four-timestamp exchange for a worker whose clock reads
/// coordinator_clock - true_offset (so worker + true_offset =
/// coordinator, the distributed convention), with the given one-way
/// delays. `t1` is the coordinator clock at ping send.
ClockSample MakeSample(double t1, double true_offset_us, double delay_out_us,
                       double delay_back_us, double worker_hold_us = 5.0) {
  ClockSample s;
  s.t1_us = t1;
  s.t2_us = t1 + delay_out_us - true_offset_us;
  s.t3_us = s.t2_us + worker_hold_us;
  s.t4_us = (s.t3_us + true_offset_us) + delay_back_us;
  return s;
}

TEST(ClockSyncEstimatorTest, SymmetricDelaysRecoverOffsetExactly) {
  for (double true_offset : {-1.5e6, -37.0, 0.0, 42.0, 2.25e6}) {
    ClockSyncEstimator est;
    est.AddSample(MakeSample(1000.0, true_offset, 80.0, 80.0));
    ASSERT_TRUE(est.has_estimate());
    // Equal path delays make the midpoint exact.
    EXPECT_NEAR(est.offset_us(), true_offset, 1e-9) << true_offset;
    EXPECT_NEAR(est.rtt_us(), 160.0, 1e-9);
    EXPECT_NEAR(est.error_bound_us(), 80.0, 1e-9);
  }
}

TEST(ClockSyncEstimatorTest, AsymmetryErrorIsBoundedByHalfRtt) {
  const double true_offset = 5000.0;
  ClockSyncEstimator est;
  // Badly asymmetric: 10us out, 400us back.
  est.AddSample(MakeSample(0.0, true_offset, 10.0, 400.0));
  ASSERT_TRUE(est.has_estimate());
  const double err = std::abs(est.offset_us() - true_offset);
  EXPECT_GT(err, 0.0);
  EXPECT_LE(err, est.error_bound_us());
}

TEST(ClockSyncEstimatorTest, MinRttFilterPrefersCleanestSample) {
  const double true_offset = -777.0;
  ClockSyncEstimator est;
  // A pile of jitter-inflated asymmetric samples...
  Rng rng(0xc10c);
  for (int i = 0; i < 10; ++i) {
    const double out = 100.0 + rng.Uniform(0.0, 900.0);
    const double back = 100.0 + rng.Uniform(0.0, 900.0);
    est.AddSample(MakeSample(i * 1e4, true_offset, out, back));
  }
  // ...then one clean symmetric probe with the smallest RTT.
  est.AddSample(MakeSample(2e5, true_offset, 20.0, 20.0));
  EXPECT_NEAR(est.rtt_us(), 40.0, 1e-9);
  EXPECT_NEAR(est.offset_us(), true_offset, 1e-9);
}

TEST(ClockSyncEstimatorTest, JitteredRunStaysWithinJitterBound) {
  // Base delay D with uniform jitter in [0, J) each way: every sample's
  // asymmetry is < J, so the min-RTT estimate errs by less than J/2.
  const double true_offset = 1234.5;
  const double base = 50.0;
  const double jitter = 60.0;
  ClockSyncEstimator est;
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    const double out = base + rng.Uniform(0.0, jitter);
    const double back = base + rng.Uniform(0.0, jitter);
    est.AddSample(MakeSample(i * 1e4, true_offset, out, back));
  }
  ASSERT_TRUE(est.has_estimate());
  EXPECT_LT(std::abs(est.offset_us() - true_offset), jitter / 2.0);
  EXPECT_LE(std::abs(est.offset_us() - true_offset), est.error_bound_us());
  EXPECT_EQ(est.samples_accepted(), 64u);
  EXPECT_EQ(est.samples_rejected(), 0u);
}

TEST(ClockSyncEstimatorTest, WindowAgesOutOldSamplesSoDriftTracks) {
  ClockSyncEstimator est(/*window=*/4);
  // Early samples at one offset with a tiny RTT...
  for (int i = 0; i < 4; ++i) {
    est.AddSample(MakeSample(i * 1e4, 100.0, 10.0, 10.0));
  }
  EXPECT_NEAR(est.offset_us(), 100.0, 1e-9);
  // ...then the clock relationship shifts; once the window rolls over,
  // the estimate must follow even though the old RTTs were smaller.
  for (int i = 0; i < 4; ++i) {
    est.AddSample(MakeSample(1e6 + i * 1e4, 900.0, 25.0, 25.0));
  }
  EXPECT_NEAR(est.offset_us(), 900.0, 1e-9);
}

TEST(ClockSyncEstimatorTest, RejectsNonPositiveRttAndKeepsEstimate) {
  ClockSyncEstimator est;
  est.AddSample(MakeSample(0.0, 10.0, 50.0, 50.0));
  const double before = est.offset_us();

  // Crossed timestamps: worker "held" the ping longer than the whole
  // exchange took -> non-positive RTT.
  ClockSample bad = MakeSample(1e4, 10.0, 50.0, 50.0, /*worker_hold_us=*/200.0);
  bad.t4_us = bad.t1_us + 80.0;  // Exchange "finished" before the hold did.
  est.AddSample(bad);

  ClockSample nan_sample = MakeSample(2e4, 10.0, 50.0, 50.0);
  nan_sample.t2_us = std::nan("");
  est.AddSample(nan_sample);

  EXPECT_EQ(est.samples_accepted(), 1u);
  EXPECT_EQ(est.samples_rejected(), 2u);
  EXPECT_DOUBLE_EQ(est.offset_us(), before);
}

TEST(ClockSyncEstimatorTest, EmptyEstimatorAnswersZeros) {
  ClockSyncEstimator est;
  EXPECT_FALSE(est.has_estimate());
  EXPECT_DOUBLE_EQ(est.offset_us(), 0.0);
  EXPECT_DOUBLE_EQ(est.rtt_us(), 0.0);
  EXPECT_DOUBLE_EQ(est.error_bound_us(), 0.0);
}

}  // namespace
}  // namespace rod::cluster
