// Tests for the streaming JSON writer: escaping, pretty vs inline
// container layout, comma/indent bookkeeping, and the double format the
// bench baselines rely on.

#include "telemetry/json_writer.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace rod::telemetry {
namespace {

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(JsonEscape("engine.events_per_sec"), "engine.events_per_sec");
}

TEST(JsonEscapeTest, EscapesQuotesBackslashAndControls) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonEscapeTest, LeavesUtf8Alone) {
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(JsonWriterTest, EmptyObjectAndArray) {
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.BeginObject().EndObject();
    EXPECT_TRUE(w.done());
    EXPECT_EQ(out.str(), "{}");
  }
  {
    std::ostringstream out;
    JsonWriter w(out);
    w.BeginArray().EndArray();
    EXPECT_EQ(out.str(), "[]");
  }
}

TEST(JsonWriterTest, PrettyObjectIndentsTwoSpaces) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.Key("a").Uint(1);
  w.Key("b").String("x");
  w.EndObject();
  EXPECT_EQ(out.str(), "{\n  \"a\": 1,\n  \"b\": \"x\"\n}");
}

TEST(JsonWriterTest, InlineObjectStaysOnOneLine) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObjectInline();
  w.Key("a").Uint(1);
  w.Key("ok").Bool(true);
  w.EndObject();
  EXPECT_EQ(out.str(), "{\"a\": 1, \"ok\": true}");
}

TEST(JsonWriterTest, InlinePropagatesToNestedContainers) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObjectInline();
  w.Key("buckets").BeginArray();  // nested inside inline: stays inline
  w.BeginArrayInline().Double(0.5).Uint(3).EndArray();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(out.str(), "{\"buckets\": [[0.5, 3]]}");
}

TEST(JsonWriterTest, ArrayOfInlineRowsMatchesBaselineShape) {
  // The committed BENCH_*.json row shape: a pretty outer array whose
  // elements are one-line objects.
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.Key("entries").BeginArray();
  w.BeginObjectInline().Key("dims").Uint(3).EndObject();
  w.BeginObjectInline().Key("dims").Uint(6).EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(out.str(),
            "{\n  \"entries\": [\n    {\"dims\": 3},\n    {\"dims\": 6}\n"
            "  ]\n}");
}

TEST(JsonWriterTest, DoublesUsePrecision15DefaultFormat) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginArrayInline();
  w.Double(0.1);
  w.Double(1.0);
  w.Double(1234567.25);
  w.Double(1e-7);
  w.EndArray();
  EXPECT_EQ(out.str(), "[0.1, 1, 1234567.25, 1e-07]");
}

TEST(JsonWriterTest, SignedAndNullValues) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginArrayInline().Int(-3).Null().EndArray();
  EXPECT_EQ(out.str(), "[-3, null]");
}

TEST(JsonWriterTest, EscapesKeysAndStringValues) {
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObjectInline().Key("a\"b").String("c\nd").EndObject();
  EXPECT_EQ(out.str(), "{\"a\\\"b\": \"c\\nd\"}");
}

TEST(JsonWriterTest, DoneOnlyAfterRootCloses) {
  std::ostringstream out;
  JsonWriter w(out);
  EXPECT_FALSE(w.done());
  w.BeginObject();
  EXPECT_FALSE(w.done());
  w.EndObject();
  EXPECT_TRUE(w.done());
}

}  // namespace
}  // namespace rod::telemetry
