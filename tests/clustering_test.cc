// Tests for §6.3 operator clustering and the clustered-ROD sweep.

#include "placement/clustering.h"

#include <gtest/gtest.h>

#include "geometry/hyperplane.h"
#include "placement/evaluator.h"
#include "query/load_model.h"

namespace rod::place {
namespace {

using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

/// A chain I -> a -> b -> c with configurable communication costs on the
/// a->b and b->c arcs.
struct ChainFixture {
  QueryGraph g;
  query::OperatorId a, b, c;

  explicit ChainFixture(double comm_ab, double comm_bc) {
    const InputStreamId in = g.AddInputStream("I");
    a = *g.AddOperator({.name = "a", .kind = OperatorKind::kMap, .cost = 1.0},
                       {StreamRef::Input(in)});
    b = *g.AddOperator({.name = "b", .kind = OperatorKind::kMap, .cost = 2.0},
                       {StreamRef::Op(a)}, {comm_ab});
    c = *g.AddOperator({.name = "c", .kind = OperatorKind::kMap, .cost = 4.0},
                       {StreamRef::Op(b)}, {comm_bc});
  }
};

TEST(ClusteringTest, SingletonClusteringIsIdentity) {
  ChainFixture f(0.0, 0.0);
  auto model = query::BuildLoadModel(f.g);
  ASSERT_TRUE(model.ok());
  const Clustering c = SingletonClustering(*model);
  EXPECT_EQ(c.num_clusters(), 3u);
  EXPECT_TRUE(c.cluster_coeffs.AlmostEquals(model->op_coeffs()));
  const Placement cluster_plan(2, {0, 1, 0});
  const Placement expanded = c.ExpandPlacement(cluster_plan);
  EXPECT_EQ(expanded.assignment(), (std::vector<size_t>{0, 1, 0}));
}

TEST(ClusteringTest, ContractsHighRatioArc) {
  // comm(a->b) = 5 vs min cost 1 -> ratio 5; comm(b->c) = 0.1 vs min 2
  // -> ratio 0.05. Threshold 1: only a-b merges.
  ChainFixture f(5.0, 0.1);
  auto model = query::BuildLoadModel(f.g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  ClusteringOptions options;
  options.ratio_threshold = 1.0;
  options.max_cluster_weight = 1.0;  // no cap interference
  auto clustering = ClusterOperators(*model, f.g, system, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->num_clusters(), 2u);
  EXPECT_EQ(clustering->cluster_of[f.a], clustering->cluster_of[f.b]);
  EXPECT_NE(clustering->cluster_of[f.b], clustering->cluster_of[f.c]);
  // Cluster coefficients sum member rows: a (1) + b (2) = 3.
  const size_t ab = clustering->cluster_of[f.a];
  EXPECT_NEAR(clustering->cluster_coeffs(ab, 0), 3.0, 1e-12);
}

TEST(ClusteringTest, ZeroCommArcsNeverContract) {
  ChainFixture f(0.0, 0.0);
  auto model = query::BuildLoadModel(f.g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto clustering = ClusterOperators(*model, f.g, system, {});
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->num_clusters(), 3u);
}

TEST(ClusteringTest, WeightCapBlocksOversizedClusters) {
  // Both arcs hugely expensive, but the default cap (C_max/C_T = 1/2)
  // blocks merging the whole chain (total weight 7/7 = 1.0). With
  // l = 7, weights are a = 1/7, b = 2/7, c = 4/7: {a,b} may merge
  // (3/7 <= 1/2), but c cannot join them — and c alone already exceeds
  // the cap, which only ever constrains *merges*, never singletons.
  ChainFixture f(100.0, 100.0);
  auto model = query::BuildLoadModel(f.g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto clustering = ClusterOperators(*model, f.g, system, {});
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->num_clusters(), 2u);
  EXPECT_EQ(clustering->cluster_of[f.a], clustering->cluster_of[f.b]);
  EXPECT_NE(clustering->cluster_of[f.b], clustering->cluster_of[f.c]);
  const size_t ab = clustering->cluster_of[f.a];
  EXPECT_NEAR(clustering->ClusterWeight(ab, model->total_coeffs()),
              3.0 / 7.0, 1e-12);
}

TEST(ClusteringTest, MinWeightSchemeMergesLightestPairFirst) {
  // Star: in -> hub; hub feeds two consumers with equal comm ratios but
  // very different weights. With a cap that allows only one merge, the
  // min-weight scheme must pick the lighter consumer.
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto hub = *g.AddOperator({.name = "hub", .kind = OperatorKind::kMap,
                             .cost = 1.0},
                            {StreamRef::Input(in)});
  auto heavy = *g.AddOperator({.name = "heavy", .kind = OperatorKind::kMap,
                               .cost = 8.0},
                              {StreamRef::Op(hub)}, {10.0});
  auto light = *g.AddOperator({.name = "light", .kind = OperatorKind::kMap,
                               .cost = 1.0},
                              {StreamRef::Op(hub)}, {10.0});
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  ClusteringOptions options;
  options.scheme = ClusteringOptions::Scheme::kMinWeight;
  options.ratio_threshold = 1.0;
  // Total l = 10. hub+light weight = 2/10 = 0.2; hub+heavy = 0.9.
  options.max_cluster_weight = 0.5;
  auto clustering = ClusterOperators(*model, g, system, options);
  ASSERT_TRUE(clustering.ok());
  EXPECT_EQ(clustering->cluster_of[hub], clustering->cluster_of[light]);
  EXPECT_NE(clustering->cluster_of[hub], clustering->cluster_of[heavy]);
}

TEST(ClusterSweepTest, PicksCommAwareBestPlan) {
  // With heavy communication on every arc, the sweep must beat (or match)
  // plain unclustered ROD on the comm-aware plane-distance metric.
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("I0");
  const InputStreamId i1 = g.AddInputStream("I1");
  StreamRef prev0 = StreamRef::Input(i0);
  StreamRef prev1 = StreamRef::Input(i1);
  for (int j = 0; j < 6; ++j) {
    prev0 = StreamRef::Op(*g.AddOperator(
        {.name = "a" + std::to_string(j), .kind = OperatorKind::kMap,
         .cost = 1.0},
        {prev0}, {3.0}));
    prev1 = StreamRef::Op(*g.AddOperator(
        {.name = "b" + std::to_string(j), .kind = OperatorKind::kMap,
         .cost = 1.0},
        {prev1}, {3.0}));
  }
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);

  auto sweep = ClusteredRodPlace(*model, g, system);
  ASSERT_TRUE(sweep.ok());
  EXPECT_GT(sweep->plans_evaluated, 1u);

  // Compare against unclustered ROD under the same metric.
  auto plain = RodPlace(*model, system);
  ASSERT_TRUE(plain.ok());
  const Matrix plain_coeffs = NodeCoeffsWithComm(*plain, *model, g);
  auto plain_w = geom::ComputeWeightMatrix(plain_coeffs,
                                           model->total_coeffs(),
                                           system.capacities);
  ASSERT_TRUE(plain_w.ok());
  EXPECT_GE(sweep->plane_distance + 1e-12,
            geom::MinPlaneDistance(*plain_w));
}

TEST(ClusterSweepTest, NoCommMeansUnclusteredWins) {
  ChainFixture f(0.0, 0.0);
  auto model = query::BuildLoadModel(f.g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto sweep = ClusteredRodPlace(*model, f.g, system);
  ASSERT_TRUE(sweep.ok());
  // Every clustering collapses to singletons; the chosen clustering must
  // be singleton and the placement equal to plain ROD.
  EXPECT_EQ(sweep->clustering.num_clusters(), 3u);
  auto plain = RodPlace(*model, system);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(sweep->placement.assignment(), plain->assignment());
}

TEST(ClusteringTest, ValidatesOptions) {
  ChainFixture f(1.0, 1.0);
  auto model = query::BuildLoadModel(f.g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  ClusteringOptions options;
  options.ratio_threshold = 0.0;
  EXPECT_FALSE(ClusterOperators(*model, f.g, system, options).ok());
}

}  // namespace
}  // namespace rod::place
