// Tests for the runtime metrics collector.

#include "runtime/metrics.h"

#include <gtest/gtest.h>

namespace rod::sim {
namespace {

TEST(MetricsTest, CountsInputsAndOutputs) {
  MetricsCollector m(2, 1.0, 10.0);
  m.RecordInput();
  m.RecordInput();
  m.RecordOutput(3, 0.5);
  EXPECT_EQ(m.inputs(), 2u);
  EXPECT_EQ(m.outputs(), 1u);
  EXPECT_EQ(m.latencies(), (std::vector<double>{0.5}));
}

TEST(MetricsTest, RecordsOutputCompletionTimes) {
  MetricsCollector m(1, 1.0, 10.0);
  m.RecordOutput(0, 0.5, 2.0);
  m.RecordOutput(0, 0.7, 4.5);
  EXPECT_EQ(m.output_times(), (std::vector<double>{2.0, 4.5}));
  EXPECT_EQ(m.output_times().size(), m.latencies().size());
}

TEST(MetricsTest, WindowMaxBusyFraction) {
  MetricsCollector m(2, 1.0, 3.0);
  m.RecordService(0, 0.0, 0.25);
  m.RecordService(1, 0.0, 0.75);
  m.RecordService(1, 1.0, 1.1);
  EXPECT_NEAR(m.WindowMaxBusyFraction(0), 0.75, 1e-12);
  EXPECT_NEAR(m.WindowMaxBusyFraction(1), 0.1, 1e-12);
  EXPECT_NEAR(m.WindowMaxBusyFraction(2), 0.0, 1e-12);
}

TEST(MetricsTest, PerSinkLatencyBuckets) {
  MetricsCollector m(1, 1.0, 5.0);
  m.RecordOutput(1, 0.1);
  m.RecordOutput(2, 0.2);
  m.RecordOutput(1, 0.3);
  const auto summaries = m.SinkSummaries();
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].first, 1u);
  EXPECT_EQ(summaries[0].second.count, 2u);
  EXPECT_EQ(summaries[1].first, 2u);
  EXPECT_EQ(summaries[1].second.count, 1u);
  EXPECT_EQ(m.SinkSamples(1), (std::vector<double>{0.1, 0.3}));
  EXPECT_EQ(m.SinkSamples(2), (std::vector<double>{0.2}));
  EXPECT_TRUE(m.SinkSamples(7).empty());
}

TEST(MetricsTest, TotalLatencySummaryIsExactByDefault) {
  MetricsCollector m(1, 1.0, 5.0);
  for (double x : {0.4, 0.1, 0.3, 0.2}) m.RecordOutput(0, x);
  const LatencySummary s = m.TotalLatency();
  EXPECT_TRUE(s.exact);
  EXPECT_TRUE(m.exact());
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.mean, 0.25, 1e-12);
  EXPECT_NEAR(s.max, 0.4, 1e-12);
  EXPECT_NEAR(s.p50, 0.25, 1e-12);
}

TEST(MetricsTest, ReservoirModeKeepsExactMeanMaxAndCounts) {
  LatencyStatsOptions opts;
  opts.reservoir = 16;
  opts.seed = 42;
  MetricsCollector m(1, 1.0, 5.0, opts);
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>(i) * 1e-3;
    sum += x;
    m.RecordOutput(0, x);
  }
  EXPECT_FALSE(m.exact());
  const LatencySummary s = m.TotalLatency();
  EXPECT_FALSE(s.exact);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.mean, sum / 1000.0, 1e-12);       // streaming-exact
  EXPECT_NEAR(s.max, 0.999, 1e-12);               // streaming-exact
  EXPECT_EQ(m.SinkSamples(0).size(), 16u);        // fixed memory
  EXPECT_GT(s.p50, 0.0);                          // sampled estimate
  EXPECT_LT(s.p50, 0.999);
}

TEST(MetricsTest, ReservoirIsDeterministicGivenSeedAndOrder) {
  LatencyStatsOptions opts;
  opts.reservoir = 8;
  opts.seed = 7;
  MetricsCollector a(1, 1.0, 5.0, opts);
  MetricsCollector b(1, 1.0, 5.0, opts);
  for (int i = 0; i < 500; ++i) {
    const double x = static_cast<double>((i * 37) % 101);
    a.RecordOutput(0, x);
    b.RecordOutput(0, x);
  }
  EXPECT_EQ(a.SinkSamples(0), b.SinkSamples(0));
  const LatencySummary sa = a.TotalLatency();
  const LatencySummary sb = b.TotalLatency();
  EXPECT_EQ(sa.p50, sb.p50);
  EXPECT_EQ(sa.p95, sb.p95);
  EXPECT_EQ(sa.p99, sb.p99);
}

TEST(MetricsTest, ReservoirBelowCapacityMatchesExact) {
  LatencyStatsOptions opts;
  opts.reservoir = 64;
  MetricsCollector sampled(1, 1.0, 5.0, opts);
  MetricsCollector exact(1, 1.0, 5.0);
  for (int i = 0; i < 50; ++i) {
    const double x = static_cast<double>((i * 13) % 29);
    sampled.RecordOutput(0, x);
    exact.RecordOutput(0, x);
  }
  const LatencySummary s = sampled.TotalLatency();
  const LatencySummary e = exact.TotalLatency();
  EXPECT_TRUE(s.exact);  // stream never exceeded the reservoir
  EXPECT_EQ(s.p50, e.p50);
  EXPECT_EQ(s.p95, e.p95);
  EXPECT_EQ(s.p99, e.p99);
}

TEST(MetricsTest, ServiceSplitsAcrossWindows) {
  MetricsCollector m(1, 1.0, 4.0);
  // A service interval [0.5, 2.25) spans windows 0, 1, 2.
  m.RecordService(0, 0.5, 2.25);
  const Matrix& busy = m.window_busy();
  ASSERT_EQ(busy.rows(), 4u);
  EXPECT_NEAR(busy(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(busy(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(busy(2, 0), 0.25, 1e-12);
  EXPECT_NEAR(busy(3, 0), 0.0, 1e-12);
  EXPECT_NEAR(m.NodeUtilization(0, 4.0), 1.75 / 4.0, 1e-12);
}

TEST(MetricsTest, ServicePastHorizonIsClipped) {
  MetricsCollector m(1, 1.0, 2.0);
  m.RecordService(0, 1.5, 5.0);  // runs past the 2-window horizon
  EXPECT_NEAR(m.window_busy()(1, 0), 0.5, 1e-12);
  // Total busy time still counts the full interval.
  EXPECT_NEAR(m.NodeUtilization(0, 2.0), 3.5 / 2.0, 1e-12);
}

TEST(MetricsTest, OverloadedWindowsThreshold) {
  MetricsCollector m(2, 1.0, 3.0);
  m.RecordService(0, 0.0, 1.0);    // window 0: node 0 pegged
  m.RecordService(1, 1.0, 1.5);    // window 1: node 1 at 50%
  m.RecordService(0, 2.0, 2.995);  // window 2: node 0 at 99.5%
  EXPECT_EQ(m.OverloadedWindows(0.99), 2u);
  EXPECT_EQ(m.OverloadedWindows(0.999), 1u);
  EXPECT_EQ(m.OverloadedWindows(0.4), 3u);
  EXPECT_EQ(m.num_windows(), 3u);
}

TEST(MetricsTest, MultiNodeWindowsIndependent) {
  MetricsCollector m(3, 2.0, 4.0);
  m.RecordService(0, 0.0, 2.0);
  m.RecordService(2, 2.0, 4.0);
  EXPECT_NEAR(m.window_busy()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(m.window_busy()(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(m.window_busy()(1, 2), 2.0, 1e-12);
  // Node 1 never busy.
  EXPECT_NEAR(m.NodeUtilization(1, 4.0), 0.0, 1e-12);
}

TEST(MetricsTest, FractionalWindowCountRoundsUp) {
  MetricsCollector m(1, 1.0, 2.5);
  EXPECT_EQ(m.num_windows(), 3u);
}

}  // namespace
}  // namespace rod::sim
