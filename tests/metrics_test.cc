// Tests for the runtime metrics collector.

#include "runtime/metrics.h"

#include <gtest/gtest.h>

namespace rod::sim {
namespace {

TEST(MetricsTest, CountsInputsAndOutputs) {
  MetricsCollector m(2, 1.0, 10.0);
  m.RecordInput();
  m.RecordInput();
  m.RecordOutput(3, 0.5);
  EXPECT_EQ(m.inputs(), 2u);
  EXPECT_EQ(m.outputs(), 1u);
  EXPECT_EQ(m.latencies(), (std::vector<double>{0.5}));
}

TEST(MetricsTest, RecordsOutputCompletionTimes) {
  MetricsCollector m(1, 1.0, 10.0);
  m.RecordOutput(0, 0.5, 2.0);
  m.RecordOutput(0, 0.7, 4.5);
  EXPECT_EQ(m.output_times(), (std::vector<double>{2.0, 4.5}));
  EXPECT_EQ(m.output_times().size(), m.latencies().size());
}

TEST(MetricsTest, WindowMaxBusyFraction) {
  MetricsCollector m(2, 1.0, 3.0);
  m.RecordService(0, 0.0, 0.25);
  m.RecordService(1, 0.0, 0.75);
  m.RecordService(1, 1.0, 1.1);
  EXPECT_NEAR(m.WindowMaxBusyFraction(0), 0.75, 1e-12);
  EXPECT_NEAR(m.WindowMaxBusyFraction(1), 0.1, 1e-12);
  EXPECT_NEAR(m.WindowMaxBusyFraction(2), 0.0, 1e-12);
}

TEST(MetricsTest, PerSinkLatencyBuckets) {
  MetricsCollector m(1, 1.0, 5.0);
  m.RecordOutput(1, 0.1);
  m.RecordOutput(2, 0.2);
  m.RecordOutput(1, 0.3);
  ASSERT_EQ(m.sink_latencies().size(), 2u);
  EXPECT_EQ(m.sink_latencies().at(1), (std::vector<double>{0.1, 0.3}));
  EXPECT_EQ(m.sink_latencies().at(2), (std::vector<double>{0.2}));
}

TEST(MetricsTest, ServiceSplitsAcrossWindows) {
  MetricsCollector m(1, 1.0, 4.0);
  // A service interval [0.5, 2.25) spans windows 0, 1, 2.
  m.RecordService(0, 0.5, 2.25);
  const Matrix& busy = m.window_busy();
  ASSERT_EQ(busy.rows(), 4u);
  EXPECT_NEAR(busy(0, 0), 0.5, 1e-12);
  EXPECT_NEAR(busy(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(busy(2, 0), 0.25, 1e-12);
  EXPECT_NEAR(busy(3, 0), 0.0, 1e-12);
  EXPECT_NEAR(m.NodeUtilization(0, 4.0), 1.75 / 4.0, 1e-12);
}

TEST(MetricsTest, ServicePastHorizonIsClipped) {
  MetricsCollector m(1, 1.0, 2.0);
  m.RecordService(0, 1.5, 5.0);  // runs past the 2-window horizon
  EXPECT_NEAR(m.window_busy()(1, 0), 0.5, 1e-12);
  // Total busy time still counts the full interval.
  EXPECT_NEAR(m.NodeUtilization(0, 2.0), 3.5 / 2.0, 1e-12);
}

TEST(MetricsTest, OverloadedWindowsThreshold) {
  MetricsCollector m(2, 1.0, 3.0);
  m.RecordService(0, 0.0, 1.0);    // window 0: node 0 pegged
  m.RecordService(1, 1.0, 1.5);    // window 1: node 1 at 50%
  m.RecordService(0, 2.0, 2.995);  // window 2: node 0 at 99.5%
  EXPECT_EQ(m.OverloadedWindows(0.99), 2u);
  EXPECT_EQ(m.OverloadedWindows(0.999), 1u);
  EXPECT_EQ(m.OverloadedWindows(0.4), 3u);
  EXPECT_EQ(m.num_windows(), 3u);
}

TEST(MetricsTest, MultiNodeWindowsIndependent) {
  MetricsCollector m(3, 2.0, 4.0);
  m.RecordService(0, 0.0, 2.0);
  m.RecordService(2, 2.0, 4.0);
  EXPECT_NEAR(m.window_busy()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(m.window_busy()(0, 2), 0.0, 1e-12);
  EXPECT_NEAR(m.window_busy()(1, 2), 2.0, 1e-12);
  // Node 1 never busy.
  EXPECT_NEAR(m.NodeUtilization(1, 4.0), 0.0, 1e-12);
}

TEST(MetricsTest, FractionalWindowCountRoundsUp) {
  MetricsCollector m(1, 1.0, 2.5);
  EXPECT_EQ(m.num_windows(), 3u);
}

}  // namespace
}  // namespace rod::sim
