// Tests for the §6.2 linearization, pinned to the paper's Example 3:
// a graph where o1 has unstable selectivity (output rate becomes r3) and
// o5 is a windowed join (output rate becomes r4, load (c5/s5) r4).

#include "query/linearize.h"

#include <gtest/gtest.h>

#include "query/load_model.h"
#include "query/query_graph.h"

namespace rod::query {
namespace {

struct Example3 {
  QueryGraph g;
  OperatorId o1, o2, o3, o4, o5, o6;
};

/// Paper Figure 13: I1 -> o1 -> o2 feeding o5 (join) -> o6,
///                  I2 -> o3 -> o4 feeding o5's other side.
/// o1 has variable selectivity; o5 is a time-window join.
Example3 BuildExample3() {
  Example3 e;
  const InputStreamId i1 = e.g.AddInputStream("I1");
  const InputStreamId i2 = e.g.AddInputStream("I2");
  OperatorSpec o1{.name = "o1",
                  .kind = OperatorKind::kFilter,
                  .cost = 2.0,
                  .selectivity = 0.8,
                  .variable_selectivity = true};
  e.o1 = *e.g.AddOperator(o1, {StreamRef::Input(i1)});
  e.o2 = *e.g.AddOperator({.name = "o2",
                           .kind = OperatorKind::kMap,
                           .cost = 3.0,
                           .selectivity = 1.0},
                          {StreamRef::Op(e.o1)});
  e.o3 = *e.g.AddOperator({.name = "o3",
                           .kind = OperatorKind::kFilter,
                           .cost = 5.0,
                           .selectivity = 0.6},
                          {StreamRef::Input(i2)});
  e.o4 = *e.g.AddOperator({.name = "o4",
                           .kind = OperatorKind::kMap,
                           .cost = 1.0,
                           .selectivity = 1.0},
                          {StreamRef::Op(e.o3)});
  e.o5 = *e.g.AddOperator({.name = "o5",
                           .kind = OperatorKind::kJoin,
                           .cost = 0.5,
                           .selectivity = 0.25,
                           .window = 2.0},
                          {StreamRef::Op(e.o2), StreamRef::Op(e.o4)});
  e.o6 = *e.g.AddOperator({.name = "o6",
                           .kind = OperatorKind::kMap,
                           .cost = 7.0,
                           .selectivity = 1.0},
                          {StreamRef::Op(e.o5)});
  return e;
}

TEST(LinearizeTest, PlanAuxVariablesPicksExactlyTheNonlinearOps) {
  Example3 e = BuildExample3();
  const std::vector<OperatorId> aux = PlanAuxVariables(e.g);
  EXPECT_EQ(aux, (std::vector<OperatorId>{e.o1, e.o5}));
}

TEST(LinearizeTest, Example3VariableLayout) {
  Example3 e = BuildExample3();
  auto model = BuildLinearizedLoadModel(e.g);
  ASSERT_TRUE(model.ok());
  // Four variables: r1, r2, r3 = out(o1), r4 = out(o5).
  ASSERT_EQ(model->num_vars(), 4u);
  EXPECT_EQ(model->num_system_inputs(), 2u);
  EXPECT_TRUE(model->has_aux_vars());
  EXPECT_EQ(model->variables()[2].kind, VariableInfo::Kind::kAuxOutput);
  EXPECT_EQ(model->variables()[2].index, e.o1);
  EXPECT_EQ(model->variables()[3].index, e.o5);
}

TEST(LinearizeTest, Example3LoadCoefficients) {
  Example3 e = BuildExample3();
  auto model = BuildLinearizedLoadModel(e.g);
  ASSERT_TRUE(model.ok());
  const Matrix& lo = model->op_coeffs();
  // o1: load = c1 * r1 (its *load* stays linear; only its output is cut).
  EXPECT_NEAR(lo(e.o1, 0), 2.0, 1e-12);
  // o2: load = c2 * r3.
  EXPECT_NEAR(lo(e.o2, 2), 3.0, 1e-12);
  EXPECT_NEAR(lo(e.o2, 0), 0.0, 1e-12);
  // o3: load = c3 * r2; o4: load = c4 * s3 * r2.
  EXPECT_NEAR(lo(e.o3, 1), 5.0, 1e-12);
  EXPECT_NEAR(lo(e.o4, 1), 1.0 * 0.6, 1e-12);
  // o5 (join): load = (c5 / s5) * r4 = 2 * r4 (paper Example 3).
  EXPECT_NEAR(lo(e.o5, 3), 0.5 / 0.25, 1e-12);
  EXPECT_NEAR(lo(e.o5, 0), 0.0, 1e-12);
  // o6: load = c6 * r4.
  EXPECT_NEAR(lo(e.o6, 3), 7.0, 1e-12);
}

TEST(LinearizeTest, ExtendRatesComputesAuxValues) {
  Example3 e = BuildExample3();
  auto model = BuildLinearizedLoadModel(e.g);
  ASSERT_TRUE(model.ok());
  const Vector rates = {10.0, 4.0};
  const Vector x = model->ExtendRates(rates);
  ASSERT_EQ(x.size(), 4u);
  EXPECT_DOUBLE_EQ(x[0], 10.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  // r3 = nominal selectivity of o1 * r1.
  const double r3 = 0.8 * 10.0;
  EXPECT_NEAR(x[2], r3, 1e-12);
  // r4 = s5 * w * rate(o2 out) * rate(o4 out) = 0.25 * 2 * r3 * (0.6 * 4).
  EXPECT_NEAR(x[3], 0.25 * 2.0 * r3 * (0.6 * 4.0), 1e-12);
}

TEST(LinearizeTest, CoefficientLoadsMatchDirectLoadsAtExtendedPoint) {
  // The key §6.2 identity: L^o . ExtendRates(R) == OperatorLoadsAt(R).
  Example3 e = BuildExample3();
  auto model = BuildLinearizedLoadModel(e.g);
  ASSERT_TRUE(model.ok());
  for (double r1 : {0.0, 1.0, 5.0}) {
    for (double r2 : {0.0, 2.0, 9.0}) {
      const Vector rates = {r1, r2};
      const Vector direct = model->OperatorLoadsAt(rates);
      const Vector via = model->op_coeffs().MatVec(model->ExtendRates(rates));
      for (size_t j = 0; j < direct.size(); ++j) {
        EXPECT_NEAR(direct[j], via[j], 1e-9)
            << "op " << j << " at (" << r1 << "," << r2 << ")";
      }
    }
  }
}

TEST(LinearizeTest, JoinLoadIsQuadraticInPhysicalRates) {
  Example3 e = BuildExample3();
  auto model = BuildLinearizedLoadModel(e.g);
  ASSERT_TRUE(model.ok());
  const double l1 = model->OperatorLoadsAt(Vector{1.0, 1.0})[e.o5];
  const double l2 = model->OperatorLoadsAt(Vector{2.0, 2.0})[e.o5];
  EXPECT_NEAR(l2, 4.0 * l1, 1e-9);  // doubling both rates quadruples pairs
}

TEST(LinearizeTest, LinearGraphGetsNoAuxVariables) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  ASSERT_TRUE(g.AddOperator({.name = "f",
                             .kind = OperatorKind::kFilter,
                             .cost = 1.0,
                             .selectivity = 0.5},
                            {StreamRef::Input(in)})
                  .ok());
  EXPECT_TRUE(PlanAuxVariables(g).empty());
  auto model = BuildLinearizedLoadModel(g);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model->has_aux_vars());
}

}  // namespace
}  // namespace rod::query
