// Segmented trace store: on-disk format, writer/reader round trips,
// corruption rejection, the pin/unpin buffer-manager contract, and the
// replay bit-exactness gates — a run driven from a store file must equal
// a run driven from the same arrivals in memory bit for bit (Gate A, all
// configurations), and an in-memory replay of MaterializeArrivals must
// equal the generator-driven run (Gate B, configurations that do not
// re-time the generator's draws).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/chaos.h"
#include "runtime/engine.h"
#include "runtime/workload_driver.h"
#include "trace/store/format.h"
#include "trace/store/reader.h"
#include "trace/store/replay.h"
#include "trace/store/writer.h"

namespace rod::trace::store {
namespace {

using sim::EventQueueImpl;
using sim::FailureSchedule;
using sim::MaterializeArrivals;
using sim::SimulationOptions;
using sim::SimulationResult;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A store path that removes itself when the test ends.
class ScopedStore {
 public:
  explicit ScopedStore(const std::string& name) : path_(TempPath(name)) {}
  ~ScopedStore() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<double> Ramp(size_t n, double step = 0.25) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(static_cast<double>(i) * step);
  return out;
}

Status WriteRamp(const std::string& path, size_t n, uint32_t per_segment) {
  WriterOptions opts;
  opts.records_per_segment = per_segment;
  const std::vector<double> times = Ramp(n);
  return WriteTimestamps(times, /*stream=*/0, path, opts);
}

// ---------------------------------------------------------------------------
// Format layer.

TEST(TraceStoreFormatTest, Crc32MatchesKnownVector) {
  // The canonical IEEE-802.3 check value for "123456789".
  const char text[] = "123456789";
  const auto bytes = std::as_bytes(std::span(text, 9));
  EXPECT_EQ(Crc32(bytes), 0xCBF43926u);
  // Chaining: CRC(a+b) == CRC(b, seed=CRC(a)).
  EXPECT_EQ(Crc32(bytes.subspan(4), Crc32(bytes.first(4))), 0xCBF43926u);
}

TEST(TraceStoreFormatTest, FileHeaderRoundTrips) {
  StoreInfo info;
  info.records_per_segment = 1024;
  info.num_streams = 3;
  info.num_segments = 7;
  info.total_records = 6 * 1024 + 17;
  info.time_lo = 0.125;
  info.time_hi = 99.5;
  std::byte buf[kFileHeaderBytes];
  EncodeFileHeader(info, std::span<std::byte, kFileHeaderBytes>(buf));
  auto back = DecodeFileHeader(std::span<const std::byte>(buf));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->records_per_segment, info.records_per_segment);
  EXPECT_EQ(back->num_streams, info.num_streams);
  EXPECT_EQ(back->num_segments, info.num_segments);
  EXPECT_EQ(back->total_records, info.total_records);
  EXPECT_EQ(back->time_lo, info.time_lo);
  EXPECT_EQ(back->time_hi, info.time_hi);
  EXPECT_EQ(back->file_bytes(),
            kFileHeaderBytes + 7 * (kSegmentHeaderBytes + 1024 * 16));
}

TEST(TraceStoreFormatTest, CorruptHeadersAreRejected) {
  StoreInfo info;
  info.records_per_segment = 8;
  info.num_segments = 1;
  info.total_records = 5;
  info.num_streams = 1;
  std::byte buf[kFileHeaderBytes];
  EncodeFileHeader(info, std::span<std::byte, kFileHeaderBytes>(buf));

  {
    std::byte bad[kFileHeaderBytes];
    std::copy(std::begin(buf), std::end(buf), bad);
    bad[0] = std::byte{'X'};  // magic: "not a store file", not bit-rot
    EXPECT_EQ(DecodeFileHeader(std::span<const std::byte>(bad)).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::byte bad[kFileHeaderBytes];
    std::copy(std::begin(buf), std::end(buf), bad);
    bad[20] ^= std::byte{0x01};  // a manifest field; CRC must catch it
    EXPECT_EQ(DecodeFileHeader(std::span<const std::byte>(bad)).status().code(),
              StatusCode::kDataLoss);
  }
  // An empty trailing segment is inconsistent by construction.
  StoreInfo bad_counts = info;
  bad_counts.num_segments = 2;  // but total_records still fits in one
  std::byte buf2[kFileHeaderBytes];
  EncodeFileHeader(bad_counts, std::span<std::byte, kFileHeaderBytes>(buf2));
  EXPECT_FALSE(DecodeFileHeader(std::span<const std::byte>(buf2)).ok());
}

// ---------------------------------------------------------------------------
// Writer validation.

TEST(TraceStoreWriterTest, RejectsDisorderAndBadValues) {
  ScopedStore store("rod_store_writer_reject.rodtrc");
  auto writer = SegmentWriter::Open(store.path());
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer->Append({.time = 1.0}).ok());
  EXPECT_FALSE(writer->Append({.time = 0.5}).ok());  // time moved backwards
  EXPECT_FALSE(writer->Append({.time = -1.0}).ok());
  EXPECT_FALSE(
      writer->Append({.time = std::numeric_limits<double>::infinity()}).ok());
  EXPECT_TRUE(writer->Append({.time = 1.0}).ok());  // equal times are fine
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_FALSE(writer->Append({.time = 2.0}).ok());  // append after finish
}

TEST(TraceStoreWriterTest, AbandonedFileIsUnreadable) {
  ScopedStore store("rod_store_abandoned.rodtrc");
  {
    auto writer = SegmentWriter::Open(store.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append({.time = 1.0}).ok());
    // No Finish(): the manifest slot stays zeroed.
  }
  EXPECT_FALSE(SegmentReader::Open(store.path()).ok());
}

// ---------------------------------------------------------------------------
// Reader round trips and the buffer-manager contract.

TEST(TraceStoreReaderTest, RoundTripsAcrossSegmentBoundaries) {
  ScopedStore store("rod_store_roundtrip.rodtrc");
  // 23 records at 7 per segment: two full segments + a partial tail.
  ASSERT_TRUE(WriteRamp(store.path(), 23, 7).ok());
  for (const bool use_mmap : {true, false}) {
    SCOPED_TRACE(use_mmap ? "mmap" : "pread");
    ReaderOptions opts;
    opts.use_mmap = use_mmap;
    auto reader = SegmentReader::Open(store.path(), opts);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->info().total_records, 23u);
    EXPECT_EQ(reader->info().num_segments, 4u);
    EXPECT_EQ(reader->info().time_lo, 0.0);
    EXPECT_EQ(reader->info().time_hi, 22 * 0.25);
    size_t i = 0;
    for (uint64_t seg = 0; seg < reader->info().num_segments; ++seg) {
      auto span = reader->Pin(seg);
      ASSERT_TRUE(span.ok());
      EXPECT_EQ(span->size(), seg + 1 < reader->info().num_segments
                                  ? 7u
                                  : 23u - 7u * seg);
      for (const ArrivalRecord& r : *span) {
        EXPECT_EQ(r.time, static_cast<double>(i) * 0.25);
        EXPECT_EQ(r.stream, 0u);
        ++i;
      }
      reader->Unpin(seg);
    }
    EXPECT_EQ(i, 23u);
    EXPECT_TRUE(reader->VerifyAll().ok());
  }
}

TEST(TraceStoreReaderTest, ExactMultipleLeavesNoEmptyTailSegment) {
  ScopedStore store("rod_store_exact.rodtrc");
  ASSERT_TRUE(WriteRamp(store.path(), 14, 7).ok());
  auto reader = SegmentReader::Open(store.path());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->info().num_segments, 2u);
  EXPECT_EQ(reader->info().total_records, 14u);
}

TEST(TraceStoreReaderTest, EmptyStoreIsValid) {
  ScopedStore store("rod_store_empty.rodtrc");
  auto writer = SegmentWriter::Open(store.path());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish().ok());
  auto reader = SegmentReader::Open(store.path());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->info().num_segments, 0u);
  EXPECT_EQ(reader->info().total_records, 0u);
  EXPECT_TRUE(reader->VerifyAll().ok());
  BatchCursor cursor(&*reader);
  auto span = cursor.NextSpan();
  ASSERT_TRUE(span.ok());
  EXPECT_TRUE(span->empty());
}

TEST(TraceStoreReaderTest, TruncatedFileIsRejectedAtOpen) {
  ScopedStore store("rod_store_truncated.rodtrc");
  ASSERT_TRUE(WriteRamp(store.path(), 23, 7).ok());
  std::filesystem::resize_file(
      store.path(), std::filesystem::file_size(store.path()) - 16);
  auto reader = SegmentReader::Open(store.path());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(TraceStoreReaderTest, PayloadCorruptionFailsTheSegmentPin) {
  ScopedStore store("rod_store_bitrot.rodtrc");
  ASSERT_TRUE(WriteRamp(store.path(), 23, 7).ok());
  {
    // Flip one payload byte in segment 1 (skip its header).
    std::fstream f(store.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    StoreInfo info;
    info.records_per_segment = 7;
    const auto offset = static_cast<std::streamoff>(
        info.segment_offset(1) + kSegmentHeaderBytes + 3);
    f.seekg(offset);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(offset);
    f.write(&byte, 1);
    ASSERT_TRUE(f.good());
  }
  auto reader = SegmentReader::Open(store.path());
  ASSERT_TRUE(reader.ok());  // manifest itself is intact
  EXPECT_TRUE(reader->Pin(0).ok());
  reader->Unpin(0);
  EXPECT_EQ(reader->Pin(1).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(reader->VerifyAll().code(), StatusCode::kDataLoss);
  // With verification off the corrupt bytes are served as-is (trusted
  // benchmark mode) — the pin itself succeeds.
  ReaderOptions trusting;
  trusting.verify_checksums = false;
  auto blind = SegmentReader::Open(store.path(), trusting);
  ASSERT_TRUE(blind.ok());
  EXPECT_TRUE(blind->Pin(1).ok());
  blind->Unpin(1);
}

TEST(TraceStoreReaderTest, BudgetExhaustionFailsPinAndLruEvicts) {
  ScopedStore store("rod_store_budget.rodtrc");
  ASSERT_TRUE(WriteRamp(store.path(), 28, 7).ok());  // 4 segments
  ReaderOptions opts;
  opts.resident_segments = 2;
  auto reader = SegmentReader::Open(store.path(), opts);
  ASSERT_TRUE(reader.ok());

  ASSERT_TRUE(reader->Pin(0).ok());
  ASSERT_TRUE(reader->Pin(1).ok());
  // Both frames pinned: a third distinct segment must fail, not grow.
  EXPECT_EQ(reader->Pin(2).status().code(), StatusCode::kFailedPrecondition);
  // Re-pinning a resident segment is a cache hit, not a new frame.
  EXPECT_TRUE(reader->Pin(0).ok());
  reader->Unpin(0);
  reader->Unpin(0);
  // With segment 0 unpinned the LRU frame can be recycled.
  EXPECT_TRUE(reader->Pin(2).ok());
  reader->Unpin(1);
  reader->Unpin(2);
  EXPECT_GE(reader->stats().evictions, 1u);
  EXPECT_GE(reader->stats().cache_hits, 1u);
  EXPECT_LE(reader->resident_segments(), 2u);
}

TEST(TraceStoreReaderTest, MmapAndPreadServeIdenticalBytes) {
  ScopedStore store("rod_store_paths.rodtrc");
  ASSERT_TRUE(WriteRamp(store.path(), 100, 16).ok());
  ReaderOptions mopts, popts;
  mopts.use_mmap = true;
  popts.use_mmap = false;
  auto ma = SegmentReader::Open(store.path(), mopts);
  auto pa = SegmentReader::Open(store.path(), popts);
  ASSERT_TRUE(ma.ok() && pa.ok());
  EXPECT_TRUE(ma->using_mmap());
  EXPECT_FALSE(pa->using_mmap());
  for (uint64_t seg = 0; seg < ma->info().num_segments; ++seg) {
    auto a = ma->Pin(seg);
    auto b = pa->Pin(seg);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_TRUE((*a)[i] == (*b)[i]);
    }
    ma->Unpin(seg);
    pa->Unpin(seg);
  }
}

TEST(TraceStoreReaderTest, BatchCursorWalksAndRewinds) {
  ScopedStore store("rod_store_cursor.rodtrc");
  ASSERT_TRUE(WriteRamp(store.path(), 23, 7).ok());
  ReaderOptions opts;
  opts.resident_segments = 1;  // the cursor holds at most one pin
  auto reader = SegmentReader::Open(store.path(), opts);
  ASSERT_TRUE(reader.ok());
  BatchCursor cursor(&*reader);
  size_t i = 0;
  for (;;) {
    auto span = cursor.NextSpan();
    ASSERT_TRUE(span.ok());
    if (span->empty()) break;
    // Consume in odd-sized chunks so spans split mid-segment too.
    const size_t take = std::min<size_t>(span->size(), 3);
    for (size_t j = 0; j < take; ++j) {
      EXPECT_EQ((*span)[j].time, static_cast<double>(i + j) * 0.25);
    }
    cursor.Advance(take);
    i += take;
  }
  EXPECT_EQ(i, 23u);
  EXPECT_TRUE(cursor.done());
  cursor.Rewind();
  auto again = cursor.NextSpan();
  ASSERT_TRUE(again.ok());
  ASSERT_FALSE(again->empty());
  EXPECT_EQ((*again)[0].time, 0.0);
}

// ---------------------------------------------------------------------------
// Replay bit-exactness gates.

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

trace::RateTrace ConstantTrace(double rate, double duration) {
  trace::RateTrace t;
  t.window_sec = duration;
  t.rates = {rate};
  return t;
}

/// Fan-out across a network hop (the engine_batch_test scenario): one
/// source on node 0 feeding three consumers on node 1.
struct FanOutScenario {
  QueryGraph graph;
  SystemSpec system = SystemSpec::Homogeneous(2);
  Placement plan{2, {0, 1, 1, 1}};

  explicit FanOutScenario(double src_cost = 2e-4, double leaf_cost = 4e-4) {
    const InputStreamId in = graph.AddInputStream("I");
    auto src = graph.AddOperator({.name = "src", .kind = OperatorKind::kMap,
                                  .cost = src_cost, .selectivity = 1.0},
                                 {StreamRef::Input(in)});
    EXPECT_TRUE(src.ok());
    for (const char* name : {"a", "b", "c"}) {
      EXPECT_TRUE(graph
                      .AddOperator({.name = name, .kind = OperatorKind::kMap,
                                    .cost = leaf_cost, .selectivity = 0.9},
                                   {StreamRef::Op(*src)})
                      .ok());
    }
  }
};

void ExpectBitExact(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.input_tuples, b.input_tuples);
  EXPECT_EQ(a.shed_tuples, b.shed_tuples);
  EXPECT_EQ(a.output_tuples, b.output_tuples);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.processed_events, b.processed_events);
  EXPECT_EQ(a.final_backlog, b.final_backlog);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.overloaded_windows, b.overloaded_windows);
  EXPECT_EQ(a.max_node_utilization, b.max_node_utilization);
  ASSERT_EQ(a.node_utilization.size(), b.node_utilization.size());
  for (size_t i = 0; i < a.node_utilization.size(); ++i) {
    EXPECT_EQ(a.node_utilization[i], b.node_utilization[i]) << "node " << i;
  }
  ASSERT_EQ(a.op_stats.size(), b.op_stats.size());
  for (size_t i = 0; i < a.op_stats.size(); ++i) {
    EXPECT_EQ(a.op_stats[i].tuples_processed, b.op_stats[i].tuples_processed);
    EXPECT_EQ(a.op_stats[i].tuples_emitted, b.op_stats[i].tuples_emitted);
    EXPECT_EQ(a.op_stats[i].cpu_seconds, b.op_stats[i].cpu_seconds);
  }
  EXPECT_EQ(a.overload.total_shed(), b.overload.total_shed());
  EXPECT_EQ(a.overload.backpressure_deferred, b.overload.backpressure_deferred);
  EXPECT_EQ(a.overload.source_stalls, b.overload.source_stalls);
  EXPECT_EQ(a.overload.source_stall_seconds, b.overload.source_stall_seconds);
}

SimulationResult RunReplay(const FanOutScenario& s,
                           const SimulationOptions& base, double rate,
                           ReplaySet* replay) {
  SimulationOptions options = base;
  options.replay = replay;
  auto r = sim::SimulatePlacement(s.graph, s.plan, s.system,
                                  {ConstantTrace(rate, base.duration)},
                                  options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : SimulationResult{};
}

/// Gate A: a store-backed replay equals an in-memory replay of the same
/// arrivals, in every configuration (the feeds are interchangeable by
/// construction — this catches any divergence in the store read path).
TEST(TraceStoreReplayTest, GateA_StoreEqualsInMemoryReplay) {
  const FanOutScenario s;
  SimulationOptions base;
  base.duration = 20.0;
  const auto arrivals =
      MaterializeArrivals({ConstantTrace(400.0, base.duration)},
                          base.poisson_arrivals, base.seed, base.duration);
  ASSERT_EQ(arrivals.size(), 1u);
  ASSERT_GT(arrivals[0].size(), 1000u);

  ScopedStore store("rod_store_gate_a.rodtrc");
  WriterOptions wopts;
  wopts.records_per_segment = 512;  // force many segment crossings
  ASSERT_TRUE(WriteTimestamps(arrivals[0], 0, store.path(), wopts).ok());

  for (EventQueueImpl impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      SCOPED_TRACE("impl " + std::to_string(static_cast<int>(impl)) +
                   " batch " + std::to_string(batch));
      SimulationOptions options = base;
      options.event_queue = impl;
      options.batch_size = batch;

      ReplaySet vec = ReplaySet::FromVectors({arrivals[0]});
      const SimulationResult from_memory = RunReplay(s, options, 400.0, &vec);

      for (const bool use_mmap : {true, false}) {
        ReaderOptions ropts;
        ropts.use_mmap = use_mmap;
        ropts.resident_segments = 2;
        auto from_store = ReplaySet::OpenStores({store.path()}, ropts);
        ASSERT_TRUE(from_store.ok());
        ExpectBitExact(from_memory,
                       RunReplay(s, options, 400.0, &*from_store));
      }
    }
  }
}

/// Gate A under live overload machinery (backpressure stalls re-time
/// *generator* draws, but replay feeds are position-based, so store and
/// in-memory replay must still match exactly).
TEST(TraceStoreReplayTest, GateA_HoldsUnderBackpressureAndShedding) {
  const FanOutScenario s(/*src_cost=*/1e-4, /*leaf_cost=*/1.2e-3);
  SimulationOptions base;
  base.duration = 20.0;
  base.queue_bound.capacity = 256;
  base.backpressure.enabled = true;
  base.backpressure.high_water = 96;
  base.shed_queue_threshold = 192;
  const auto arrivals =
      MaterializeArrivals({ConstantTrace(1200.0, base.duration)},
                          base.poisson_arrivals, base.seed, base.duration);
  ScopedStore store("rod_store_gate_a_overload.rodtrc");
  WriterOptions wopts;
  wopts.records_per_segment = 1024;
  ASSERT_TRUE(WriteTimestamps(arrivals[0], 0, store.path(), wopts).ok());

  ReplaySet vec = ReplaySet::FromVectors({arrivals[0]});
  const SimulationResult from_memory = RunReplay(s, base, 1200.0, &vec);
  EXPECT_GT(from_memory.overload.total_shed() +
                from_memory.overload.backpressure_deferred,
            0u)
      << "scenario failed to engage the degradation machinery";

  auto from_store = ReplaySet::OpenStores({store.path()});
  ASSERT_TRUE(from_store.ok());
  ExpectBitExact(from_memory, RunReplay(s, base, 1200.0, &*from_store));
}

/// Gate B: replaying MaterializeArrivals reproduces the generator-driven
/// run exactly when nothing re-times the generator (no stalls/spikes) —
/// the bridge that lets recorded stores stand in for the synthetic
/// driver.
TEST(TraceStoreReplayTest, GateB_ReplayEqualsGeneratorRun) {
  const FanOutScenario s;
  for (EventQueueImpl impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
      SCOPED_TRACE("impl " + std::to_string(static_cast<int>(impl)) +
                   " batch " + std::to_string(batch));
      SimulationOptions options;
      options.duration = 20.0;
      options.event_queue = impl;
      options.batch_size = batch;

      auto generated = sim::SimulatePlacement(
          s.graph, s.plan, s.system, {ConstantTrace(400.0, options.duration)},
          options);
      ASSERT_TRUE(generated.ok());

      const auto arrivals = MaterializeArrivals(
          {ConstantTrace(400.0, options.duration)}, options.poisson_arrivals,
          options.seed, options.duration);
      ReplaySet vec = ReplaySet::FromVectors(arrivals);
      ExpectBitExact(*generated, RunReplay(s, options, 400.0, &vec));
    }
  }
}

TEST(TraceStoreReplayTest, RejectsStreamCountMismatch) {
  const FanOutScenario s;
  SimulationOptions options;
  options.duration = 1.0;
  ReplaySet vec = ReplaySet::FromVectors({{0.1}, {0.2}});  // two feeds
  options.replay = &vec;
  auto r = sim::SimulatePlacement(s.graph, s.plan, s.system,
                                  {ConstantTrace(10.0, 1.0)}, options);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceStoreReplayTest, RejectsLoadSpikeFaults) {
  const FanOutScenario s;
  FailureSchedule spikes;
  spikes.LoadSpikeAt(0.5, /*stream=*/0, /*factor=*/3.0);
  SimulationOptions options;
  options.duration = 1.0;
  options.failures = &spikes;
  ReplaySet vec = ReplaySet::FromVectors({{0.1, 0.2}});
  options.replay = &vec;
  auto r = sim::SimulatePlacement(s.graph, s.plan, s.system,
                                  {ConstantTrace(10.0, 1.0)}, options);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // The same schedule without replay is accepted.
  options.replay = nullptr;
  EXPECT_TRUE(sim::SimulatePlacement(s.graph, s.plan, s.system,
                                     {ConstantTrace(10.0, 1.0)}, options)
                  .ok());
}

TEST(TraceStoreReplayTest, ReplaySetRewindDrivesASecondIdenticalRun) {
  const FanOutScenario s;
  SimulationOptions options;
  options.duration = 10.0;
  const auto arrivals =
      MaterializeArrivals({ConstantTrace(300.0, options.duration)},
                          options.poisson_arrivals, options.seed,
                          options.duration);
  ScopedStore store("rod_store_rewind.rodtrc");
  WriterOptions wopts;
  wopts.records_per_segment = 256;
  ASSERT_TRUE(WriteTimestamps(arrivals[0], 0, store.path(), wopts).ok());
  auto replay = ReplaySet::OpenStores({store.path()});
  ASSERT_TRUE(replay.ok());
  const SimulationResult first = RunReplay(s, options, 300.0, &*replay);
  replay->Rewind();
  ExpectBitExact(first, RunReplay(s, options, 300.0, &*replay));
}

}  // namespace
}  // namespace rod::trace::store
