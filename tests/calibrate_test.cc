// Tests for statistics-driven calibration (§7.1 measurement workflow).

#include "runtime/calibrate.h"

#include <gtest/gtest.h>

#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::sim {
namespace {

using place::SystemSpec;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

TEST(CalibrateTest, RecoversCostsAndSelectivities) {
  QueryGraph g;
  const auto in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kFilter,
                          .cost = 2e-3, .selectivity = 0.4},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                          .cost = 5e-4, .selectivity = 1.0},
                         {StreamRef::Op(*a)});
  ASSERT_TRUE(b.ok());

  const SystemSpec system = SystemSpec::Homogeneous(1);
  auto calibrated = CalibrateWithTrialRun(g, system, Vector{100.0},
                                          /*duration=*/60.0);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status().ToString();
  EXPECT_NEAR(calibrated->spec(*a).cost, 2e-3, 2e-4);
  EXPECT_NEAR(calibrated->spec(*a).selectivity, 0.4, 0.05);
  EXPECT_NEAR(calibrated->spec(*b).cost, 5e-4, 5e-5);
  EXPECT_NEAR(calibrated->spec(*b).selectivity, 1.0, 0.01);
  // Structure preserved.
  EXPECT_EQ(calibrated->num_operators(), g.num_operators());
  EXPECT_EQ(calibrated->inputs_of(*b)[0].from, StreamRef::Op(*a));
}

TEST(CalibrateTest, RecoversJoinParameters) {
  QueryGraph g;
  const auto l = g.AddInputStream("L");
  const auto r = g.AddInputStream("R");
  auto j = g.AddOperator({.name = "j", .kind = OperatorKind::kJoin,
                          .cost = 2e-5, .selectivity = 0.3, .window = 0.4},
                         {StreamRef::Input(l), StreamRef::Input(r)});
  ASSERT_TRUE(j.ok());
  const SystemSpec system = SystemSpec::Homogeneous(1);
  auto calibrated =
      CalibrateWithTrialRun(g, system, Vector{60.0, 60.0}, 60.0);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status().ToString();
  EXPECT_NEAR(calibrated->spec(*j).cost, 2e-5, 4e-6);          // per pair
  EXPECT_NEAR(calibrated->spec(*j).selectivity, 0.3, 0.05);    // per pair
  EXPECT_DOUBLE_EQ(calibrated->spec(*j).window, 0.4);          // declared
}

TEST(CalibrateTest, CalibratedModelMatchesTrueModel) {
  query::GraphGenOptions gen;
  gen.num_input_streams = 3;
  gen.ops_per_tree = 6;
  gen.min_cost = 0.5e-3;
  gen.max_cost = 2e-3;
  Rng rng(9);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  const SystemSpec system = SystemSpec::Homogeneous(2);

  Vector rates(3, 80.0);
  auto calibrated = CalibrateWithTrialRun(g, system, rates, 120.0);
  ASSERT_TRUE(calibrated.ok()) << calibrated.status().ToString();

  auto true_model = query::BuildLoadModel(g);
  auto est_model = query::BuildLoadModel(*calibrated);
  ASSERT_TRUE(true_model.ok() && est_model.ok());
  // Total per-stream load coefficients within 15%.
  for (size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(est_model->total_coeffs()[k], true_model->total_coeffs()[k],
                0.15 * true_model->total_coeffs()[k])
        << "stream " << k;
  }
  // And the placement driven by measurements performs nearly as well as
  // the one driven by ground truth, judged under the *true* model.
  auto plan_true = place::RodPlace(*true_model, system);
  auto plan_est = place::RodPlace(*est_model, system);
  ASSERT_TRUE(plan_true.ok() && plan_est.ok());
  const place::PlacementEvaluator eval(*true_model, system);
  geom::VolumeOptions vol;
  vol.num_samples = 8192;
  const double r_true = *eval.RatioToIdeal(*plan_true, vol);
  const double r_est = *eval.RatioToIdeal(*plan_est, vol);
  EXPECT_GT(r_est, 0.85 * r_true);
}

TEST(CalibrateTest, LowSampleOperatorsKeepDeclaredSpecs) {
  QueryGraph g;
  const auto in = g.AddInputStream("I");
  // Selectivity 0 starves the downstream operator of samples.
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kFilter,
                          .cost = 1e-3, .selectivity = 0.0},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                          .cost = 7e-3, .selectivity = 1.0},
                         {StreamRef::Op(*a)});
  ASSERT_TRUE(b.ok());
  const SystemSpec system = SystemSpec::Homogeneous(1);
  auto calibrated = CalibrateWithTrialRun(g, system, Vector{50.0}, 30.0);
  ASSERT_TRUE(calibrated.ok());
  EXPECT_DOUBLE_EQ(calibrated->spec(*b).cost, 7e-3);  // declared, untouched
}

TEST(CalibrateTest, ValidatesStatsShape) {
  QueryGraph g;
  const auto in = g.AddInputStream("I");
  ASSERT_TRUE(g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                             .cost = 1e-3},
                            {StreamRef::Input(in)})
                  .ok());
  SimulationResult bogus;  // empty op_stats
  EXPECT_FALSE(CalibrateFromRun(g, bogus).ok());
}

TEST(CalibrateTest, ValidatesRates) {
  QueryGraph g;
  const auto in = g.AddInputStream("I");
  ASSERT_TRUE(g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                             .cost = 1e-3},
                            {StreamRef::Input(in)})
                  .ok());
  const SystemSpec system = SystemSpec::Homogeneous(1);
  EXPECT_FALSE(CalibrateWithTrialRun(g, system, Vector{1.0, 2.0}).ok());
}

}  // namespace
}  // namespace rod::sim
