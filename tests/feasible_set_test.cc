// Tests for feasible-set membership and QMC volume estimation, including
// cross-checks against the exact 2-D polygon areas.

#include "geometry/feasible_set.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/polygon2d.h"
#include "geometry/sample_cache.h"

namespace rod::geom {
namespace {

TEST(FeasibleSetTest, ContainsRespectsAllNodes) {
  const FeasibleSet fs(Matrix::FromRows({{2.0, 0.0}, {0.0, 2.0}}));
  EXPECT_TRUE(fs.Contains(Vector{0.4, 0.4}));
  EXPECT_TRUE(fs.Contains(Vector{0.5, 0.5}));   // exactly on both planes
  EXPECT_FALSE(fs.Contains(Vector{0.6, 0.1}));  // node 0 overloaded
  EXPECT_FALSE(fs.Contains(Vector{0.1, 0.6}));  // node 1 overloaded
  EXPECT_TRUE(fs.Contains(Vector{0.0, 0.0}));
}

TEST(FeasibleSetTest, IdealWeightsGiveRatioOne) {
  const FeasibleSet fs(Matrix::FromRows({{1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}}));
  EXPECT_NEAR(fs.RatioToIdeal(), 1.0, 1e-12);
}

TEST(FeasibleSetTest, QmcMatchesExact2D) {
  // Several 2-D weight matrices: Halton estimate vs exact polygon area.
  const std::vector<Matrix> cases = {
      Matrix::FromRows({{2.0, 0.0}, {0.0, 2.0}}),
      Matrix::FromRows({{1.5, 0.5}, {0.5, 1.5}}),
      Matrix::FromRows({{2.0, 2.0}, {0.0, 0.0}}),
      Matrix::FromRows({{1.2, 0.3}, {0.8, 1.7}, {0.1, 1.1}}),
  };
  VolumeOptions options;
  options.num_samples = 65536;
  for (const Matrix& w : cases) {
    const double exact = *ExactRatioToIdeal2D(w);
    const double qmc = FeasibleSet(w).RatioToIdeal(options);
    EXPECT_NEAR(qmc, exact, 0.01) << w.ToString();
  }
}

TEST(FeasibleSetTest, PseudoRandomMatchesExact2D) {
  const Matrix w = Matrix::FromRows({{1.5, 0.5}, {0.5, 1.5}});
  VolumeOptions options;
  options.num_samples = 200000;
  options.use_pseudo_random = true;
  EXPECT_NEAR(FeasibleSet(w).RatioToIdeal(options), 2.0 / 3.0, 0.01);
}

TEST(FeasibleSetTest, ScaledIdealHasRatioScaleToTheD) {
  // Uniform weights 1/s shrink the feasible simplex by s per axis:
  // ratio = s^d (s <= 1).
  for (size_t d : {2u, 3u, 5u}) {
    const double s = 0.7;
    Matrix w(1, d, 1.0 / s);
    VolumeOptions options;
    options.num_samples = 1u << 16;
    const double ratio = FeasibleSet(w).RatioToIdeal(options);
    EXPECT_NEAR(ratio, std::pow(s, static_cast<double>(d)), 0.02) << d;
  }
}

TEST(FeasibleSetTest, NormalizedVolumeIncludesFactorial) {
  const FeasibleSet fs(Matrix::FromRows({{1.0, 1.0}}));
  EXPECT_NEAR(fs.NormalizedVolume(), 0.5, 1e-9);  // full simplex, d = 2
}

TEST(FeasibleSetTest, MonotoneInWeights) {
  // Increasing any weight can only shrink the feasible set.
  VolumeOptions options;
  options.num_samples = 1u << 15;
  const double big =
      FeasibleSet(Matrix::FromRows({{1.1, 0.9}, {0.9, 1.1}})).RatioToIdeal(options);
  const double small =
      FeasibleSet(Matrix::FromRows({{1.6, 0.9}, {0.9, 1.1}})).RatioToIdeal(options);
  EXPECT_GT(big, small);
}

TEST(FeasibleSetTest, HighDimensionFallsBackToPseudoRandom) {
  // d = 16 exceeds max_halton_dims: must still produce a sane estimate.
  Matrix w(1, 16, 1.0);
  VolumeOptions options;
  options.num_samples = 1u << 14;
  EXPECT_NEAR(FeasibleSet(w).RatioToIdeal(options), 1.0, 1e-12);
}

TEST(LowerBoundRatioTest, FullRegionWhenIdeal) {
  const FeasibleSet fs(Matrix::FromRows({{1.0, 1.0}}));
  auto r = fs.RatioToIdealAbove(Vector{0.2, 0.1});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 1.0, 1e-12);
}

TEST(LowerBoundRatioTest, EmptyAboveIdealPlane) {
  const FeasibleSet fs(Matrix::FromRows({{1.0, 1.0}}));
  auto r = fs.RatioToIdealAbove(Vector{0.7, 0.5});  // sum >= 1
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 0.0);
}

TEST(LowerBoundRatioTest, MatchesExactForAxisAlignedCase) {
  // W = [[2,0],[0,2]], lower bound b = (0.25, 0). Region above b within
  // the ideal triangle: triangle with vertices (0.25,0),(1,0),(0.25,0.75),
  // area = 0.75^2/2. Feasible part: 0.25<=x<=0.5, 0<=y<=0.5 -> 0.125.
  // Ratio = 0.125 / 0.28125 = 4/9.
  const FeasibleSet fs(Matrix::FromRows({{2.0, 0.0}, {0.0, 2.0}}));
  VolumeOptions options;
  options.num_samples = 1u << 17;
  auto r = fs.RatioToIdealAbove(Vector{0.25, 0.0}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 4.0 / 9.0, 0.01);
}

TEST(LowerBoundRatioTest, RejectsBadBounds) {
  const FeasibleSet fs(Matrix::FromRows({{1.0, 1.0}}));
  EXPECT_FALSE(fs.RatioToIdealAbove(Vector{0.1}).ok());          // wrong size
  EXPECT_FALSE(fs.RatioToIdealAbove(Vector{-0.1, 0.0}).ok());    // negative
}

TEST(FeasibleSetTest, DeterministicAcrossCalls) {
  const FeasibleSet fs(Matrix::FromRows({{1.3, 0.8}, {0.6, 1.4}}));
  EXPECT_DOUBLE_EQ(fs.RatioToIdeal(), fs.RatioToIdeal());
}

TEST(RandomizedQmcTest, ErrorBandCoversExactValue) {
  const Matrix w = Matrix::FromRows({{1.5, 0.5}, {0.5, 1.5}});
  const double exact = *ExactRatioToIdeal2D(w);  // 2/3
  VolumeOptions options;
  options.num_samples = 8192;
  const auto est = FeasibleSet(w).RatioToIdealWithError(8, options);
  EXPECT_EQ(est.replications, 8u);
  EXPECT_GT(est.std_error, 0.0);
  EXPECT_NEAR(est.mean, exact, 6.0 * est.std_error + 1e-6);
  EXPECT_LT(est.std_error, 0.01);  // RQMC at 8k points is tight in 2-D
}

TEST(RandomizedQmcTest, ErrorShrinksWithSampleCount) {
  const Matrix w = Matrix::FromRows({{1.2, 0.9, 0.4}, {0.5, 1.1, 1.3}});
  VolumeOptions small;
  small.num_samples = 512;
  VolumeOptions large;
  large.num_samples = 16384;
  const auto coarse = FeasibleSet(w).RatioToIdealWithError(8, small);
  const auto fine = FeasibleSet(w).RatioToIdealWithError(8, large);
  EXPECT_LT(fine.std_error, coarse.std_error);
  // Both agree within their joint uncertainty.
  EXPECT_NEAR(coarse.mean, fine.mean,
              6.0 * (coarse.std_error + fine.std_error) + 1e-6);
}

TEST(RandomizedQmcTest, IdealSetHasZeroError) {
  const FeasibleSet fs(Matrix::FromRows({{1.0, 1.0}}));
  const auto est = fs.RatioToIdealWithError(4);
  EXPECT_DOUBLE_EQ(est.mean, 1.0);
  EXPECT_DOUBLE_EQ(est.std_error, 0.0);
}

TEST(RandomizedQmcTest, HonorsForcedPseudoRandom) {
  // The forced-pseudo-random replications must reproduce, bit for bit,
  // the per-replication reseeding contract: replication r is a plain
  // RatioToIdeal with seed `seed ^ (0x9e3779b97f4a7c15 * (r + 1))`.
  const Matrix w = Matrix::FromRows({{1.5, 0.5}, {0.5, 1.5}});
  VolumeOptions options;
  options.num_samples = 4096;
  options.use_pseudo_random = true;
  const size_t reps = 4;
  const auto est = FeasibleSet(w).RatioToIdealWithError(reps, options);
  double sum = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    VolumeOptions rep = options;
    rep.seed = options.seed ^ (0x9e3779b97f4a7c15ULL * (r + 1));
    sum += FeasibleSet(w).RatioToIdeal(rep);
  }
  EXPECT_DOUBLE_EQ(est.mean, sum / static_cast<double>(reps));
  EXPECT_NEAR(est.mean, 2.0 / 3.0, 0.05);
  EXPECT_GT(est.std_error, 0.0);  // Halton rotations would differ; pseudo
                                  // replications genuinely vary
}

TEST(RandomizedQmcTest, HighDimensionFallsBackToPseudoRandom) {
  // d = 16 exceeds max_halton_dims: each replication must be a reseeded
  // pseudo-random estimate (same contract as above), not a Halton
  // rotation.
  Matrix w(1, 16, 1.0 / 0.95);  // ratio = 0.95^16, non-trivial
  VolumeOptions options;
  options.num_samples = 4096;
  const size_t reps = 3;
  const auto est = FeasibleSet(w).RatioToIdealWithError(reps, options);
  double sum = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    VolumeOptions rep = options;
    rep.seed = options.seed ^ (0x9e3779b97f4a7c15ULL * (r + 1));
    sum += FeasibleSet(w).RatioToIdeal(rep);
  }
  EXPECT_DOUBLE_EQ(est.mean, sum / static_cast<double>(reps));
  EXPECT_NEAR(est.mean, std::pow(0.95, 16.0), 0.05);
}

TEST(ParallelVolumeTest, RatioBitExactAcrossThreadCounts) {
  const Matrix w = Matrix::FromRows({{1.3, 0.8, 0.4, 0.9, 0.2, 0.6},
                                     {0.6, 1.4, 0.7, 0.3, 0.8, 0.5},
                                     {0.9, 0.5, 1.2, 0.6, 0.4, 1.1}});
  const FeasibleSet fs(w);
  VolumeOptions options;
  options.num_samples = 1u << 14;
  options.num_threads = 1;
  const double sequential = fs.RatioToIdeal(options);
  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    EXPECT_EQ(fs.RatioToIdeal(options), sequential) << threads;
  }
}

TEST(ParallelVolumeTest, WithErrorBitExactAcrossThreadCounts) {
  const Matrix w = Matrix::FromRows({{1.2, 0.9, 0.4}, {0.5, 1.1, 1.3}});
  const FeasibleSet fs(w);
  VolumeOptions options;
  options.num_samples = 4096;
  options.num_threads = 1;
  const auto sequential = fs.RatioToIdealWithError(8, options);
  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    const auto parallel = fs.RatioToIdealWithError(8, options);
    EXPECT_EQ(parallel.mean, sequential.mean) << threads;
    EXPECT_EQ(parallel.std_error, sequential.std_error) << threads;
  }
}

TEST(ParallelVolumeTest, AboveBitExactAcrossThreadCounts) {
  const FeasibleSet fs(Matrix::FromRows({{2.0, 0.0}, {0.0, 2.0}}));
  VolumeOptions options;
  options.num_samples = 1u << 14;
  options.num_threads = 1;
  const double sequential = *fs.RatioToIdealAbove(Vector{0.25, 0.0}, options);
  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    EXPECT_EQ(*fs.RatioToIdealAbove(Vector{0.25, 0.0}, options), sequential)
        << threads;
  }
}

TEST(ParallelVolumeTest, SampleSetSharedAcrossPlacements) {
  // Two different weight matrices with the same options must hit the same
  // cached sample set: the second estimate costs no generation.
  VolumeOptions options;
  options.num_samples = 2048;
  const FeasibleSet a(Matrix::FromRows({{1.4, 0.7}, {0.9, 1.2}}));
  const FeasibleSet b(Matrix::FromRows({{0.8, 1.6}, {1.1, 0.3}}));
  auto& cache = SimplexSampleCache::Global();
  (void)a.RatioToIdeal(options);  // key resident after this call
  const size_t misses_before = cache.misses();
  const size_t hits_before = cache.hits();
  (void)b.RatioToIdeal(options);
  EXPECT_EQ(cache.misses(), misses_before);  // no regeneration
  EXPECT_EQ(cache.hits(), hits_before + 1);
}

TEST(ParallelVolumeTest, MembershipKernelMatchesContains) {
  const FeasibleSet fs(Matrix::FromRows({{1.5, 0.5}, {0.5, 1.5}}));
  SimplexSampleKey key;
  key.dims = 2;
  key.num_samples = 1024;
  const Matrix samples = GenerateSimplexSamples(key);
  size_t expected = 0;
  for (size_t s = 0; s < samples.rows(); ++s) {
    if (fs.Contains(samples.Row(s))) ++expected;
  }
  for (size_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(fs.CountContained(samples, threads), expected) << threads;
  }
}

}  // namespace
}  // namespace rod::geom
