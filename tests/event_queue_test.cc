// Tests for the deterministic event queue.

#include "runtime/event_queue.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace rod::sim {
namespace {

/// Drives a calendar queue and a legacy binary heap through the same
/// randomized push/pop schedule and asserts every popped event matches
/// field-for-field — the bit-exact replay contract between the two
/// implementations.
void CheckCalendarMatchesHeap(uint64_t seed, size_t steps,
                              double (*next_time)(Rng&, double)) {
  EventQueue calendar(EventQueueImpl::kCalendar);
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  Rng rng(seed);
  double now = 0.0;
  for (size_t step = 0; step < steps; ++step) {
    const bool push = calendar.empty() || rng.NextDouble() < 0.6;
    if (push) {
      const double t = next_time(rng, now);
      const auto type = static_cast<EventType>(rng.NextIndex(6));
      const auto index = static_cast<uint32_t>(rng.NextIndex(64));
      const uint64_t tag = rng.NextU64();
      calendar.Push(t, type, index, tag);
      heap.Push(t, type, index, tag);
    } else {
      ASSERT_EQ(calendar.size(), heap.size());
      const Event a = calendar.Pop();
      const Event b = heap.Pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
      ASSERT_EQ(a.type, b.type);
      ASSERT_EQ(a.index, b.index);
      ASSERT_EQ(a.tag, b.tag);
      now = a.time;  // simulation clock advances with pops
    }
  }
  while (!calendar.empty()) {
    ASSERT_FALSE(heap.empty());
    const Event a = calendar.Pop();
    const Event b = heap.Pop();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(3.0, EventType::kNodeDone, 0);
  q.Push(1.0, EventType::kExternalArrival, 1);
  q.Push(2.0, EventType::kNodeDone, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.Pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EqualTimesPopInInsertionOrder) {
  EventQueue q;
  for (uint32_t i = 0; i < 10; ++i) q.Push(5.0, EventType::kNodeDone, i);
  for (uint32_t i = 0; i < 10; ++i) {
    const Event e = q.Pop();
    EXPECT_EQ(e.index, i);
  }
}

TEST(EventQueueTest, TopDoesNotRemove) {
  EventQueue q;
  q.Push(1.0, EventType::kExternalArrival, 7);
  EXPECT_EQ(q.Top().index, 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CarriesTypeAndIndex) {
  EventQueue q;
  q.Push(1.0, EventType::kNodeDone, 42);
  const Event e = q.Pop();
  EXPECT_EQ(e.type, EventType::kNodeDone);
  EXPECT_EQ(e.index, 42u);
  EXPECT_EQ(e.tag, 0u);  // default payload
}

TEST(EventQueueTest, CarriesTagPayload) {
  EventQueue q;
  q.Push(1.0, EventType::kNodeDone, 3, 77);
  q.Push(2.0, EventType::kFault, 0);
  q.Push(3.0, EventType::kMigrationRelease, 9);
  EXPECT_EQ(q.Pop().tag, 77u);
  EXPECT_EQ(q.Pop().type, EventType::kFault);
  const Event e = q.Pop();
  EXPECT_EQ(e.type, EventType::kMigrationRelease);
  EXPECT_EQ(e.index, 9u);
}

TEST(EventQueueTest, InterleavedPushPop) {
  EventQueue q;
  q.Push(10.0, EventType::kNodeDone, 0);
  q.Push(5.0, EventType::kNodeDone, 1);
  EXPECT_EQ(q.Pop().index, 1u);
  q.Push(7.0, EventType::kNodeDone, 2);
  q.Push(1.0, EventType::kNodeDone, 3);
  EXPECT_EQ(q.Pop().index, 3u);
  EXPECT_EQ(q.Pop().index, 2u);
  EXPECT_EQ(q.Pop().index, 0u);
}

TEST(EventQueueTest, BothImplsHonorBasicOrder) {
  for (auto impl : {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    EventQueue q(impl);
    q.Push(3.0, EventType::kNodeDone, 0);
    q.Push(1.0, EventType::kExternalArrival, 1);
    q.Push(1.0, EventType::kNodeDone, 2);  // equal-time tie: insertion order
    q.Push(2.0, EventType::kNodeDone, 3);
    EXPECT_EQ(q.Pop().index, 1u);
    EXPECT_EQ(q.Pop().index, 2u);
    EXPECT_EQ(q.Pop().index, 3u);
    EXPECT_EQ(q.Pop().index, 0u);
    EXPECT_TRUE(q.empty());
  }
}

TEST(EventQueueTest, PropertyCalendarMatchesHeapNearMonotone) {
  // Engine-like workload: pushes land a bit ahead of the current clock.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    CheckCalendarMatchesHeap(seed, 20000, [](Rng& rng, double now) {
      return now + rng.Exponential(10.0);
    });
  }
}

TEST(EventQueueTest, PropertyCalendarMatchesHeapWithTiesAndNonMonotone) {
  // Adversarial workload: coarse time grid (many exact ties, including
  // ties with already-popped times pushed again — non-monotone pushes)
  // plus occasional far-future outliers that stretch the bucket span.
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    CheckCalendarMatchesHeap(seed, 20000, [](Rng& rng, double now) {
      const double r = rng.NextDouble();
      if (r < 0.5) {
        // Quantized near-now times: heavy equal-time collisions.
        return std::max(0.0, now - 2.0) +
               static_cast<double>(rng.NextIndex(8));
      }
      if (r < 0.9) return now + rng.NextDouble() * 5.0;
      return now + 1000.0 + rng.NextDouble() * 1e6;  // sparse outlier
    });
  }
}

TEST(EventQueueTest, PropertyCalendarMatchesHeapOnIdenticalTimes) {
  // Degenerate span: every event at the same instant (width fallback).
  CheckCalendarMatchesHeap(99, 5000,
                           [](Rng&, double) { return 42.0; });
}

TEST(EventQueueTest, PropertyCalendarSurvivesGrowShrinkCycles) {
  // Deep fill then full drain, repeated: exercises rebuild in both
  // directions with the pop order still matching the heap.
  EventQueue calendar(EventQueueImpl::kCalendar);
  EventQueue heap(EventQueueImpl::kBinaryHeap);
  Rng rng(7);
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 3000; ++i) {
      const double t = rng.NextDouble() * 100.0;
      calendar.Push(t, EventType::kNodeDone, static_cast<uint32_t>(i));
      heap.Push(t, EventType::kNodeDone, static_cast<uint32_t>(i));
    }
    while (!calendar.empty()) {
      const Event a = calendar.Pop();
      const Event b = heap.Pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
      ASSERT_EQ(a.index, b.index);
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(EventQueueTest, ReserveDoesNotDisturbOrder) {
  EventQueue q(EventQueueImpl::kCalendar);
  q.Reserve(4096);
  q.Push(2.0, EventType::kNodeDone, 0);
  q.Push(1.0, EventType::kNodeDone, 1);
  EXPECT_EQ(q.Pop().index, 1u);
  EXPECT_EQ(q.Pop().index, 0u);
}

TEST(EventQueueTest, ClearResetsSequenceForReuse) {
  for (auto impl : {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    EventQueue q(impl);
    q.Push(1.0, EventType::kNodeDone, 0);
    q.Push(2.0, EventType::kNodeDone, 1);
    q.Clear();
    EXPECT_TRUE(q.empty());
    // Ties after Clear still resolve by (fresh) insertion order.
    q.Push(5.0, EventType::kNodeDone, 10);
    q.Push(5.0, EventType::kNodeDone, 11);
    const Event first = q.Pop();
    EXPECT_EQ(first.index, 10u);
    EXPECT_EQ(first.seq, 0u);  // sequence counter restarted
    EXPECT_EQ(q.Pop().index, 11u);
  }
}

}  // namespace
}  // namespace rod::sim
