// Tests for the deterministic event queue.

#include "runtime/event_queue.h"

#include <gtest/gtest.h>

namespace rod::sim {
namespace {

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(3.0, EventType::kNodeDone, 0);
  q.Push(1.0, EventType::kExternalArrival, 1);
  q.Push(2.0, EventType::kNodeDone, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.Pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 2.0);
  EXPECT_DOUBLE_EQ(q.Pop().time, 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EqualTimesPopInInsertionOrder) {
  EventQueue q;
  for (uint32_t i = 0; i < 10; ++i) q.Push(5.0, EventType::kNodeDone, i);
  for (uint32_t i = 0; i < 10; ++i) {
    const Event e = q.Pop();
    EXPECT_EQ(e.index, i);
  }
}

TEST(EventQueueTest, TopDoesNotRemove) {
  EventQueue q;
  q.Push(1.0, EventType::kExternalArrival, 7);
  EXPECT_EQ(q.Top().index, 7u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, CarriesTypeAndIndex) {
  EventQueue q;
  q.Push(1.0, EventType::kNodeDone, 42);
  const Event e = q.Pop();
  EXPECT_EQ(e.type, EventType::kNodeDone);
  EXPECT_EQ(e.index, 42u);
  EXPECT_EQ(e.tag, 0u);  // default payload
}

TEST(EventQueueTest, CarriesTagPayload) {
  EventQueue q;
  q.Push(1.0, EventType::kNodeDone, 3, 77);
  q.Push(2.0, EventType::kFault, 0);
  q.Push(3.0, EventType::kMigrationRelease, 9);
  EXPECT_EQ(q.Pop().tag, 77u);
  EXPECT_EQ(q.Pop().type, EventType::kFault);
  const Event e = q.Pop();
  EXPECT_EQ(e.type, EventType::kMigrationRelease);
  EXPECT_EQ(e.index, 9u);
}

TEST(EventQueueTest, InterleavedPushPop) {
  EventQueue q;
  q.Push(10.0, EventType::kNodeDone, 0);
  q.Push(5.0, EventType::kNodeDone, 1);
  EXPECT_EQ(q.Pop().index, 1u);
  q.Push(7.0, EventType::kNodeDone, 2);
  q.Push(1.0, EventType::kNodeDone, 3);
  EXPECT_EQ(q.Pop().index, 3u);
  EXPECT_EQ(q.Pop().index, 2u);
  EXPECT_EQ(q.Pop().index, 0u);
}

}  // namespace
}  // namespace rod::sim
