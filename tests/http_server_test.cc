// Loopback tests for the observability-plane HTTP server: a raw-socket
// client scrapes /metrics (Prometheus text) and /healthz off an
// ephemeral port, plus the error paths (404, 405, 400) and lifecycle
// (Stop idempotency, restart).

#include "telemetry/http_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>

#include "telemetry/exposition.h"
#include "telemetry/telemetry.h"

namespace rod::telemetry {
namespace {

/// Sends one raw request to 127.0.0.1:port and returns the full
/// response (status line + headers + body). Empty string on failure.
std::string RawRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n");
}

TEST(HttpServerTest, ServesMetricsAndHealthOnEphemeralPort) {
  Telemetry tel;
  tel.Count("engine.events_processed", 42);

  HttpServer server;
  server.Handle("/metrics", [&tel](std::string_view) {
    HttpServer::Response r;
    r.content_type = kPrometheusContentType;
    std::ostringstream out;
    WritePrometheusText(tel.Snapshot(), out);
    r.body = out.str();
    return r;
  });
  server.Handle("/healthz", [](std::string_view) {
    HttpServer::Response r;
    r.body = "ok\n";
    return r;
  });

  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.serving());

  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("engine_events_processed 42"), std::string::npos)
      << metrics;

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok\n"), std::string::npos) << health;
}

TEST(HttpServerTest, QueryStringIsStrippedBeforeDispatch) {
  HttpServer server;
  server.Handle("/metrics", [](std::string_view path) {
    HttpServer::Response r;
    r.body = std::string("path=") + std::string(path);
    return r;
  });
  ASSERT_TRUE(server.Start(0));
  const std::string resp = Get(server.port(), "/metrics?format=prometheus");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("path=/metrics"), std::string::npos) << resp;
}

TEST(HttpServerTest, UnknownPathIs404) {
  HttpServer server;
  server.Handle("/metrics", [](std::string_view) {
    return HttpServer::Response{};
  });
  ASSERT_TRUE(server.Start(0));
  const std::string resp = Get(server.port(), "/nope");
  EXPECT_NE(resp.find("HTTP/1.1 404"), std::string::npos) << resp;
}

TEST(HttpServerTest, NonGetMethodIs405) {
  HttpServer server;
  server.Handle("/metrics", [](std::string_view) {
    return HttpServer::Response{};
  });
  ASSERT_TRUE(server.Start(0));
  const std::string resp = RawRequest(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 405"), std::string::npos) << resp;
}

TEST(HttpServerTest, MalformedRequestIs400) {
  HttpServer server;
  ASSERT_TRUE(server.Start(0));
  // No spaces in the request line: not even a method/target to parse.
  const std::string resp = RawRequest(server.port(), "garbage\r\n\r\n");
  EXPECT_NE(resp.find("HTTP/1.1 400"), std::string::npos) << resp;
}

TEST(HttpServerTest, OversizedRequestHeadersAre431) {
  HttpServer server;
  server.Handle("/metrics", [](std::string_view) {
    return HttpServer::Response{};
  });
  ASSERT_TRUE(server.Start(0));
  // A request whose headers never finish within the 16 KiB read bound
  // must be rejected, not buffered forever: one giant header line past
  // the cap (but small enough to fit the loopback socket buffer, so the
  // client's send completes even though the server stops reading).
  std::string request = "GET /metrics HTTP/1.1\r\nX-Flood: ";
  request.append(24 * 1024, 'a');
  request += "\r\n\r\n";
  const std::string resp = RawRequest(server.port(), request);
  EXPECT_NE(resp.find("HTTP/1.1 431"), std::string::npos) << resp.substr(0, 200);
}

TEST(HttpServerTest, LargeButBoundedHeadersStillServe) {
  HttpServer server;
  server.Handle("/metrics", [](std::string_view) {
    HttpServer::Response r;
    r.body = "ok\n";
    return r;
  });
  ASSERT_TRUE(server.Start(0));
  // Just under the cap: must still be served normally.
  std::string request = "GET /metrics HTTP/1.1\r\nX-Pad: ";
  request.append(8 * 1024, 'b');
  request += "\r\nConnection: close\r\n\r\n";
  const std::string resp = RawRequest(server.port(), request);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos)
      << resp.substr(0, 200);
}

TEST(HttpServerTest, StopIsIdempotentAndRestartWorks) {
  HttpServer server;
  server.Handle("/healthz", [](std::string_view) {
    HttpServer::Response r;
    r.body = "ok\n";
    return r;
  });
  ASSERT_TRUE(server.Start(0));
  const uint16_t first_port = server.port();
  EXPECT_FALSE(Get(first_port, "/healthz").empty());
  server.Stop();
  server.Stop();  // Idempotent.
  EXPECT_FALSE(server.serving());

  ASSERT_TRUE(server.Start(0));
  EXPECT_NE(Get(server.port(), "/healthz").find("200 OK"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, StartOnBusyPortReportsError) {
  HttpServer first;
  ASSERT_TRUE(first.Start(0));
  HttpServer second;
  std::string error;
  EXPECT_FALSE(second.Start(first.port(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(second.serving());
}

}  // namespace
}  // namespace rod::telemetry
