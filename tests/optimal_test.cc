// Tests for the exhaustive optimal search, including the §7.3.1
// ROD-vs-optimal comparison on small graphs.

#include "placement/optimal.h"

#include <gtest/gtest.h>

#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::place {
namespace {

using query::QueryGraph;

QueryGraph SmallRandomGraph(size_t inputs, size_t ops_per_tree, uint64_t seed) {
  query::GraphGenOptions gen;
  gen.num_input_streams = inputs;
  gen.ops_per_tree = ops_per_tree;
  Rng rng(seed);
  return query::GenerateRandomTrees(gen, rng);
}

TEST(OptimalTest, CanonicalEnumerationCountsSetPartitions) {
  // Homogeneous 2 nodes, m operators: 2^(m-1) canonical plans.
  const QueryGraph g = SmallRandomGraph(2, 3, 1);  // m = 6
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  OptimalOptions options;
  options.volume.num_samples = 2048;
  auto result = OptimalPlace(*model, SystemSpec::Homogeneous(2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plans_evaluated, 32u);  // 2^5
}

TEST(OptimalTest, FullEnumerationWhenHeterogeneous) {
  const QueryGraph g = SmallRandomGraph(2, 2, 2);  // m = 4
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  OptimalOptions options;
  options.volume.num_samples = 1024;
  auto result = OptimalPlace(*model, SystemSpec{Vector{2.0, 1.0}}, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->plans_evaluated, 16u);  // 2^4
}

TEST(OptimalTest, RefusesHugeSearchSpaces) {
  const QueryGraph g = SmallRandomGraph(3, 20, 3);  // m = 60
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(OptimalPlace(*model, SystemSpec::Homogeneous(4)).ok());
}

TEST(OptimalTest, FindsKnownOptimumOnPaperExample) {
  // Example 2 (Figure 4): the best 2-node split separates both streams,
  // e.g. {o1,o3}|{o2,o4} with weight rows (0.8, 1.636) and (1.2, 0.364).
  // Exact polygon area (vertices (0,0), (0.8333,0), (0.7609,0.2391),
  // (0,0.6111)) gives ratio 0.6642 — strictly better than the connected
  // plan {o1,o2}|{o3,o4} at 0.5.
  QueryGraph g;
  const auto i1 = g.AddInputStream("I1");
  const auto i2 = g.AddInputStream("I2");
  auto o1 = g.AddOperator({.name = "o1", .kind = query::OperatorKind::kMap,
                           .cost = 4.0},
                          {query::StreamRef::Input(i1)});
  auto o2 = g.AddOperator({.name = "o2", .kind = query::OperatorKind::kMap,
                           .cost = 6.0},
                          {query::StreamRef::Op(*o1)});
  auto o3 = g.AddOperator({.name = "o3", .kind = query::OperatorKind::kFilter,
                           .cost = 9.0, .selectivity = 0.5},
                          {query::StreamRef::Input(i2)});
  auto o4 = g.AddOperator({.name = "o4", .kind = query::OperatorKind::kMap,
                           .cost = 4.0},
                          {query::StreamRef::Op(*o3)});
  ASSERT_TRUE(o4.ok());
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());

  OptimalOptions options;
  options.volume.num_samples = 1u << 16;
  auto result = OptimalPlace(*model, SystemSpec::Homogeneous(2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->ratio_to_ideal, 0.6642, 0.01);
  EXPECT_NE(result->placement.node_of(*o1), result->placement.node_of(*o2));
  EXPECT_NE(result->placement.node_of(*o3), result->placement.node_of(*o4));
}

TEST(OptimalTest, OptimalNeverWorseThanRod) {
  // §7.3.1's experiment in miniature: over several small graphs, optimal's
  // ratio upper-bounds ROD's, and ROD stays close (paper: avg 0.95,
  // min 0.82).
  double worst_gap = 1.0;
  double sum_gap = 0.0;
  int cases = 0;
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    for (size_t inputs : {2u, 3u}) {
      const QueryGraph g = SmallRandomGraph(inputs, 4, seed);  // m = 8, 12
      auto model = query::BuildLoadModel(g);
      ASSERT_TRUE(model.ok());
      const SystemSpec system = SystemSpec::Homogeneous(2);

      OptimalOptions options;
      options.volume.num_samples = 8192;
      auto optimal = OptimalPlace(*model, system, options);
      ASSERT_TRUE(optimal.ok());

      auto rod_plan = RodPlace(*model, system);
      ASSERT_TRUE(rod_plan.ok());
      const PlacementEvaluator eval(*model, system);
      auto rod_ratio = eval.RatioToIdeal(*rod_plan, options.volume);
      ASSERT_TRUE(rod_ratio.ok());

      EXPECT_LE(*rod_ratio, optimal->ratio_to_ideal + 1e-9);
      const double gap = *rod_ratio / optimal->ratio_to_ideal;
      worst_gap = std::min(worst_gap, gap);
      sum_gap += gap;
      ++cases;
    }
  }
  EXPECT_GE(worst_gap, 0.75);             // paper's min observed: 0.82
  EXPECT_GE(sum_gap / cases, 0.90);       // paper's average: 0.95
}

TEST(OptimalTest, SymmetryExploitationPreservesTheOptimum) {
  // Canonical enumeration must find the same best ratio as the full
  // search on a homogeneous cluster — it only skips relabelings.
  const QueryGraph g = SmallRandomGraph(2, 3, 9);  // m = 6
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  OptimalOptions canonical;
  canonical.volume.num_samples = 4096;
  OptimalOptions full = canonical;
  full.exploit_node_symmetry = false;
  auto a = OptimalPlace(*model, system, canonical);
  auto b = OptimalPlace(*model, system, full);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->plans_evaluated, 32u);  // 2^5
  EXPECT_EQ(b->plans_evaluated, 64u);  // 2^6
  EXPECT_DOUBLE_EQ(a->ratio_to_ideal, b->ratio_to_ideal);
}

TEST(OptimalTest, RejectsEmptyModel) {
  QueryGraph g;
  g.AddInputStream("I");
  // No operators -> BuildLoadModel fails upstream; exercise the matrix
  // guard directly through a minimal valid model and a bad system instead.
  const QueryGraph good = SmallRandomGraph(1, 2, 5);
  auto model = query::BuildLoadModel(good);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(OptimalPlace(*model, SystemSpec{}).ok());
}

}  // namespace
}  // namespace rod::place
