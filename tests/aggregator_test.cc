// Aggregator tests under a manual clock: SampleNow() deltas/rates,
// window bounding, the high-water-gauge reset contract, and the window
// JSON shape. The background thread is exercised only for lifecycle
// (Start/Stop) — sampling math is tested deterministically via
// SampleNow().

#include "telemetry/aggregator.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "telemetry/telemetry.h"

namespace rod::telemetry {
namespace {

TelemetryOptions ManualClock() {
  TelemetryOptions o;
  o.manual_clock = true;
  return o;
}

TEST(AggregatorTest, SampleNowComputesDeltasAndRates) {
  Telemetry tel(ManualClock());
  Counter events = tel.counter("engine.events");
  events.Add(100);  // Before the baseline snapshot.

  Aggregator agg(&tel);  // Baseline: events = 100.
  events.Add(10);
  tel.AdvanceClock(2'000'000.0);  // +2 s.
  const Aggregator::Sample s1 = agg.SampleNow();
  EXPECT_DOUBLE_EQ(s1.wall_us, 2'000'000.0);
  EXPECT_DOUBLE_EQ(s1.dt_sec, 2.0);
  EXPECT_EQ(s1.snapshot.counters.at("engine.events"), 110u);
  EXPECT_EQ(s1.counter_deltas.at("engine.events"), 10u);
  EXPECT_DOUBLE_EQ(s1.counter_rates.at("engine.events"), 5.0);

  events.Add(30);
  tel.AdvanceClock(1'000'000.0);  // +1 s.
  const Aggregator::Sample s2 = agg.SampleNow();
  EXPECT_DOUBLE_EQ(s2.dt_sec, 1.0);
  EXPECT_EQ(s2.counter_deltas.at("engine.events"), 30u);
  EXPECT_DOUBLE_EQ(s2.counter_rates.at("engine.events"), 30.0);
}

TEST(AggregatorTest, FirstSampleWithZeroDtHasZeroRate) {
  Telemetry tel(ManualClock());
  tel.Count("c", 5);
  Aggregator agg(&tel);
  tel.Count("c", 7);
  const Aggregator::Sample s = agg.SampleNow();  // Clock never advanced.
  EXPECT_DOUBLE_EQ(s.dt_sec, 0.0);
  EXPECT_EQ(s.counter_deltas.at("c"), 7u);
  EXPECT_DOUBLE_EQ(s.counter_rates.at("c"), 0.0);
}

TEST(AggregatorTest, WindowIsBoundedOldestDroppedFirst) {
  Telemetry tel(ManualClock());
  AggregatorOptions options;
  options.window = 2;
  Aggregator agg(&tel, options);
  for (int i = 0; i < 3; ++i) {
    tel.AdvanceClock(1'000'000.0);
    agg.SampleNow();
  }
  const std::vector<Aggregator::Sample> window = agg.Window();
  ASSERT_EQ(window.size(), 2u);
  EXPECT_DOUBLE_EQ(window[0].wall_us, 2'000'000.0);
  EXPECT_DOUBLE_EQ(window[1].wall_us, 3'000'000.0);
}

TEST(AggregatorTest, ResetGaugesZeroHighWaterAfterEachSample) {
  Telemetry tel(ManualClock());
  Gauge high_water = tel.gauge("pool.queue_depth_high_water");
  high_water.Max(9.0);
  AggregatorOptions options;
  options.reset_gauges = {"pool.queue_depth_high_water", "never.registered"};
  Aggregator agg(&tel, options);

  tel.AdvanceClock(1'000'000.0);
  const Aggregator::Sample s1 = agg.SampleNow();
  EXPECT_DOUBLE_EQ(s1.snapshot.gauges.at("pool.queue_depth_high_water"), 9.0);
  // Reset re-arms the ratchet: a smaller later peak is now visible.
  high_water.Max(3.0);
  tel.AdvanceClock(1'000'000.0);
  const Aggregator::Sample s2 = agg.SampleNow();
  EXPECT_DOUBLE_EQ(s2.snapshot.gauges.at("pool.queue_depth_high_water"), 3.0);
  // The reset list never mints instruments.
  EXPECT_EQ(s2.snapshot.gauges.count("never.registered"), 0u);
}

TEST(AggregatorTest, CounterResetClampsDeltaToZero) {
  // A concurrent snapshot can observe a shard mid-merge and look like a
  // counter went backwards; the delta clamps at zero rather than
  // wrapping to ~2^64.
  Telemetry tel(ManualClock());
  tel.Count("c", 50);
  Aggregator agg(&tel);  // Baseline: c = 50.
  tel.AdvanceClock(1'000'000.0);
  const Aggregator::Sample s1 = agg.SampleNow();  // c still 50: delta 0.
  EXPECT_EQ(s1.counter_deltas.at("c"), 0u);
  EXPECT_DOUBLE_EQ(s1.counter_rates.at("c"), 0.0);
}

TEST(AggregatorTest, WriteWindowJsonHasDocumentedShape) {
  Telemetry tel(ManualClock());
  tel.Count("engine.events", 4);
  tel.SetGauge("depth", 2.5);
  Aggregator agg(&tel);
  tel.AdvanceClock(1'000'000.0);
  tel.Count("engine.events", 6);
  agg.SampleNow();

  std::ostringstream out;
  agg.WriteWindowJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"period_sec\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"window\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"engine.events\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"total\": 10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"delta\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rate\": 6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos) << json;
}

TEST(AggregatorTest, StartStopLifecycle) {
  Telemetry tel;  // Real clock: the background thread needs wall time.
  AggregatorOptions options;
  options.period_sec = 0.005;
  Aggregator agg(&tel, options);
  EXPECT_FALSE(agg.running());
  agg.Start();
  EXPECT_TRUE(agg.running());
  agg.Start();  // No-op while running.
  agg.Stop();
  EXPECT_FALSE(agg.running());
  agg.Stop();  // Idempotent.
  // Samples (if any were taken) survive Stop().
  const size_t after_stop = agg.Window().size();
  EXPECT_EQ(agg.Window().size(), after_stop);
}

}  // namespace
}  // namespace rod::telemetry
