// Tests for the query graph structure and validation rules.

#include "query/query_graph.h"

#include <gtest/gtest.h>

namespace rod::query {
namespace {

OperatorSpec Filter(std::string name, double cost, double sel) {
  return {.name = std::move(name),
          .kind = OperatorKind::kFilter,
          .cost = cost,
          .selectivity = sel};
}

TEST(OperatorSpecTest, ValidatesRanges) {
  EXPECT_TRUE(Filter("f", 1.0, 0.5).Validate().ok());
  EXPECT_FALSE(Filter("f", -1.0, 0.5).Validate().ok());
  EXPECT_FALSE(Filter("f", 1.0, -0.5).Validate().ok());
  EXPECT_FALSE(Filter("f", 1.0, 1.5).Validate().ok());  // filter sel > 1
}

TEST(OperatorSpecTest, JoinRequiresWindowAndPositiveSelectivity) {
  OperatorSpec join{.name = "j",
                    .kind = OperatorKind::kJoin,
                    .cost = 1.0,
                    .selectivity = 0.5,
                    .window = 2.0};
  EXPECT_TRUE(join.Validate().ok());
  join.window = 0.0;
  EXPECT_FALSE(join.Validate().ok());
  join.window = 2.0;
  join.selectivity = 0.0;
  EXPECT_FALSE(join.Validate().ok());
}

TEST(OperatorSpecTest, WindowOnlyForJoins) {
  OperatorSpec map{.name = "m",
                   .kind = OperatorKind::kMap,
                   .cost = 1.0,
                   .selectivity = 1.0,
                   .window = 3.0};
  EXPECT_FALSE(map.Validate().ok());
}

TEST(OperatorKindTest, NamesAndLinearity) {
  EXPECT_STREQ(OperatorKindName(OperatorKind::kJoin), "join");
  EXPECT_STREQ(OperatorKindName(OperatorKind::kAggregate), "aggregate");
  EXPECT_TRUE(IsLinearKind(OperatorKind::kFilter));
  EXPECT_TRUE(IsLinearKind(OperatorKind::kUnion));
  EXPECT_FALSE(IsLinearKind(OperatorKind::kJoin));
}

TEST(QueryGraphTest, BuildSimpleChain) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I0");
  auto a = g.AddOperator(Filter("a", 1.0, 0.5), {StreamRef::Input(in)});
  ASSERT_TRUE(a.ok());
  auto b = g.AddOperator(Filter("b", 2.0, 1.0), {StreamRef::Op(*a)});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(g.num_operators(), 2u);
  EXPECT_EQ(g.num_input_streams(), 1u);
  EXPECT_EQ(g.consumers_of(*a), std::vector<OperatorId>{*b});
  EXPECT_TRUE(g.consumers_of(*b).empty());
  EXPECT_EQ(g.consumers_of_input(in), std::vector<OperatorId>{*a});
  EXPECT_EQ(g.Sinks(), std::vector<OperatorId>{*b});
  EXPECT_TRUE(g.Validate().ok());
}

TEST(QueryGraphTest, RejectsUnknownReferences) {
  QueryGraph g;
  g.AddInputStream("I0");
  EXPECT_FALSE(
      g.AddOperator(Filter("a", 1.0, 1.0), {StreamRef::Input(5)}).ok());
  EXPECT_FALSE(g.AddOperator(Filter("a", 1.0, 1.0), {StreamRef::Op(3)}).ok());
}

TEST(QueryGraphTest, RejectsWrongArity) {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("I0");
  const InputStreamId i1 = g.AddInputStream("I1");
  // Single-input kinds refuse 2 inputs.
  EXPECT_FALSE(g.AddOperator(Filter("f", 1.0, 1.0),
                             {StreamRef::Input(i0), StreamRef::Input(i1)})
                   .ok());
  // Joins refuse 1 input.
  OperatorSpec join{.name = "j",
                    .kind = OperatorKind::kJoin,
                    .cost = 1.0,
                    .selectivity = 0.5,
                    .window = 1.0};
  EXPECT_FALSE(g.AddOperator(join, {StreamRef::Input(i0)}).ok());
  // Unions accept many.
  OperatorSpec u{.name = "u", .kind = OperatorKind::kUnion, .cost = 1.0};
  EXPECT_TRUE(
      g.AddOperator(u, {StreamRef::Input(i0), StreamRef::Input(i1)}).ok());
}

TEST(QueryGraphTest, RejectsDuplicateInputs) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I0");
  OperatorSpec u{.name = "u", .kind = OperatorKind::kUnion, .cost = 1.0};
  EXPECT_FALSE(
      g.AddOperator(u, {StreamRef::Input(in), StreamRef::Input(in)}).ok());
}

TEST(QueryGraphTest, CommCostsSizeMustMatch) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I0");
  EXPECT_FALSE(g.AddOperator(Filter("f", 1.0, 1.0), {StreamRef::Input(in)},
                             {0.1, 0.2})
                   .ok());
  EXPECT_FALSE(
      g.AddOperator(Filter("f", 1.0, 1.0), {StreamRef::Input(in)}, {-0.1})
          .ok());
  auto ok = g.AddOperator(Filter("f", 1.0, 1.0), {StreamRef::Input(in)}, {0.2});
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(g.inputs_of(*ok)[0].comm_cost, 0.2);
}

TEST(QueryGraphTest, ValidateFlagsEmptyAndOrphans) {
  QueryGraph empty;
  EXPECT_FALSE(empty.Validate().ok());

  QueryGraph orphan;
  orphan.AddInputStream("used");
  orphan.AddInputStream("unused");
  ASSERT_TRUE(
      orphan.AddOperator(Filter("f", 1.0, 1.0), {StreamRef::Input(0)}).ok());
  EXPECT_FALSE(orphan.Validate().ok());
}

TEST(QueryGraphTest, RequiresLinearizationDetection) {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("I0");
  const InputStreamId i1 = g.AddInputStream("I1");
  ASSERT_TRUE(g.AddOperator(Filter("f", 1.0, 1.0), {StreamRef::Input(i0)}).ok());
  EXPECT_FALSE(g.RequiresLinearization());

  OperatorSpec varsel = Filter("v", 1.0, 0.5);
  varsel.variable_selectivity = true;
  ASSERT_TRUE(g.AddOperator(varsel, {StreamRef::Input(i1)}).ok());
  EXPECT_TRUE(g.RequiresLinearization());
}

TEST(QueryGraphTest, FanOutSharesOutputStream) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I0");
  auto src = g.AddOperator(Filter("src", 1.0, 1.0), {StreamRef::Input(in)});
  ASSERT_TRUE(src.ok());
  auto c1 = g.AddOperator(Filter("c1", 1.0, 1.0), {StreamRef::Op(*src)});
  auto c2 = g.AddOperator(Filter("c2", 1.0, 1.0), {StreamRef::Op(*src)});
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(g.consumers_of(*src).size(), 2u);
  EXPECT_EQ(g.Sinks().size(), 2u);
}

}  // namespace
}  // namespace rod::query
