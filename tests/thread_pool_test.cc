// Tests for the worker pool and the chunked ParallelFor determinism
// contract: chunk boundaries depend only on (n, grain), never on the
// thread count, and chunk-slot reductions are bit-identical for every
// parallelism level. The stress cases double as ASan/UBSan/TSan targets.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <vector>

namespace rod {
namespace {

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ran.load() < 64 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
  }  // ~ThreadPool drains, then joins
  EXPECT_EQ(ran.load(), 32);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<int> visits(1003, 0);
    ParallelFor(threads, visits.size(), 17,
                [&](size_t, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) ++visits[i];
                });
    EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 1003)
        << threads;
    for (int v : visits) EXPECT_EQ(v, 1);
  }
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  const size_t n = 777, grain = 32;
  const size_t num_chunks = (n + grain - 1) / grain;
  auto boundaries = [&](size_t threads) {
    std::vector<std::pair<size_t, size_t>> out(num_chunks);
    ParallelFor(threads, n, grain, [&](size_t chunk, size_t begin,
                                       size_t end) {
      out[chunk] = {begin, end};
    });
    return out;
  };
  const auto seq = boundaries(1);
  for (size_t c = 0; c < num_chunks; ++c) {
    EXPECT_EQ(seq[c].first, c * grain);
    EXPECT_EQ(seq[c].second, std::min(n, (c + 1) * grain));
  }
  EXPECT_EQ(boundaries(2), seq);
  EXPECT_EQ(boundaries(8), seq);
}

TEST(ParallelForTest, ChunkOrderedReductionIsBitExact) {
  // Sum sin(i) per chunk slot, reduce in chunk order: every thread count
  // must produce the exact same double.
  const size_t n = 5000, grain = 64;
  auto reduce = [&](size_t threads) {
    std::vector<double> partial((n + grain - 1) / grain, 0.0);
    ParallelFor(threads, n, grain, [&](size_t chunk, size_t begin,
                                       size_t end) {
      double s = 0.0;
      for (size_t i = begin; i < end; ++i) {
        s += std::sin(static_cast<double>(i));
      }
      partial[chunk] = s;
    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  const double seq = reduce(1);
  EXPECT_EQ(reduce(2), seq);
  EXPECT_EQ(reduce(8), seq);
}

TEST(ParallelForTest, SingleThreadRunsInlineOnCaller) {
  const auto caller = std::this_thread::get_id();
  ParallelFor(1, 100, 10, [&](size_t, size_t, size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelForTest, NestedCallsCompleteWithoutDeadlock) {
  std::atomic<int> inner_total{0};
  ParallelFor(4, 8, 1, [&](size_t, size_t, size_t) {
    ParallelFor(4, 16, 4, [&](size_t, size_t begin, size_t end) {
      inner_total.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelForTest, ZeroItemsIsANoop) {
  ParallelFor(8, 0, 16, [&](size_t, size_t, size_t) { FAIL(); });
}

TEST(ParallelForTest, ExplicitPoolStress) {
  // Many small loops over a private pool — the sanitizer job chews on the
  // queue handoff and the completion protocol here.
  ThreadPool pool(8);
  for (int round = 0; round < 100; ++round) {
    std::vector<int> hits(257, 0);
    ParallelFor(pool, 8, hits.size(), 7,
                [&](size_t, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) ++hits[i];
                });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, SetTelemetryQuiescesBeforeSwap) {
  // Regression: a worker ends its "pool/task" span after the task's
  // completion is observable, so swapping the sink and destroying the
  // old one right after a ParallelFor used to race the span end
  // (use-after-free, bad_alloc from a garbage ring capacity). The swap
  // now blocks until no worker is mid-task; this loop crashes under
  // ASan without that guarantee.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    telemetry::Telemetry scoped;
    pool.set_telemetry(&scoped);
    std::atomic<int> sum{0};
    ParallelFor(pool, 4, 64, 1,
                [&](size_t, size_t begin, size_t end) {
                  sum += static_cast<int>(end - begin);
                });
    EXPECT_EQ(sum.load(), 64);
    pool.set_telemetry(nullptr);
    // `scoped` dies here; no worker may still be recording into it.
  }
}

TEST(ThreadPoolTest, SubmitRecordsQueueHighWaterGauge) {
  telemetry::Telemetry tel;
  ThreadPool pool(1);
  pool.set_telemetry(&tel);
  std::mutex gate;
  gate.lock();  // Hold the single worker so the queue backs up.
  pool.Submit([&gate] { gate.lock(); gate.unlock(); });
  for (int i = 0; i < 5; ++i) pool.Submit([] {});
  const double high_water =
      tel.Snapshot().gauges.at("pool.queue_depth_high_water");
  EXPECT_GE(high_water, 5.0);
  gate.unlock();
  pool.set_telemetry(nullptr);  // Quiesces: all tasks drained.
  // The ratchet survives until an Aggregator-style reset.
  EXPECT_GE(tel.Snapshot().gauges.at("pool.queue_depth_high_water"), 5.0);
}

}  // namespace
}  // namespace rod
