// Tests for the dense matrix / vector algebra.

#include "common/matrix.h"

#include <gtest/gtest.h>

namespace rod {
namespace {

TEST(VectorOpsTest, Dot) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(VectorOpsTest, Norm2) {
  Vector a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(Norm2(Vector{}), 0.0);
}

TEST(VectorOpsTest, SumAddSubScale) {
  Vector a = {1.0, 2.0};
  Vector b = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(Sum(a), 3.0);
  EXPECT_EQ(Add(a, b), (Vector{11.0, 22.0}));
  EXPECT_EQ(Sub(b, a), (Vector{9.0, 18.0}));
  EXPECT_EQ(Scale(a, 3.0), (Vector{3.0, 6.0}));
}

TEST(VectorOpsTest, AlmostEqual) {
  EXPECT_TRUE(AlmostEqual(Vector{1.0, 2.0}, Vector{1.0 + 1e-12, 2.0}));
  EXPECT_FALSE(AlmostEqual(Vector{1.0}, Vector{1.0, 2.0}));
  EXPECT_FALSE(AlmostEqual(Vector{1.0}, Vector{1.1}));
}

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
  EXPECT_TRUE(Matrix().empty());
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, RowSpanMutation) {
  Matrix m(2, 2);
  auto row = m.Row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST(MatrixTest, ColAndColSum) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.Col(1), (Vector{2.0, 4.0}));
  EXPECT_DOUBLE_EQ(m.ColSum(0), 4.0);
}

TEST(MatrixTest, MatMul) {
  // The paper's L^n = A . L^o shape: allocation (2x3) times coeffs (3x2).
  Matrix a = Matrix::FromRows({{1.0, 1.0, 0.0}, {0.0, 0.0, 1.0}});
  Matrix lo = Matrix::FromRows({{4.0, 0.0}, {6.0, 0.0}, {0.0, 9.0}});
  Matrix ln = a.MatMul(lo);
  EXPECT_EQ(ln.rows(), 2u);
  EXPECT_EQ(ln.cols(), 2u);
  EXPECT_DOUBLE_EQ(ln(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(ln(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ln(1, 1), 9.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m.MatVec(Vector{1.0, 1.0}), (Vector{3.0, 7.0}));
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, TransposeIsInvolution) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_TRUE(m.Transposed().Transposed().AlmostEquals(m));
}

TEST(MatrixTest, AlmostEquals) {
  Matrix a = Matrix::FromRows({{1.0, 2.0}});
  Matrix b = Matrix::FromRows({{1.0 + 1e-12, 2.0}});
  Matrix c = Matrix::FromRows({{1.1, 2.0}});
  EXPECT_TRUE(a.AlmostEquals(b));
  EXPECT_FALSE(a.AlmostEquals(c));
  EXPECT_FALSE(a.AlmostEquals(Matrix(2, 1)));
}

TEST(MatrixTest, ToStringRendersValues) {
  Matrix m = Matrix::FromRows({{1.0, 2.0}, {3.0, 4.0}});
  const std::string s = m.ToString();
  EXPECT_NE(s.find('1'), std::string::npos);
  EXPECT_NE(s.find('4'), std::string::npos);
}

}  // namespace
}  // namespace rod
