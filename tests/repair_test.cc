// Tests for incremental ROD and placement repair on cluster changes.

#include "placement/repair.h"

#include <gtest/gtest.h>

#include "placement/evaluator.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::place {
namespace {

using query::QueryGraph;

struct Fixture {
  QueryGraph graph;
  query::LoadModel model;

  explicit Fixture(uint64_t seed, size_t inputs = 4, size_t ops = 12) {
    query::GraphGenOptions gen;
    gen.num_input_streams = inputs;
    gen.ops_per_tree = ops;
    Rng rng(seed);
    graph = query::GenerateRandomTrees(gen, rng);
    model = *query::BuildLoadModel(graph);
  }
};

TEST(IncrementalRodTest, AllUnassignedEqualsFullRod) {
  Fixture f(1);
  const SystemSpec system = SystemSpec::Homogeneous(4);
  std::vector<size_t> none(f.model.num_operators(), kUnassigned);
  auto incremental = RodPlaceIncremental(f.model, system, none);
  auto full = RodPlace(f.model, system);
  ASSERT_TRUE(incremental.ok() && full.ok());
  EXPECT_EQ(incremental->assignment(), full->assignment());
}

TEST(IncrementalRodTest, PinnedOperatorsStayPut) {
  Fixture f(2);
  const SystemSpec system = SystemSpec::Homogeneous(3);
  std::vector<size_t> fixed(f.model.num_operators(), kUnassigned);
  fixed[0] = 2;
  fixed[5] = 1;
  fixed[7] = 2;
  auto plan = RodPlaceIncremental(f.model, system, fixed);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->node_of(0), 2u);
  EXPECT_EQ(plan->node_of(5), 1u);
  EXPECT_EQ(plan->node_of(7), 2u);
}

TEST(IncrementalRodTest, SeededLoadInfluencesChoices) {
  // One stream, two equal ops, two nodes: pinning op 0 on node 0 must
  // push op 1 to node 1.
  QueryGraph g;
  const auto in = g.AddInputStream("I");
  for (int rep = 0; rep < 2; ++rep) {
    ASSERT_TRUE(g.AddOperator({.name = "o" + std::to_string(rep),
                               .kind = query::OperatorKind::kMap,
                               .cost = 1.0},
                              {query::StreamRef::Input(in)})
                    .ok());
  }
  auto model = *query::BuildLoadModel(g);
  const SystemSpec system = SystemSpec::Homogeneous(2);
  std::vector<size_t> fixed = {0, kUnassigned};
  auto plan = RodPlaceIncremental(model, system, fixed);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->node_of(1), 1u);
}

TEST(IncrementalRodTest, Validation) {
  Fixture f(3);
  const SystemSpec system = SystemSpec::Homogeneous(2);
  // Wrong size.
  EXPECT_FALSE(RodPlaceIncremental(f.model, system, {0, 1}).ok());
  // kMinCrossArcs unsupported.
  std::vector<size_t> none(f.model.num_operators(), kUnassigned);
  RodOptions options;
  options.tie_break = RodOptions::ClassITieBreak::kMinCrossArcs;
  EXPECT_FALSE(RodPlaceIncremental(f.model, system, none, options).ok());
}

TEST(RepairTest, NodeLossMovesOnlyOrphans) {
  Fixture f(4, 4, 15);
  const SystemSpec old_system = SystemSpec::Homogeneous(4);
  auto original = RodPlace(f.model, old_system);
  ASSERT_TRUE(original.ok());

  // Node 2 dies; survivors keep their index order in the new 3-node system.
  const SystemSpec new_system = SystemSpec::Homogeneous(3);
  const std::vector<size_t> mapping = {0, 1, kUnassigned, 2};
  auto repaired = RepairPlacement(f.model, *original, new_system, mapping);
  ASSERT_TRUE(repaired.ok());

  size_t orphans = 0;
  for (size_t j = 0; j < f.model.num_operators(); ++j) {
    const size_t old_node = original->node_of(j);
    if (old_node == 2) {
      ++orphans;
    } else {
      EXPECT_EQ(repaired->placement.node_of(j), mapping[old_node])
          << "survivor " << j << " moved";
    }
  }
  EXPECT_EQ(repaired->operators_moved, orphans);
  EXPECT_GT(orphans, 0u);
}

TEST(RepairTest, RepairedPlanStaysResilient) {
  Fixture f(5, 5, 20);
  const SystemSpec old_system = SystemSpec::Homogeneous(5);
  auto original = RodPlace(f.model, old_system);
  ASSERT_TRUE(original.ok());
  const SystemSpec new_system = SystemSpec::Homogeneous(4);
  const std::vector<size_t> mapping = {0, 1, 2, 3, kUnassigned};
  auto repaired = RepairPlacement(f.model, *original, new_system, mapping);
  ASSERT_TRUE(repaired.ok());

  // Compare against ROD-from-scratch on the shrunken cluster: the repair
  // should retain most of the resilience at a fraction of the moves.
  auto scratch = RodPlace(f.model, new_system);
  ASSERT_TRUE(scratch.ok());
  const PlacementEvaluator eval(f.model, new_system);
  geom::VolumeOptions vol;
  vol.num_samples = 8192;
  const double r_repair = *eval.RatioToIdeal(repaired->placement, vol);
  const double r_scratch = *eval.RatioToIdeal(*scratch, vol);
  EXPECT_GT(r_repair, 0.7 * r_scratch);

  size_t scratch_moves = 0;
  for (size_t j = 0; j < f.model.num_operators(); ++j) {
    const size_t old_node = original->node_of(j);
    const size_t carried =
        old_node < mapping.size() && mapping[old_node] != kUnassigned
            ? mapping[old_node]
            : kUnassigned;
    scratch_moves += scratch->node_of(j) != carried;
  }
  EXPECT_LT(repaired->operators_moved, scratch_moves);
}

TEST(RepairTest, ScaleOutWithRebalanceBudget) {
  Fixture f(6, 3, 12);
  const SystemSpec old_system = SystemSpec::Homogeneous(2);
  auto original = RodPlace(f.model, old_system);
  ASSERT_TRUE(original.ok());

  // Add two fresh nodes; without rebalancing nothing moves at all.
  const SystemSpec new_system = SystemSpec::Homogeneous(4);
  const std::vector<size_t> mapping = {0, 1};
  auto frozen = RepairPlacement(f.model, *original, new_system, mapping);
  ASSERT_TRUE(frozen.ok());
  EXPECT_EQ(frozen->operators_moved, 0u);

  RepairOptions options;
  options.max_rebalance_moves = 6;
  auto rebalanced =
      RepairPlacement(f.model, *original, new_system, mapping, options);
  ASSERT_TRUE(rebalanced.ok());
  EXPECT_GT(rebalanced->operators_moved, 0u);
  EXPECT_LE(rebalanced->operators_moved, 6u);
  // Every move strictly improved the plane distance.
  EXPECT_GT(rebalanced->plane_distance, frozen->plane_distance);
}

TEST(RepairTest, Validation) {
  Fixture f(7);
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = RodPlace(f.model, system);
  ASSERT_TRUE(plan.ok());
  // Mapping size must match the old node count.
  EXPECT_FALSE(RepairPlacement(f.model, *plan, system, {0}).ok());
  // Mapping must stay inside the new system.
  EXPECT_FALSE(RepairPlacement(f.model, *plan, system, {0, 5}).ok());
}

}  // namespace
}  // namespace rod::place
