// Trace-merge round trip: real Telemetry instances dump Chrome traces
// with per-process clock offsets; the merge must rebase every timestamp
// onto the coordinator clock, give each process a named row with its own
// pid, and emit timed events in non-decreasing order. Plus JSON-reader
// coverage for the parsing underneath.

#include "telemetry/trace_merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/json_reader.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace rod::telemetry {
namespace {

TEST(JsonReaderTest, ParsesScalarsArraysObjects) {
  auto v = ParseJson(R"({"a": 1.5, "b": [true, null, "x\né"], "c": {}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->NumberOr("a", 0.0), 1.5);
  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].boolean());
  EXPECT_TRUE(b->items()[1].is_null());
  EXPECT_EQ(b->items()[2].string_value(), "x\n\xc3\xa9");
  EXPECT_TRUE(v->Find("c")->is_object());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonReaderTest, RejectsMalformedInputWithOffset) {
  for (const char* bad : {"{", "[1,]", "{\"a\" 1}", "tru", "1 2", ""}) {
    const auto v = ParseJson(bad);
    EXPECT_FALSE(v.ok()) << "accepted: " << bad;
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(JsonReaderTest, SurrogatePairDecodesToUtf8) {
  auto v = ParseJson(R"("😀")");  // U+1F600.
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "\xf0\x9f\x98\x80");
}

TEST(JsonReaderTest, WriterRoundTripPreservesStructure) {
  const std::string doc =
      R"({"name": "s\"p", "n": [1, 2.5, -3], "flag": false, "none": null})";
  auto v = ParseJson(doc);
  ASSERT_TRUE(v.ok());
  std::ostringstream out;
  {
    JsonWriter w(out);
    WriteJsonValue(*v, w);
  }
  auto again = ParseJson(out.str());
  ASSERT_TRUE(again.ok()) << out.str();
  EXPECT_EQ(again->StringOr("name", ""), "s\"p");
  EXPECT_DOUBLE_EQ(again->Find("n")->items()[1].number(), 2.5);
  EXPECT_FALSE(again->Find("flag")->boolean());
  EXPECT_TRUE(again->Find("none")->is_null());
}

/// One synthetic per-process dump: spans recorded on a manual clock,
/// exported with the cluster's process stamp (name + clock offset).
std::string MakeDump(const std::string& name, double offset_us,
                     double worker_id, double first_span_at_us) {
  TelemetryOptions options;
  options.manual_clock = true;
  Telemetry tel(options);
  tel.AdvanceClock(first_span_at_us);
  {
    TraceSpan span(&tel, "test", "work");
    tel.AdvanceClock(100.0);
  }
  tel.AdvanceClock(50.0);
  tel.RecordInstant("test", "tick");

  ChromeTraceProcess process;
  process.name = name;
  process.metadata["clock_offset_us"] = offset_us;
  process.metadata["worker_id"] = worker_id;
  std::ostringstream out;
  tel.WriteChromeTrace(out, process);
  return out.str();
}

TEST(TraceMergeTest, ParseReadsProcessStamp) {
  const std::string dump = MakeDump("worker-a", -2500.0, 1.0, 10.0);
  auto parsed = ParseChromeTraceDump(dump, "fallback");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->process_name, "worker-a");
  EXPECT_DOUBLE_EQ(parsed->clock_offset_us, -2500.0);
  EXPECT_DOUBLE_EQ(parsed->worker_id, 1.0);
  EXPECT_TRUE(parsed->events.is_array());
  EXPECT_FALSE(parsed->events.items().empty());
}

TEST(TraceMergeTest, BareArrayUsesFallbackName) {
  auto parsed = ParseChromeTraceDump(
      R"([{"ph": "X", "ts": 1, "dur": 2, "pid": 9, "tid": 0, "name": "e"}])",
      "w0.trace.json");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->process_name, "w0.trace.json");
  EXPECT_DOUBLE_EQ(parsed->clock_offset_us, 0.0);
}

TEST(TraceMergeTest, MergeRebasesSortsAndNamesProcesses) {
  // Worker clocks: a reads 1000us behind the coordinator (offset +1000),
  // b reads 500us ahead (offset -500). Events land interleaved only
  // after rebasing.
  std::vector<TraceDump> dumps;
  for (const auto& [name, offset, wid, start] :
       {std::tuple<const char*, double, double, double>{"coordinator", 0.0,
                                                        -1.0, 1200.0},
        {"worker-a", 1000.0, 0.0, 10.0},
        {"worker-b", -500.0, 1.0, 2000.0}}) {
    auto parsed =
        ParseChromeTraceDump(MakeDump(name, offset, wid, start), name);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    dumps.push_back(std::move(parsed.value()));
  }

  std::ostringstream out;
  ASSERT_TRUE(MergeChromeTraces(dumps, out).ok());
  auto merged = ParseJson(out.str());
  ASSERT_TRUE(merged.ok()) << out.str();

  const JsonValue* rod = merged->Find("rod");
  ASSERT_NE(rod, nullptr);
  EXPECT_EQ(rod->StringOr("schema", ""), "rod.trace_merge.v1");
  EXPECT_DOUBLE_EQ(rod->NumberOr("processes", 0.0), 3.0);

  const JsonValue* events = merged->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // One process_name metadata row per input, pids 1..3 matching names.
  std::vector<std::pair<double, std::string>> rows;
  double prev_ts = -1.0;
  size_t timed = 0;
  for (const JsonValue& event : events->items()) {
    if (event.StringOr("ph", "") == "M") {
      if (event.StringOr("name", "") != "process_name") continue;
      rows.emplace_back(event.NumberOr("pid", 0.0),
                        event.Find("args")->StringOr("name", ""));
      continue;
    }
    ++timed;
    const double ts = event.NumberOr("ts", std::nan(""));
    EXPECT_GE(ts, prev_ts) << "merged timestamps regressed";
    prev_ts = ts;
    const double pid = event.NumberOr("pid", 0.0);
    EXPECT_GE(pid, 1.0);
    EXPECT_LE(pid, 3.0);
  }
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::pair<double, std::string>{1.0, "coordinator"}));
  EXPECT_EQ(rows[1], (std::pair<double, std::string>{2.0, "worker-a"}));
  EXPECT_EQ(rows[2], (std::pair<double, std::string>{3.0, "worker-b"}));
  // Every input contributed its span and instant.
  EXPECT_EQ(timed, 6u);

  // Spot-check the rebasing: worker-a's span started at 10us on its own
  // clock = 1010us on the coordinator clock, which sorts it first.
  const JsonValue& first = *std::find_if(
      events->items().begin(), events->items().end(),
      [](const JsonValue& e) { return e.StringOr("ph", "") != "M"; });
  EXPECT_DOUBLE_EQ(first.NumberOr("ts", 0.0), 1010.0);
  EXPECT_DOUBLE_EQ(first.NumberOr("pid", 0.0), 2.0);
}

TEST(TraceMergeTest, EmptyInputIsRejected) {
  std::ostringstream out;
  EXPECT_EQ(MergeChromeTraces({}, out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rod::telemetry
