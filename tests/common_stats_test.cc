// Tests for running and batch statistics.

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rod {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i % 2 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(PercentileTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({3.0}, 0.99), 3.0);
}

TEST(PercentileTest, InterpolatesOrderStatistics) {
  std::vector<double> v = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 2.5);
  EXPECT_NEAR(Percentile(v, 1.0 / 3.0), 2.0, 1e-12);
}

TEST(PearsonTest, PerfectCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> b = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAntiCorrelation) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {3.0, 2.0, 1.0};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesIsZero) {
  std::vector<double> a = {1.0, 1.0, 1.0};
  std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(PearsonTest, IndependentNearZero) {
  std::vector<double> a, b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(std::sin(0.7 * i));
    b.push_back(std::cos(1.3 * i + 0.5));
  }
  EXPECT_NEAR(PearsonCorrelation(a, b), 0.0, 0.1);
}

TEST(MeanStdDevTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 3.0}), 1.0, 1e-12);  // population stddev
}

TEST(AggregateSeriesTest, SumsGroupsAndDropsTail) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_EQ(AggregateSeries(v, 2), (std::vector<double>{3.0, 7.0}));
  EXPECT_EQ(AggregateSeries(v, 5), (std::vector<double>{15.0}));
  EXPECT_TRUE(AggregateSeries(v, 6).empty());
  EXPECT_EQ(AggregateSeries(v, 1), v);
}

}  // namespace
}  // namespace rod
