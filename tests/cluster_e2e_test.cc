// End-to-end cluster tests with real processes: the coordinator runs in
// the test process while each worker is fork()ed and runs RunWorker()
// until shutdown. The chaos case kill -9's one worker mid-run and
// asserts the full recovery pipeline — missed-heartbeat detection,
// supervisor-driven plan diff (pause -> drain -> reassign -> resume),
// survivor completion, and a populated IncidentReport.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/worker.h"
#include "common/random.h"
#include "query/graph_gen.h"
#include "telemetry/json_reader.h"

namespace rod::cluster {
namespace {

query::QueryGraph TestGraph() {
  query::GraphGenOptions options;
  options.num_input_streams = 3;
  options.ops_per_tree = 6;
  Rng rng(7);
  return query::GenerateRandomTrees(options, rng);
}

CoordinatorOptions FastOptions() {
  CoordinatorOptions options;
  options.expected_workers = 3;
  options.heartbeat_interval = 0.1;
  options.heartbeat_timeout = 0.5;
  options.duration = 2.0;
  options.default_rate = 200.0;
  options.finish_grace = 0.4;
  options.register_timeout = 20.0;
  return options;
}

/// Forks a worker process running RunWorker against `port`; returns its
/// pid. The child never returns into gtest (straight to _exit).
pid_t SpawnWorker(uint16_t port, bool serve_http = false) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  WorkerOptions options;
  options.coordinator_port = port;
  options.serve_http = serve_http;
  options.name = "e2e-worker-" + std::to_string(::getpid());
  const Status status = RunWorker(options);
  ::_exit(status.ok() ? 0 : 1);
}

/// One raw loopback HTTP GET; returns the whole response (or "").
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Body of a 200 response; empty on any other status (or no response).
std::string HttpBody(const std::string& response) {
  if (response.find("HTTP/1.1 200") != 0) return "";
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// The value text of one exposition series (exact name + labels match),
/// or "" if the series is absent.
std::string SeriesValue(const std::string& text, const std::string& series) {
  const std::string needle = series + " ";
  size_t pos;
  if (text.rfind(needle, 0) == 0) {
    pos = 0;
  } else {
    pos = text.find("\n" + needle);
    if (pos == std::string::npos) return "";
    ++pos;
  }
  const size_t start = pos + needle.size();
  return text.substr(start, text.find('\n', start) - start);
}

int WaitFor(pid_t pid) {
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return wstatus;
}

TEST(ClusterE2eTest, ThreeWorkerRunCompletesAndAggregates) {
  Coordinator coordinator(TestGraph(), FastOptions());
  ASSERT_TRUE(coordinator.Listen().ok());

  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(SpawnWorker(coordinator.port()));

  const Status run = coordinator.Run();
  EXPECT_TRUE(run.ok()) << run.ToString();

  for (const pid_t pid : workers) {
    const int wstatus = WaitFor(pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
  }

  const ClusterReport& report = coordinator.report();
  EXPECT_EQ(report.num_workers, 3u);
  EXPECT_EQ(report.plan_version, 1u);
  EXPECT_FALSE(report.had_incident);
  EXPECT_GT(report.plan_ship_seconds, 0.0);
  EXPECT_LT(report.plan_ship_seconds, 5.0);
  // ~3 streams * 200/s * 2s of generation, minus tick rounding.
  EXPECT_GT(report.totals.generated, 600u);
  EXPECT_GT(report.totals.delivered, 0u);
  EXPECT_EQ(report.totals.lost_tuples, 0u);
  // Placement spreads operators, so tuples really crossed processes, and
  // every shipped batch was received by a peer.
  EXPECT_GT(report.totals.shipped, 0u);
  EXPECT_EQ(report.totals.shipped, report.totals.received);
  ASSERT_EQ(report.workers.size(), 3u);
  for (const auto& worker : report.workers) {
    EXPECT_TRUE(worker.alive);
    EXPECT_TRUE(worker.final_stats);
    // Every worker's clock got aligned during the sync burst. All three
    // processes share this machine's clock, so the estimated offset is
    // bounded by scheduling noise, not real skew.
    EXPECT_TRUE(worker.clock_synced);
    EXPECT_GT(worker.clock_rtt_us, 0.0);
    EXPECT_LT(std::abs(worker.clock_offset_us), 1e6);
  }
  // Tuples crossed processes, so the federated offset-corrected ship
  // latency histogram is populated and internally consistent.
  EXPECT_GT(report.ship_latency.count, 0u);
  EXPECT_GT(report.ship_latency.mean_us, 0.0);
  EXPECT_LE(report.ship_latency.p50_us, report.ship_latency.p99_us);
  EXPECT_LE(report.ship_latency.p99_us, report.ship_latency.max_us);
}

TEST(ClusterE2eTest, FederatedMetricsAgreeWithWorkerPlanes) {
  CoordinatorOptions options = FastOptions();
  options.serve_http = true;
  options.duration = 3.0;
  Coordinator coordinator(TestGraph(), options);
  ASSERT_TRUE(coordinator.Listen().ok());
  const uint16_t http_port = coordinator.http_port();
  ASSERT_NE(http_port, 0);

  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) {
    workers.push_back(SpawnWorker(coordinator.port(), /*serve_http=*/true));
  }

  // Mid-run scraper: once the coordinator is ready, poll until one
  // consistent scrape where every worker's own /metrics plane agrees
  // with its worker-labeled series in the federated /metrics. Counters
  // lag by at most one heartbeat, so disagreement is retried, not fatal.
  bool agreed = false;
  std::string failure = "scrape loop never saw a ready coordinator";
  std::thread scraper([&] {
    for (int attempt = 0; attempt < 200 && !agreed; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
      if (HttpBody(HttpGet(http_port, "/readyz")).empty()) continue;
      const std::string summary = HttpBody(HttpGet(http_port, "/cluster.json"));
      auto cluster = telemetry::ParseJson(summary);
      if (!cluster.ok()) continue;
      const telemetry::JsonValue* members = cluster->Find("workers");
      if (members == nullptr || !members->is_array() ||
          members->items().size() != 3) {
        failure = "cluster.json missing 3 workers: " + summary;
        continue;
      }
      const std::string fed = HttpBody(HttpGet(http_port, "/metrics"));
      bool all = true;
      for (const telemetry::JsonValue& w : members->items()) {
        const int wid = static_cast<int>(w.NumberOr("worker_id", -1.0));
        const std::string name = w.StringOr("name", "");
        const auto wport = static_cast<uint16_t>(w.NumberOr("http_port", 0.0));
        const telemetry::JsonValue* clock = w.Find("clock");
        if (wport == 0 || clock == nullptr ||
            !clock->Find("synced")->boolean()) {
          failure = "worker not scrapeable/synced yet: " + summary;
          all = false;
          break;
        }
        const std::string plane = HttpBody(HttpGet(wport, "/metrics"));
        const std::string label =
            "{name=\"" + name + "\",worker=\"" + std::to_string(wid) + "\"}";
        // Exact agreement: the coordinator's clock estimate vs the last
        // kClockSync the worker installed, and the kStatsReport-federated
        // sync counter vs the worker's live one.
        for (const char* family :
             {"cluster_clock_offset_us", "cluster_clock_syncs"}) {
          const std::string fed_value = SeriesValue(fed, family + label);
          const std::string plane_value = SeriesValue(plane, family);
          if (fed_value.empty() || fed_value != plane_value) {
            failure = std::string(family) + label + ": federated=\"" +
                      fed_value + "\" plane=\"" + plane_value + "\"";
            all = false;
            break;
          }
        }
        if (!all) break;
        // Monotone counter: the federated cumulative is a recent snapshot
        // of the live series — positive and never ahead of it.
        const std::string fed_tuples =
            SeriesValue(fed, "cluster_tuples_processed" + label);
        const std::string plane_tuples =
            SeriesValue(plane, "cluster_tuples_processed");
        if (fed_tuples.empty() || plane_tuples.empty() ||
            std::strtod(fed_tuples.c_str(), nullptr) <= 0.0 ||
            std::strtod(fed_tuples.c_str(), nullptr) >
                std::strtod(plane_tuples.c_str(), nullptr)) {
          failure = "cluster_tuples_processed" + label + ": federated=\"" +
                    fed_tuples + "\" plane=\"" + plane_tuples + "\"";
          all = false;
          break;
        }
      }
      if (all) agreed = true;
    }
  });

  const Status run = coordinator.Run();
  scraper.join();
  EXPECT_TRUE(run.ok()) << run.ToString();
  for (const pid_t pid : workers) {
    const int wstatus = WaitFor(pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
  }
  EXPECT_TRUE(agreed) << failure;
}

TEST(ClusterE2eTest, KillNineMidRunDetectsRepairsAndCompletes) {
  CoordinatorOptions options = FastOptions();
  options.duration = 3.0;
  Coordinator coordinator(TestGraph(), options);
  ASSERT_TRUE(coordinator.Listen().ok());

  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(SpawnWorker(coordinator.port()));

  // Real-process chaos: SIGKILL one worker mid-run — no cleanup, no
  // goodbye frame, exactly like an OOM kill or machine loss.
  std::thread killer([&workers] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    ::kill(workers[0], SIGKILL);
  });

  const Status run = coordinator.Run();
  killer.join();
  EXPECT_TRUE(run.ok()) << run.ToString();

  const int victim_status = WaitFor(workers[0]);
  EXPECT_TRUE(WIFSIGNALED(victim_status) &&
              WTERMSIG(victim_status) == SIGKILL);
  EXPECT_TRUE(WIFEXITED(WaitFor(workers[1])));
  EXPECT_TRUE(WIFEXITED(WaitFor(workers[2])));

  const ClusterReport& report = coordinator.report();
  ASSERT_TRUE(report.had_incident);
  const sim::IncidentReport& incident = report.incident;

  // Detection came from the heartbeat deadline: the gap between the last
  // proof of life and detection is at least the timeout and not wildly
  // more (generous slack for loaded CI machines).
  EXPECT_GE(incident.detect_time, incident.crash_time);
  const double detection_delay = incident.detect_time - incident.crash_time;
  EXPECT_GE(detection_delay, options.heartbeat_timeout * 0.9);
  EXPECT_LT(detection_delay, options.heartbeat_timeout + 5.0);

  // The supervisor re-homed the victim's operators via the plan-diff
  // protocol and the plan version advanced.
  EXPECT_TRUE(incident.recovered);
  EXPECT_GT(incident.operators_moved, 0u);
  EXPECT_GE(incident.plan_applied_time, incident.detect_time);
  EXPECT_GE(report.plan_version, 2u);

  // Exactly one worker died; the survivors reported final stats.
  size_t alive = 0, finals = 0;
  for (const auto& worker : report.workers) {
    alive += worker.alive ? 1 : 0;
    finals += worker.final_stats ? 1 : 0;
  }
  EXPECT_EQ(alive, 2u);
  EXPECT_EQ(finals, 2u);

  // The cluster kept delivering after repair, and the loss breakdown is
  // populated consistently (ships to the dead peer during the detection
  // window are network loss).
  EXPECT_GT(report.totals.delivered, 0u);
  EXPECT_EQ(incident.lost_tuples,
            incident.lost_queued + incident.lost_inflight +
                incident.lost_network + incident.rejected_inputs);
  EXPECT_GE(incident.availability, 0.0);
  EXPECT_LE(incident.availability, 1.0);

  // The repair's phase clocks were captured: detection delay matches the
  // heartbeat deadline math above, and every phase has a sane duration.
  ASSERT_TRUE(report.phases.valid);
  EXPECT_NEAR(report.phases.detect_seconds, detection_delay, 1e-9);
  EXPECT_GE(report.phases.pause_drain_seconds, 0.0);
  EXPECT_GE(report.phases.reassign_seconds, 0.0);
  EXPECT_GE(report.phases.resume_seconds, 0.0);
  EXPECT_GT(report.phases.pause_drain_seconds + report.phases.reassign_seconds +
                report.phases.resume_seconds,
            0.0);

  // Both survivors (and only they — the victim cannot answer) responded
  // to the kFreeze broadcast with a frozen flight-recorder snapshot.
  std::vector<uint32_t> survivors;
  for (const auto& worker : report.workers) {
    if (worker.alive) survivors.push_back(worker.worker_id);
  }
  EXPECT_EQ(report.frozen_workers, survivors);

  // The incident landed in the coordinator's flight recorder as the
  // distributed composite: engine-schema incident + repair phases +
  // embedded per-worker frozen snapshots.
  EXPECT_EQ(coordinator.flight_recorder().incident_count(), 1u);
  const std::vector<std::string> incidents =
      coordinator.flight_recorder().IncidentJsons();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_NE(incidents[0].find("\"phases\""), std::string::npos);
  EXPECT_NE(incidents[0].find("\"worker_snapshots\""), std::string::npos);
}

TEST(ClusterE2eTest, CoordinatorTimesOutWhenWorkersNeverRegister) {
  CoordinatorOptions options = FastOptions();
  options.register_timeout = 0.3;
  Coordinator coordinator(TestGraph(), options);
  const Status run = coordinator.Run();
  EXPECT_EQ(run.code(), StatusCode::kUnavailable) << run.ToString();
}

}  // namespace
}  // namespace rod::cluster
