// End-to-end cluster tests with real processes: the coordinator runs in
// the test process while each worker is fork()ed and runs RunWorker()
// until shutdown. The chaos case kill -9's one worker mid-run and
// asserts the full recovery pipeline — missed-heartbeat detection,
// supervisor-driven plan diff (pause -> drain -> reassign -> resume),
// survivor completion, and a populated IncidentReport.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <thread>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/worker.h"
#include "common/random.h"
#include "query/graph_gen.h"

namespace rod::cluster {
namespace {

query::QueryGraph TestGraph() {
  query::GraphGenOptions options;
  options.num_input_streams = 3;
  options.ops_per_tree = 6;
  Rng rng(7);
  return query::GenerateRandomTrees(options, rng);
}

CoordinatorOptions FastOptions() {
  CoordinatorOptions options;
  options.expected_workers = 3;
  options.heartbeat_interval = 0.1;
  options.heartbeat_timeout = 0.5;
  options.duration = 2.0;
  options.default_rate = 200.0;
  options.finish_grace = 0.4;
  options.register_timeout = 20.0;
  return options;
}

/// Forks a worker process running RunWorker against `port`; returns its
/// pid. The child never returns into gtest (straight to _exit).
pid_t SpawnWorker(uint16_t port) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  WorkerOptions options;
  options.coordinator_port = port;
  options.serve_http = false;
  options.name = "e2e-worker-" + std::to_string(::getpid());
  const Status status = RunWorker(options);
  ::_exit(status.ok() ? 0 : 1);
}

int WaitFor(pid_t pid) {
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  return wstatus;
}

TEST(ClusterE2eTest, ThreeWorkerRunCompletesAndAggregates) {
  Coordinator coordinator(TestGraph(), FastOptions());
  ASSERT_TRUE(coordinator.Listen().ok());

  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(SpawnWorker(coordinator.port()));

  const Status run = coordinator.Run();
  EXPECT_TRUE(run.ok()) << run.ToString();

  for (const pid_t pid : workers) {
    const int wstatus = WaitFor(pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
  }

  const ClusterReport& report = coordinator.report();
  EXPECT_EQ(report.num_workers, 3u);
  EXPECT_EQ(report.plan_version, 1u);
  EXPECT_FALSE(report.had_incident);
  EXPECT_GT(report.plan_ship_seconds, 0.0);
  EXPECT_LT(report.plan_ship_seconds, 5.0);
  // ~3 streams * 200/s * 2s of generation, minus tick rounding.
  EXPECT_GT(report.totals.generated, 600u);
  EXPECT_GT(report.totals.delivered, 0u);
  EXPECT_EQ(report.totals.lost_tuples, 0u);
  // Placement spreads operators, so tuples really crossed processes, and
  // every shipped batch was received by a peer.
  EXPECT_GT(report.totals.shipped, 0u);
  EXPECT_EQ(report.totals.shipped, report.totals.received);
  ASSERT_EQ(report.workers.size(), 3u);
  for (const auto& worker : report.workers) {
    EXPECT_TRUE(worker.alive);
    EXPECT_TRUE(worker.final_stats);
  }
}

TEST(ClusterE2eTest, KillNineMidRunDetectsRepairsAndCompletes) {
  CoordinatorOptions options = FastOptions();
  options.duration = 3.0;
  Coordinator coordinator(TestGraph(), options);
  ASSERT_TRUE(coordinator.Listen().ok());

  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(SpawnWorker(coordinator.port()));

  // Real-process chaos: SIGKILL one worker mid-run — no cleanup, no
  // goodbye frame, exactly like an OOM kill or machine loss.
  std::thread killer([&workers] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    ::kill(workers[0], SIGKILL);
  });

  const Status run = coordinator.Run();
  killer.join();
  EXPECT_TRUE(run.ok()) << run.ToString();

  const int victim_status = WaitFor(workers[0]);
  EXPECT_TRUE(WIFSIGNALED(victim_status) &&
              WTERMSIG(victim_status) == SIGKILL);
  EXPECT_TRUE(WIFEXITED(WaitFor(workers[1])));
  EXPECT_TRUE(WIFEXITED(WaitFor(workers[2])));

  const ClusterReport& report = coordinator.report();
  ASSERT_TRUE(report.had_incident);
  const sim::IncidentReport& incident = report.incident;

  // Detection came from the heartbeat deadline: the gap between the last
  // proof of life and detection is at least the timeout and not wildly
  // more (generous slack for loaded CI machines).
  EXPECT_GE(incident.detect_time, incident.crash_time);
  const double detection_delay = incident.detect_time - incident.crash_time;
  EXPECT_GE(detection_delay, options.heartbeat_timeout * 0.9);
  EXPECT_LT(detection_delay, options.heartbeat_timeout + 5.0);

  // The supervisor re-homed the victim's operators via the plan-diff
  // protocol and the plan version advanced.
  EXPECT_TRUE(incident.recovered);
  EXPECT_GT(incident.operators_moved, 0u);
  EXPECT_GE(incident.plan_applied_time, incident.detect_time);
  EXPECT_GE(report.plan_version, 2u);

  // Exactly one worker died; the survivors reported final stats.
  size_t alive = 0, finals = 0;
  for (const auto& worker : report.workers) {
    alive += worker.alive ? 1 : 0;
    finals += worker.final_stats ? 1 : 0;
  }
  EXPECT_EQ(alive, 2u);
  EXPECT_EQ(finals, 2u);

  // The cluster kept delivering after repair, and the loss breakdown is
  // populated consistently (ships to the dead peer during the detection
  // window are network loss).
  EXPECT_GT(report.totals.delivered, 0u);
  EXPECT_EQ(incident.lost_tuples,
            incident.lost_queued + incident.lost_inflight +
                incident.lost_network + incident.rejected_inputs);
  EXPECT_GE(incident.availability, 0.0);
  EXPECT_LE(incident.availability, 1.0);

  // The incident landed in the coordinator's flight recorder.
  EXPECT_EQ(coordinator.flight_recorder().incident_count(), 1u);
}

TEST(ClusterE2eTest, CoordinatorTimesOutWhenWorkersNeverRegister) {
  CoordinatorOptions options = FastOptions();
  options.register_timeout = 0.3;
  Coordinator coordinator(TestGraph(), options);
  const Status run = coordinator.Run();
  EXPECT_EQ(run.code(), StatusCode::kUnavailable) << run.ToString();
}

}  // namespace
}  // namespace rod::cluster
