// Tests for PlacementEvaluator and communication-aware node coefficients.

#include "placement/evaluator.h"

#include <gtest/gtest.h>

#include "query/load_model.h"
#include "query/query_graph.h"

namespace rod::place {
namespace {

using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

/// The paper's Figure 4 / Example 2 fixture.
struct Fixture {
  QueryGraph g;
  query::LoadModel model;
  SystemSpec system = SystemSpec::Homogeneous(2);

  Fixture() {
    const InputStreamId i1 = g.AddInputStream("I1");
    const InputStreamId i2 = g.AddInputStream("I2");
    auto o1 = g.AddOperator({.name = "o1", .kind = OperatorKind::kMap,
                             .cost = 4.0, .selectivity = 1.0},
                            {StreamRef::Input(i1)});
    auto o2 = g.AddOperator({.name = "o2", .kind = OperatorKind::kMap,
                             .cost = 6.0, .selectivity = 1.0},
                            {StreamRef::Op(*o1)});
    auto o3 = g.AddOperator({.name = "o3", .kind = OperatorKind::kFilter,
                             .cost = 9.0, .selectivity = 0.5},
                            {StreamRef::Input(i2)});
    auto o4 = g.AddOperator({.name = "o4", .kind = OperatorKind::kMap,
                             .cost = 4.0, .selectivity = 1.0},
                            {StreamRef::Op(*o3)});
    EXPECT_TRUE(o4.ok());
    model = *query::BuildLoadModel(g);
  }
};

TEST(EvaluatorTest, WeightMatrixHandChecked) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  // Plan (a): {o1,o2} | {o3,o4} -> L^n = [[10,0],[0,11]], w = [[2,0],[0,2]].
  auto w = eval.WeightMatrix(Placement(2, {0, 0, 1, 1}));
  ASSERT_TRUE(w.ok());
  EXPECT_NEAR((*w)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*w)(0, 1), 0.0, 1e-12);
  EXPECT_NEAR((*w)(1, 1), 2.0, 1e-12);
}

TEST(EvaluatorTest, MismatchedPlacementRejected) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  EXPECT_FALSE(eval.WeightMatrix(Placement(2, {0, 0, 1})).ok());
  EXPECT_FALSE(eval.WeightMatrix(Placement(3, {0, 0, 1, 2})).ok());
}

TEST(EvaluatorTest, NodeLoadsAndUtilization) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  const Placement plan(2, {0, 0, 1, 1});
  const Vector loads = eval.NodeLoadsAt(plan, Vector{0.05, 0.02});
  EXPECT_NEAR(loads[0], 10.0 * 0.05, 1e-12);
  EXPECT_NEAR(loads[1], 11.0 * 0.02, 1e-12);
  const Vector util = eval.NodeUtilizationAt(plan, Vector{0.05, 0.02});
  EXPECT_NEAR(util[0], 0.5, 1e-12);
}

TEST(EvaluatorTest, FeasibleAtBoundary) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  const Placement plan(2, {0, 0, 1, 1});
  // Node 0 saturates at r1 = C/10 = 0.1.
  EXPECT_TRUE(eval.FeasibleAt(plan, Vector{0.1, 0.0}));
  EXPECT_FALSE(eval.FeasibleAt(plan, Vector{0.11, 0.0}));
}

TEST(EvaluatorTest, RatioToIdealMatchesExactGeometry) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  geom::VolumeOptions options;
  options.num_samples = 1u << 16;
  auto ratio = eval.RatioToIdeal(Placement(2, {0, 0, 1, 1}), options);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 0.5, 0.01);  // exact value from polygon cross-check
}

TEST(EvaluatorTest, MinPlaneDistance) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  auto d = eval.MinPlaneDistance(Placement(2, {0, 0, 1, 1}));
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.5, 1e-12);  // rows (2,0) and (0,2): 1/2
}

TEST(EvaluatorTest, IdealVolumeClosedForm) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  auto v = eval.IdealVolume();
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 4.0 / (2.0 * 10.0 * 11.0), 1e-12);
}

TEST(EvaluatorTest, IdealVolumeRejectsLinearizedModels) {
  QueryGraph g;
  const InputStreamId i1 = g.AddInputStream("I1");
  const InputStreamId i2 = g.AddInputStream("I2");
  auto j = g.AddOperator({.name = "j", .kind = OperatorKind::kJoin,
                          .cost = 1.0, .selectivity = 0.5, .window = 1.0},
                         {StreamRef::Input(i1), StreamRef::Input(i2)});
  ASSERT_TRUE(j.ok());
  auto model = query::BuildLinearizedLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  const PlacementEvaluator eval(*model, system);
  EXPECT_EQ(eval.IdealVolume().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExplainTest, ReportNamesOperatorsAndMetrics) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  auto report = ExplainPlacement(eval, Placement(2, {0, 0, 1, 1}), &f.g);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("o1"), std::string::npos);
  EXPECT_NE(report->find("node 1"), std::string::npos);
  EXPECT_NE(report->find("min plane distance"), std::string::npos);
  EXPECT_NE(report->find("feasible-set ratio"), std::string::npos);
}

TEST(ExplainTest, FallsBackToOpIdsWithoutGraph) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  auto report = ExplainPlacement(eval, Placement(2, {0, 0, 1, 1}));
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("op0"), std::string::npos);
}

TEST(ExplainTest, PropagatesEvaluationErrors) {
  Fixture f;
  const PlacementEvaluator eval(f.model, f.system);
  EXPECT_FALSE(ExplainPlacement(eval, Placement(2, {0, 0, 1})).ok());
}

TEST(CommCoeffsTest, LocalArcsAddNothing) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap, .cost = 1.0},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap, .cost = 2.0},
                         {StreamRef::Op(*a)}, {0.5});
  ASSERT_TRUE(b.ok());
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());

  const Placement colocated(2, {0, 0});
  const Matrix with = NodeCoeffsWithComm(colocated, *model, g);
  const Matrix base = colocated.NodeCoeffs(model->op_coeffs());
  EXPECT_TRUE(with.AlmostEquals(base));
}

TEST(CommCoeffsTest, CrossingArcChargesBothEndpoints) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                          .cost = 1.0, .selectivity = 0.5},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap, .cost = 2.0},
                         {StreamRef::Op(*a)}, {0.4});
  ASSERT_TRUE(b.ok());
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());

  const Placement split(2, {0, 1});
  const Matrix with = NodeCoeffsWithComm(split, *model, g);
  const Matrix base = split.NodeCoeffs(model->op_coeffs());
  // Arc rate coefficient = selectivity(a) = 0.5 per unit input rate;
  // each endpoint pays 0.4 * 0.5 = 0.2 extra per unit rate.
  EXPECT_NEAR(with(0, 0) - base(0, 0), 0.2, 1e-12);
  EXPECT_NEAR(with(1, 0) - base(1, 0), 0.2, 1e-12);
}

TEST(CommCoeffsTest, CrossingJoinOutputChargesAuxVariable) {
  // A crossing arc downstream of a join transfers tuples at the join's
  // *output* rate — an auxiliary variable after linearization — so the
  // comm charge must land on the aux column, keeping the model linear.
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("L");
  const InputStreamId i1 = g.AddInputStream("R");
  auto j = g.AddOperator({.name = "j", .kind = OperatorKind::kJoin,
                          .cost = 1e-5, .selectivity = 0.5, .window = 1.0},
                         {StreamRef::Input(i0), StreamRef::Input(i1)});
  auto d = g.AddOperator({.name = "d", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Op(*j)}, {2e-4});
  ASSERT_TRUE(d.ok());
  auto model = query::BuildLinearizedLoadModel(g);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->num_vars(), 3u);  // L, R, join-out

  const Placement split(2, {0, 1});
  const Matrix with = NodeCoeffsWithComm(split, *model, g);
  const Matrix base = split.NodeCoeffs(model->op_coeffs());
  // Aux column (index 2) gains 2e-4 on each endpoint; physical columns
  // are untouched by the crossing.
  EXPECT_NEAR(with(0, 2) - base(0, 2), 2e-4, 1e-12);
  EXPECT_NEAR(with(1, 2) - base(1, 2), 2e-4, 1e-12);
  EXPECT_NEAR(with(0, 0), base(0, 0), 1e-12);
  EXPECT_NEAR(with(1, 1), base(1, 1), 1e-12);
}

TEST(CommCoeffsTest, InputIngestionChargedOnReceiverOnly) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap, .cost = 1.0},
                         {StreamRef::Input(in)}, {0.3});
  ASSERT_TRUE(a.ok());
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const Placement plan(2, {1});
  const Matrix with = NodeCoeffsWithComm(plan, *model, g);
  EXPECT_NEAR(with(1, 0), 1.0 + 0.3, 1e-12);
  EXPECT_NEAR(with(0, 0), 0.0, 1e-12);
}

}  // namespace
}  // namespace rod::place
