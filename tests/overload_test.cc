// Graceful-degradation tests: bounded ingress queues with overflow
// policies (including QoS-aware semantic shedding), backpressure
// propagation to upstream nodes and sources, per-stream load-spike
// faults, and the sustained-overload control loop (detector ->
// ControlAgent -> shed directive / re-placement).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "placement/rod.h"
#include "query/load_model.h"
#include "runtime/chaos.h"
#include "runtime/engine.h"
#include "runtime/supervisor.h"

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

trace::RateTrace ConstantTrace(double rate, double duration) {
  trace::RateTrace t;
  t.window_sec = duration;
  t.rates = {rate};
  return t;
}

/// Graph: I -> map(cost, selectivity) -> sink.
QueryGraph OneOpGraph(double cost, double selectivity = 1.0) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  EXPECT_TRUE(g.AddOperator({.name = "op", .kind = OperatorKind::kMap,
                             .cost = cost, .selectivity = selectivity},
                            {StreamRef::Input(in)})
                  .ok());
  return g;
}

/// Two consumers of one input on one node: a valuable full-selectivity
/// branch and a nearly-dead filter branch (the QoS shedding target).
QueryGraph TwoBranchGraph(double cost, double dead_selectivity) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  EXPECT_TRUE(g.AddOperator({.name = "valuable", .kind = OperatorKind::kMap,
                             .cost = cost, .selectivity = 1.0},
                            {StreamRef::Input(in)})
                  .ok());
  EXPECT_TRUE(g.AddOperator({.name = "dead", .kind = OperatorKind::kFilter,
                             .cost = cost, .selectivity = dead_selectivity},
                            {StreamRef::Input(in)})
                  .ok());
  return g;
}

/// Chain across two nodes: I -> cheap(node 0) -> expensive(node 1).
struct ChainScenario {
  QueryGraph graph;
  SystemSpec system = SystemSpec::Homogeneous(2);
  Placement plan{2, {0, 1}};

  explicit ChainScenario(double cheap_cost = 1e-4, double heavy_cost = 2e-3) {
    const InputStreamId in = graph.AddInputStream("I");
    auto cheap =
        graph.AddOperator({.name = "cheap", .kind = OperatorKind::kMap,
                           .cost = cheap_cost, .selectivity = 1.0},
                          {StreamRef::Input(in)});
    EXPECT_TRUE(cheap.ok());
    EXPECT_TRUE(graph
                    .AddOperator({.name = "heavy", .kind = OperatorKind::kMap,
                                  .cost = heavy_cost, .selectivity = 1.0},
                                 {StreamRef::Op(*cheap)})
                    .ok());
  }
};

bool ResultsBitExact(const SimulationResult& a, const SimulationResult& b) {
  return a.input_tuples == b.input_tuples && a.shed_tuples == b.shed_tuples &&
         a.output_tuples == b.output_tuples &&
         a.mean_latency == b.mean_latency && a.p99_latency == b.p99_latency &&
         a.max_latency == b.max_latency &&
         a.processed_events == b.processed_events &&
         a.final_backlog == b.final_backlog;
}

TEST(BoundedQueueTest, DefaultsKeepLegacyUnboundedBehavior) {
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 20.0;

  auto unbounded =
      SimulatePlacement(g, Placement(1, {0}), system,
                        {ConstantTrace(800.0, 20.0)}, options);
  ASSERT_TRUE(unbounded.ok());
  // All degradation machinery off: the stats are identically zero.
  EXPECT_EQ(unbounded->overload.total_shed(), 0u);
  EXPECT_EQ(unbounded->overload.backpressure_deferred, 0u);
  EXPECT_EQ(unbounded->overload.congestion_episodes, 0u);
  EXPECT_EQ(unbounded->overload.control_consults, 0u);

  // A bound that never binds is bit-exact with the unbounded default,
  // for every overflow policy (no RNG perturbation either).
  for (OverflowPolicy policy :
       {OverflowPolicy::kDropNewest, OverflowPolicy::kDropOldest,
        OverflowPolicy::kRandom, OverflowPolicy::kQosWeighted}) {
    SimulationOptions bounded_options = options;
    bounded_options.queue_bound.capacity = 1u << 20;
    bounded_options.queue_bound.policy = policy;
    auto bounded = SimulatePlacement(g, Placement(1, {0}), system,
                                     {ConstantTrace(800.0, 20.0)},
                                     bounded_options);
    ASSERT_TRUE(bounded.ok());
    EXPECT_TRUE(ResultsBitExact(*unbounded, *bounded))
        << "policy " << static_cast<int>(policy);
  }
}

TEST(BoundedQueueTest, CapacityBoundsDepthUnderOverload) {
  // rho = 3: unbounded queues would grow without limit.
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);

  for (OverflowPolicy policy :
       {OverflowPolicy::kDropNewest, OverflowPolicy::kDropOldest,
        OverflowPolicy::kRandom, OverflowPolicy::kQosWeighted}) {
    SimulationOptions options;
    options.duration = 20.0;
    options.queue_bound.capacity = 32;
    options.queue_bound.policy = policy;
    auto r = SimulatePlacement(g, Placement(1, {0}), system,
                               {ConstantTrace(3000.0, 20.0)}, options);
    ASSERT_TRUE(r.ok());
    EXPECT_LE(r->overload.queue_depth_high_water, 32u)
        << "policy " << static_cast<int>(policy);
    EXPECT_GT(r->overload.total_shed(), 0u);
    EXPECT_LE(r->final_backlog, 33u);  // bounded queue + in-service task
    // The node keeps producing at capacity throughout.
    EXPECT_GT(r->output_tuples, 0u);

    // Same seed, same result: overflow resolution is deterministic.
    auto again = SimulatePlacement(g, Placement(1, {0}), system,
                                   {ConstantTrace(3000.0, 20.0)}, options);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(ResultsBitExact(*r, *again))
        << "policy " << static_cast<int>(policy);
  }
}

TEST(BoundedQueueTest, QosWeightedShedsDeadBranchFirst) {
  // Both branches cost the same, so the load is identical; only the
  // eviction choice differs. Dropping a "valuable" task forfeits a sink
  // output with probability 1, dropping a "dead" task with probability
  // 0.01 — QoS-aware eviction must therefore deliver more goodput.
  const QueryGraph g = TwoBranchGraph(1e-3, 0.01);
  const SystemSpec system = SystemSpec::Homogeneous(1);

  auto run_policy = [&](OverflowPolicy policy) {
    SimulationOptions options;
    options.duration = 30.0;
    options.queue_bound.capacity = 32;
    options.queue_bound.policy = policy;
    // 2x the single-node boundary: each arrival costs 2e-3 total.
    auto r = SimulatePlacement(g, Placement(1, {0, 0}), system,
                               {ConstantTrace(1000.0, 30.0)}, options);
    EXPECT_TRUE(r.ok());
    return *r;
  };

  const SimulationResult qos = run_policy(OverflowPolicy::kQosWeighted);
  const SimulationResult blind = run_policy(OverflowPolicy::kDropNewest);
  EXPECT_GT(qos.overload.total_shed(), 0u);
  EXPECT_GT(blind.overload.total_shed(), 0u);
  EXPECT_GE(qos.output_tuples, blind.output_tuples);
  // The separation is not marginal: the dead branch absorbs the drops.
  EXPECT_GT(qos.output_tuples, blind.output_tuples * 11 / 10);
}

TEST(BackpressureTest, CongestionParksDeliveriesAndStallsSources) {
  // The heavy downstream node saturates at 2x; its congestion must
  // propagate upstream rather than let node 1's queue grow unboundedly.
  ChainScenario s;
  SimulationOptions options;
  options.duration = 30.0;
  options.backpressure.enabled = true;
  options.backpressure.high_water = 16;

  auto r = SimulatePlacement(s.graph, s.plan, s.system,
                             {ConstantTrace(1000.0, 30.0)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->overload.congestion_episodes, 0u);
  EXPECT_GT(r->overload.backpressure_deferred, 0u);
  EXPECT_GT(r->overload.node_congested_seconds, 0.0);
  // Backpressure reaches the sources: node 0 blocks, fills, and stalls
  // the input stream.
  EXPECT_GT(r->overload.source_stalls, 0u);
  EXPECT_GT(r->overload.source_stall_seconds, 0.0);
  // Backpressure defers, it does not drop.
  EXPECT_EQ(r->shed_tuples, 0u);
  EXPECT_EQ(r->overload.total_shed(), 0u);
  EXPECT_FALSE(r->incident.has_value());

  auto again = SimulatePlacement(s.graph, s.plan, s.system,
                                 {ConstantTrace(1000.0, 30.0)}, options);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(ResultsBitExact(*r, *again));
}

TEST(BackpressureTest, FeasibleLoadIsUnaffected) {
  ChainScenario s;
  SimulationOptions options;
  options.duration = 30.0;

  auto baseline = SimulatePlacement(s.graph, s.plan, s.system,
                                    {ConstantTrace(200.0, 30.0)}, options);
  ASSERT_TRUE(baseline.ok());

  options.backpressure.enabled = true;
  options.backpressure.high_water = 64;
  auto bp = SimulatePlacement(s.graph, s.plan, s.system,
                              {ConstantTrace(200.0, 30.0)}, options);
  ASSERT_TRUE(bp.ok());
  // rho = 0.4 never reaches high water: identical results.
  EXPECT_EQ(bp->overload.congestion_episodes, 0u);
  EXPECT_TRUE(ResultsBitExact(*baseline, *bp));
}

TEST(LoadSpikeTest, MultiplierScalesArrivals) {
  const QueryGraph g = OneOpGraph(1e-4);
  const SystemSpec system = SystemSpec::Homogeneous(1);

  SimulationOptions options;
  options.duration = 30.0;

  auto calm = SimulatePlacement(g, Placement(1, {0}), system,
                                {ConstantTrace(500.0, 30.0)}, options);
  ASSERT_TRUE(calm.ok());

  FailureSchedule spike;
  spike.LoadSpikeAt(10.0, 0, 3.0).LoadSpikeAt(20.0, 0, 1.0);
  SimulationOptions spiked_options = options;
  spiked_options.failures = &spike;
  auto spiked = SimulatePlacement(g, Placement(1, {0}), system,
                                  {ConstantTrace(500.0, 30.0)},
                                  spiked_options);
  ASSERT_TRUE(spiked.ok());
  // A 3x flash crowd for a third of the run: noticeably more arrivals,
  // but far fewer than a run-long 3x would give.
  EXPECT_GT(spiked->input_tuples, calm->input_tuples * 5 / 4);
  EXPECT_LT(spiked->input_tuples, calm->input_tuples * 5 / 2);
  // Load spikes alone are not an incident (no crash).
  EXPECT_FALSE(spiked->incident.has_value());
}

TEST(LoadSpikeTest, ZeroFactorSilencesAndRestores) {
  const QueryGraph g = OneOpGraph(1e-4);
  const SystemSpec system = SystemSpec::Homogeneous(1);

  FailureSchedule lull;
  lull.LoadSpikeAt(10.0, 0, 0.0).LoadSpikeAt(20.0, 0, 1.0);
  SimulationOptions options;
  options.duration = 30.0;
  options.failures = &lull;
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(500.0, 30.0)}, options);
  ASSERT_TRUE(r.ok());

  SimulationOptions calm_options;
  calm_options.duration = 30.0;
  auto calm = SimulatePlacement(g, Placement(1, {0}), system,
                                {ConstantTrace(500.0, 30.0)}, calm_options);
  ASSERT_TRUE(calm.ok());
  // Silenced for a third of the run, then revived (the restore multiplier
  // must restart the dead arrival chain).
  EXPECT_LT(r->input_tuples, calm->input_tuples * 3 / 4);
  EXPECT_GT(r->input_tuples, calm->input_tuples * 1 / 2);
}

/// Scripted overload responder: records consultations and orders a fixed
/// shed fraction.
class SheddingAgent : public ControlAgent {
 public:
  explicit SheddingAgent(double shed_fraction)
      : shed_fraction_(shed_fraction) {}

  double detection_delay() const override { return 0.5; }

  std::optional<PlanUpdate> OnFailureDetected(
      double, uint32_t, const std::vector<bool>&, const Deployment&) override {
    return std::nullopt;
  }

  std::optional<OverloadDecision> OnOverload(const OverloadSignal& signal,
                                             const Deployment&) override {
    signals.push_back(signal);
    OverloadDecision d;
    d.shed_fraction = shed_fraction_;
    return d;
  }

  void OnOverloadCleared(double now) override { cleared.push_back(now); }

  std::vector<OverloadSignal> signals;
  std::vector<double> cleared;

 private:
  double shed_fraction_;
};

TEST(OverloadControlTest, SustainedBreachConsultsAgentAndShedRecovers) {
  // rho = 3 with no bound: the queue races past the detector threshold;
  // the agent orders a 0.8 shed (effective rho 0.6) and the queue drains,
  // which must fire OnOverloadCleared.
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);

  SheddingAgent agent(0.8);
  SimulationOptions options;
  options.duration = 40.0;
  options.overload.enabled = true;
  options.overload.queue_high_water = 64;
  options.overload.sustain = 0.5;
  options.recovery = &agent;

  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(3000.0, 40.0)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->overload.overload_detect_time, 0.0);
  EXPECT_GE(r->overload.control_consults, 1u);
  EXPECT_EQ(r->overload.control_consults, agent.signals.size());
  EXPECT_GT(r->overload.shed_directive, 0u);
  EXPECT_GE(r->shed_tuples, r->overload.shed_directive);
  ASSERT_FALSE(agent.signals.empty());
  const OverloadSignal& first = agent.signals.front();
  EXPECT_EQ(first.hot_node, 0u);
  EXPECT_GE(first.queue_depth, 64u);
  EXPECT_GE(first.sustained_seconds, 0.5);
  ASSERT_EQ(first.observed_rates.size(), 1u);
  EXPECT_GT(first.observed_rates[0], 0.0);
  // The shed drained the queue below the clear threshold at least once.
  EXPECT_FALSE(agent.cleared.empty());
}

TEST(OverloadControlTest, DetectorObservesOnlyWithoutAgent) {
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);

  SimulationOptions options;
  options.duration = 20.0;
  options.overload.enabled = true;
  options.overload.queue_high_water = 64;

  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(3000.0, 20.0)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->overload.overload_detect_time, 0.0);
  EXPECT_EQ(r->overload.control_consults, 0u);
  EXPECT_EQ(r->overload.shed_directive, 0u);
}

TEST(OverloadControlTest, SupervisorCostModelPrefersCheaperAction) {
  // Unit-level cost model check on the production Supervisor: a pathological
  // all-on-one-node placement where a bounded rebalance helps.
  QueryGraph graph;
  const InputStreamId in = graph.AddInputStream("I");
  query::OperatorId prev = 0;
  for (int i = 0; i < 6; ++i) {
    auto id = graph.AddOperator(
        {.name = "op" + std::to_string(i), .kind = OperatorKind::kMap,
         .cost = 1e-3, .selectivity = 1.0},
        {i == 0 ? StreamRef::Input(in) : StreamRef::Op(prev)});
    ASSERT_TRUE(id.ok());
    prev = *id;
  }
  auto model = query::BuildLoadModel(graph);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(3);
  auto dep = CompileDeployment(graph, Placement(3, {0, 0, 0, 0, 0, 0}),
                               system);
  ASSERT_TRUE(dep.ok());

  OverloadSignal signal;
  signal.time = 10.0;
  signal.hot_node = 0;
  signal.queue_depth = 500;
  signal.queue_high_water = 128;
  signal.sustained_seconds = 2.0;
  signal.observed_rates = {300.0};
  signal.node_up = {true, true, true};

  {
    // Free migration: the re-placement wins the cost comparison.
    Supervisor::Options sup_options;
    sup_options.overload_rebalance_budget = 4;
    sup_options.migration_pause = 0.0;
    Supervisor sup(*model, sup_options);
    auto decision = sup.OnOverload(signal, *dep);
    ASSERT_TRUE(decision.has_value());
    EXPECT_TRUE(decision->plan.has_value());
    EXPECT_EQ(decision->shed_fraction, 0.0);
    EXPECT_EQ(sup.overload_rebalances(), 1u);
    EXPECT_EQ(sup.overload_consults(), 1u);
    // The plan actually spreads the pathological pile-up.
    size_t on_node0 = 0;
    for (size_t node : decision->plan->assignment) on_node0 += (node == 0);
    EXPECT_LT(on_node0, decision->plan->assignment.size());
  }
  {
    // Ruinously slow state transfer: shedding is cheaper.
    Supervisor::Options sup_options;
    sup_options.overload_rebalance_budget = 4;
    sup_options.migration_pause = 1e9;
    sup_options.overload_shed_fraction = 0.4;
    Supervisor sup(*model, sup_options);
    auto decision = sup.OnOverload(signal, *dep);
    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->plan.has_value());
    EXPECT_EQ(decision->shed_fraction, 0.4);
    EXPECT_EQ(sup.overload_sheds(), 1u);
    EXPECT_EQ(sup.last_shed_fraction(), 0.4);
  }
  {
    // Budget 0 disables re-placement outright.
    Supervisor::Options sup_options;
    sup_options.overload_rebalance_budget = 0;
    sup_options.migration_pause = 0.0;
    Supervisor sup(*model, sup_options);
    auto decision = sup.OnOverload(signal, *dep);
    ASSERT_TRUE(decision.has_value());
    EXPECT_FALSE(decision->plan.has_value());
    EXPECT_GT(decision->shed_fraction, 0.0);
  }
}

TEST(OverloadControlTest, EndToEndSupervisorShedsUnderSpike) {
  // Full loop on the production Supervisor: a mid-run 6x flash crowd
  // overloads the node; the detector escalates, the supervisor sheds,
  // and the run ends with bounded queues instead of a runaway backlog.
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());

  FailureSchedule spike;
  spike.LoadSpikeAt(10.0, 0, 6.0);

  Supervisor::Options sup_options;
  sup_options.overload_shed_fraction = 0.9;
  Supervisor supervisor(*model, sup_options);

  SimulationOptions options;
  options.duration = 60.0;
  options.failures = &spike;
  options.recovery = &supervisor;
  options.overload.enabled = true;
  options.overload.queue_high_water = 64;
  options.queue_bound.capacity = 512;

  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(500.0, 60.0)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->overload.overload_detect_time, 10.0);
  EXPECT_GE(supervisor.overload_consults(), 1u);
  EXPECT_GT(r->overload.shed_directive, 0u);
  EXPECT_LE(r->overload.queue_depth_high_water, 512u);
  EXPECT_LE(r->final_backlog, 513u);
}

}  // namespace
}  // namespace rod::sim
