// End-to-end integration tests: the full pipeline from graph generation
// through placement to analytic evaluation and the DES runtime, checking
// the paper's headline claims in miniature.

#include <gtest/gtest.h>

#include "geometry/feasible_set.h"
#include "geometry/qmc.h"
#include "placement/baselines.h"
#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"
#include "runtime/engine.h"
#include "trace/trace.h"

namespace rod {
namespace {

using place::Placement;
using place::PlacementEvaluator;
using place::SystemSpec;
using query::QueryGraph;

TEST(IntegrationTest, RodDominatesBaselinesOnPaperScaleGraph) {
  // A §7.3.1-style instance: 5 input streams, 20 ops per tree, 5 nodes.
  query::GraphGenOptions gen;
  gen.num_input_streams = 5;
  gen.ops_per_tree = 20;
  Rng rng(2024);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(5);
  const PlacementEvaluator eval(*model, system);
  geom::VolumeOptions vol;
  vol.num_samples = 1u << 14;

  auto rod = place::RodPlace(*model, system);
  ASSERT_TRUE(rod.ok());
  const double rod_ratio = *eval.RatioToIdeal(*rod, vol);

  // Average each baseline over a few trials (as §7.3.1 does over ten).
  auto average = [&](auto&& make_plan) {
    double sum = 0.0;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
      auto plan = make_plan(t);
      EXPECT_TRUE(plan.ok());
      sum += *eval.RatioToIdeal(*plan, vol);
    }
    return sum / trials;
  };

  Rng seeder(7);
  const double random_avg = average([&](int) {
    Rng r = seeder.Fork();
    return place::RandomPlace(*model, system, r);
  });
  const double llf_avg = average([&](int t) {
    Rng r(400 + t);
    Vector rates(5);
    for (double& x : rates) x = r.Uniform(0.01, 1.0);
    return place::LargestLoadFirstPlace(*model, system, rates);
  });
  const double connected_avg = average([&](int t) {
    Rng r(500 + t);
    Vector rates(5);
    for (double& x : rates) x = r.Uniform(0.01, 1.0);
    return place::ConnectedLoadBalancePlace(*model, g, system, rates);
  });

  // The paper's Figure 14 ordering: ROD above every load balancer, and
  // Connected worst.
  EXPECT_GT(rod_ratio, random_avg);
  EXPECT_GT(rod_ratio, llf_avg);
  EXPECT_GT(rod_ratio, connected_avg);
  EXPECT_GT(random_avg, connected_avg);
}

TEST(IntegrationTest, AnalyticAndSimulatedFeasibilityAgree) {
  // The Borealis-vs-simulator consistency check (§7.3.1: "the simulator
  // results tracked the results in Borealis very closely"), here between
  // our analytic model and the DES: probe rate points near the boundary.
  query::TrafficMonitoringOptions topts;
  topts.num_links = 2;
  topts.windows = {1.0};
  const QueryGraph g = query::BuildTrafficMonitoringGraph(topts);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2, 1.0);
  auto plan = place::RodPlace(*model, system);
  ASSERT_TRUE(plan.ok());
  const PlacementEvaluator eval(*model, system);

  sim::SimulationOptions sopts;
  sopts.duration = 40.0;
  int agreements = 0, cases = 0;
  Rng rng(77);
  for (int s = 0; s < 6; ++s) {
    // Random direction, two magnitudes: clearly inside (60% of boundary)
    // and clearly outside (160%).
    Vector dir(2);
    for (double& v : dir) v = 0.2 + rng.NextDouble();
    // Find the scale at which this direction crosses the boundary.
    double lo = 0.0, hi = 1e9;
    // Utilization is linear in scale: boundary scale = 1 / max-util at 1.
    const Vector util = eval.NodeUtilizationAt(*plan, dir);
    const double peak = *std::max_element(util.begin(), util.end());
    ASSERT_GT(peak, 0.0);
    const double boundary = 1.0 / peak;
    (void)lo;
    (void)hi;
    for (double frac : {0.6, 1.6}) {
      const Vector rates = Scale(dir, frac * boundary);
      const bool analytic = eval.FeasibleAt(*plan, rates);
      auto probed = sim::ProbeFeasibleAt(g, *plan, system, rates, sopts);
      ASSERT_TRUE(probed.ok());
      agreements += analytic == *probed;
      ++cases;
    }
  }
  // Allow one disagreement at most (stochastic arrivals near boundaries).
  EXPECT_GE(agreements, cases - 1);
}

TEST(IntegrationTest, PrototypeStyleFeasibleFractionTracksAnalytic) {
  // The paper's Borealis methodology (§7.1): sample random workload points
  // within the ideal feasible set, run the system at each, and call the
  // point feasible if no node saturates; the feasible fraction estimates
  // V(F)/V(F*). That prototype-style estimate must track our analytic QMC
  // ratio ("the simulator results tracked the results in Borealis very
  // closely", §7.3.1).
  query::GraphGenOptions gen;
  gen.num_input_streams = 2;
  gen.ops_per_tree = 6;
  gen.min_cost = 1e-3;
  gen.max_cost = 4e-3;
  Rng rng(424242);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = place::RodPlace(*model, system);
  ASSERT_TRUE(plan.ok());
  const PlacementEvaluator eval(*model, system);

  const double analytic = *eval.RatioToIdeal(*plan);

  // Uniform points in the ideal simplex, mapped back to physical rates
  // r_k = x_k * C_T / l_k.
  sim::SimulationOptions sopts;
  sopts.duration = 25.0;
  const double ct = system.TotalCapacity();
  geom::HaltonSequence halton(2);
  int feasible = 0;
  const int kPoints = 24;
  for (int s = 0; s < kPoints; ++s) {
    const Vector x = geom::MapUnitCubeToSimplex(halton.Next());
    Vector rates(2);
    for (size_t k = 0; k < 2; ++k) {
      rates[k] = x[k] * ct / model->total_coeffs()[k];
    }
    auto probed = sim::ProbeFeasibleAt(g, *plan, system, rates, sopts);
    ASSERT_TRUE(probed.ok());
    feasible += *probed;
  }
  const double prototype_ratio =
      static_cast<double>(feasible) / static_cast<double>(kPoints);
  // 24 Bernoulli samples: generous band, but enough to catch systematic
  // disagreement between the runtime and the analytic model.
  EXPECT_NEAR(prototype_ratio, analytic, 0.2);
}

TEST(IntegrationTest, RodSustainsBurstsBetterInSimulation) {
  // Drive the same graph with bursty TCP-like traces at a mean rate near
  // the connected plan's weakest direction: ROD should overload in fewer
  // windows than the Connected baseline.
  query::GraphGenOptions gen;
  gen.num_input_streams = 2;
  gen.ops_per_tree = 8;
  gen.min_cost = 1e-3;
  gen.max_cost = 3e-3;
  Rng rng(31337);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);

  auto rod = place::RodPlace(*model, system);
  ASSERT_TRUE(rod.ok());
  Vector flat_rates(2, 1.0);
  auto connected =
      place::ConnectedLoadBalancePlace(*model, g, system, flat_rates);
  ASSERT_TRUE(connected.ok());

  // Mean rates chosen so the *average* load is feasible for both plans,
  // with bursts pushing past each plan's weak directions.
  const PlacementEvaluator eval(*model, system);
  Vector probe(2, 1.0);
  const Vector util_rod = eval.NodeUtilizationAt(*rod, probe);
  const double peak =
      *std::max_element(util_rod.begin(), util_rod.end());
  const double mean_rate = 0.75 / peak;  // 75% of ROD's boundary

  sim::SimulationOptions sopts;
  sopts.duration = 120.0;
  Rng t1(1), t2(2);
  std::vector<trace::RateTrace> traces = {
      trace::GeneratePreset(trace::TracePreset::kTcp, 128, 1.0, t1)
          .ScaledToMean(mean_rate),
      trace::GeneratePreset(trace::TracePreset::kTcp, 128, 1.0, t2)
          .ScaledToMean(mean_rate)};

  auto rod_run = sim::SimulatePlacement(g, *rod, system, traces, sopts);
  auto conn_run =
      sim::SimulatePlacement(g, *connected, system, traces, sopts);
  ASSERT_TRUE(rod_run.ok() && conn_run.ok());
  EXPECT_LE(rod_run->overloaded_windows, conn_run->overloaded_windows);
}

TEST(IntegrationTest, LinearizedPlacementHandlesJoinGraphEndToEnd) {
  // Join-bearing graph: linearize, place with ROD, simulate, and confirm
  // the runtime stays feasible at a point the model calls feasible.
  QueryGraph g;
  const auto i0 = g.AddInputStream("L");
  const auto i1 = g.AddInputStream("R");
  auto fl = g.AddOperator({.name = "fl",
                           .kind = query::OperatorKind::kFilter,
                           .cost = 1e-3,
                           .selectivity = 0.8},
                          {query::StreamRef::Input(i0)});
  auto fr = g.AddOperator({.name = "fr",
                           .kind = query::OperatorKind::kFilter,
                           .cost = 1e-3,
                           .selectivity = 0.8},
                          {query::StreamRef::Input(i1)});
  auto join = g.AddOperator({.name = "join",
                             .kind = query::OperatorKind::kJoin,
                             .cost = 5e-5,
                             .selectivity = 0.2,
                             .window = 0.5},
                            {query::StreamRef::Op(*fl),
                             query::StreamRef::Op(*fr)});
  auto agg = g.AddOperator({.name = "agg",
                            .kind = query::OperatorKind::kAggregate,
                            .cost = 1e-3,
                            .selectivity = 0.1},
                           {query::StreamRef::Op(*join)});
  ASSERT_TRUE(agg.ok());
  auto model = query::BuildLinearizedLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = place::RodPlace(*model, system);
  ASSERT_TRUE(plan.ok());

  const PlacementEvaluator eval(*model, system);
  const Vector rates = {60.0, 60.0};
  ASSERT_TRUE(eval.FeasibleAt(*plan, rates));

  sim::SimulationOptions sopts;
  sopts.duration = 30.0;
  auto probed = sim::ProbeFeasibleAt(g, *plan, system, rates, sopts);
  ASSERT_TRUE(probed.ok());
  EXPECT_TRUE(*probed);
}

TEST(IntegrationTest, ComplianceGraphFullPipeline) {
  const QueryGraph g = query::BuildComplianceGraph(
      {.num_feeds = 2, .num_rules = 8, .base_cost = 0.2e-3});
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(3);
  auto plan = place::RodPlace(*model, system);
  ASSERT_TRUE(plan.ok());
  const PlacementEvaluator eval(*model, system);
  auto ratio = eval.RatioToIdeal(*plan);
  ASSERT_TRUE(ratio.ok());
  EXPECT_GT(*ratio, 0.2);

  Rng t(5);
  std::vector<trace::RateTrace> traces;
  for (int k = 0; k < 2; ++k) {
    traces.push_back(
        trace::GeneratePreset(trace::TracePreset::kHttp, 64, 1.0, t)
            .ScaledToMean(100.0));
  }
  sim::SimulationOptions sopts;
  sopts.duration = 60.0;
  auto run = sim::SimulatePlacement(g, *plan, system, traces, sopts);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->output_tuples, 0u);
  EXPECT_FALSE(run->saturated);
}

}  // namespace
}  // namespace rod
