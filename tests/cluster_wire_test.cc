// Wire-serialization tests for the cluster protocol payloads: every
// message type round-trips through Encode/Decode, the query graph ships
// losslessly inside a plan (specs, arcs, comm costs), and malformed
// payloads — truncation, trailing garbage, inconsistent sizes — are
// rejected with kInvalidArgument instead of being misparsed.

#include "cluster/wire.h"

#include <gtest/gtest.h>

#include <string>

#include "query/graph_gen.h"
#include "query/query_graph.h"

namespace rod::cluster {
namespace {

query::QueryGraph SmallGraph() {
  query::QueryGraph graph;
  const auto s0 = graph.AddInputStream("alpha");
  const auto s1 = graph.AddInputStream("beta");
  auto f = graph.AddOperator(
      {.name = "filter", .kind = query::OperatorKind::kFilter, .cost = 1e-4,
       .selectivity = 0.5},
      {query::StreamRef::Input(s0)});
  EXPECT_TRUE(f.ok());
  auto j = graph.AddOperator(
      {.name = "join",
       .kind = query::OperatorKind::kJoin,
       .cost = 2e-5,
       .selectivity = 0.01,
       .window = 1.5},
      {query::StreamRef::Op(*f), query::StreamRef::Input(s1)},
      {0.0, 3e-6});
  EXPECT_TRUE(j.ok());
  auto top = graph.AddOperator(
      {.name = "top",
       .kind = query::OperatorKind::kMap,
       .cost = 5e-5,
       .selectivity = 1.0,
       .variable_selectivity = true,
       .qos_weight = 2.0},
      {query::StreamRef::Op(*j)});
  EXPECT_TRUE(top.ok());
  return graph;
}

TEST(ClusterWireTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.data_port = 40123;
  msg.http_port = 9102;
  msg.capacity = 0.75;
  msg.name = "rack1-w0";
  auto decoded = HelloMsg::Decode(msg.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->data_port, 40123);
  EXPECT_EQ(decoded->http_port, 9102);
  EXPECT_DOUBLE_EQ(decoded->capacity, 0.75);
  EXPECT_EQ(decoded->name, "rack1-w0");
}

TEST(ClusterWireTest, WelcomeAndStartRoundTrip) {
  WelcomeMsg welcome{3, 5, 0.125, 0.75};
  auto w = WelcomeMsg::Decode(welcome.Encode());
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->worker_id, 3u);
  EXPECT_EQ(w->num_workers, 5u);
  EXPECT_DOUBLE_EQ(w->heartbeat_interval, 0.125);
  EXPECT_DOUBLE_EQ(w->heartbeat_timeout, 0.75);

  StartMsg start;
  start.duration = 12.5;
  start.tick_seconds = 0.02;
  start.seed = 0xfeedbeef;
  start.rates = {100.0, 250.5, 0.0};
  auto s = StartMsg::Decode(start.Encode());
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->duration, 12.5);
  EXPECT_EQ(s->seed, 0xfeedbeefu);
  EXPECT_EQ(s->rates, start.rates);
}

TEST(ClusterWireTest, PlanRoundTripPreservesGraphAndRouting) {
  PlanMsg plan;
  plan.version = 7;
  plan.graph = SmallGraph();
  plan.assignment = {0, 1, 1};
  plan.capacities = {1.0, 0.5};
  plan.endpoints = {{0, 41001}, {1, 41002}};
  plan.source_owner = {0, 1};

  auto decoded = PlanMsg::Decode(plan.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, 7u);
  EXPECT_EQ(decoded->assignment, plan.assignment);
  EXPECT_EQ(decoded->capacities, plan.capacities);
  EXPECT_EQ(decoded->source_owner, plan.source_owner);
  ASSERT_EQ(decoded->endpoints.size(), 2u);
  EXPECT_EQ(decoded->endpoints[1].data_port, 41002);

  const query::QueryGraph& graph = decoded->graph;
  ASSERT_EQ(graph.num_operators(), 3u);
  ASSERT_EQ(graph.num_input_streams(), 2u);
  EXPECT_EQ(graph.input_name(0), "alpha");
  EXPECT_EQ(graph.spec(0).name, "filter");
  EXPECT_DOUBLE_EQ(graph.spec(0).selectivity, 0.5);
  EXPECT_EQ(graph.spec(1).kind, query::OperatorKind::kJoin);
  EXPECT_DOUBLE_EQ(graph.spec(1).window, 1.5);
  EXPECT_TRUE(graph.spec(2).variable_selectivity);
  EXPECT_DOUBLE_EQ(graph.spec(2).qos_weight, 2.0);
  // The join's second arc came from input stream 1 with a comm cost.
  const auto& arcs = graph.inputs_of(1);
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].from, query::StreamRef::Op(0));
  EXPECT_EQ(arcs[1].from, query::StreamRef::Input(1));
  EXPECT_DOUBLE_EQ(arcs[1].comm_cost, 3e-6);
}

TEST(ClusterWireTest, GeneratedGraphSurvivesTheWire) {
  // The paper's random-trees workload is what real runs ship; encode the
  // whole thing and verify structural equality.
  query::GraphGenOptions options;
  options.num_input_streams = 4;
  options.ops_per_tree = 8;
  Rng rng(21);
  const query::QueryGraph graph = query::GenerateRandomTrees(options, rng);

  WireWriter w;
  EncodeQueryGraph(graph, w);
  WireReader r(w.str());
  auto decoded = DecodeQueryGraph(r);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(r.AtEnd());

  ASSERT_EQ(decoded->num_operators(), graph.num_operators());
  ASSERT_EQ(decoded->num_input_streams(), graph.num_input_streams());
  for (size_t j = 0; j < graph.num_operators(); ++j) {
    EXPECT_EQ(decoded->spec(j).name, graph.spec(j).name);
    EXPECT_EQ(decoded->spec(j).kind, graph.spec(j).kind);
    EXPECT_DOUBLE_EQ(decoded->spec(j).cost, graph.spec(j).cost);
    EXPECT_DOUBLE_EQ(decoded->spec(j).selectivity, graph.spec(j).selectivity);
    ASSERT_EQ(decoded->inputs_of(j).size(), graph.inputs_of(j).size());
    for (size_t a = 0; a < graph.inputs_of(j).size(); ++a) {
      EXPECT_EQ(decoded->inputs_of(j)[a].from, graph.inputs_of(j)[a].from);
    }
  }
}

TEST(ClusterWireTest, HeartbeatRoundTripWithLoads) {
  HeartbeatMsg hb;
  hb.worker_id = 2;
  hb.seq = 41;
  hb.uptime_seconds = 3.25;
  hb.plan_version = 9;
  hb.queue_depth = 17;
  hb.counters.generated = 1000;
  hb.counters.processed = 900;
  hb.counters.lost_tuples = 3;
  hb.counters.latency_sum = 1.5;
  hb.counters.latency_max = 0.125;
  hb.counters.latency_count = 890;
  hb.loads = {{0, 500, 0.05}, {4, 400, 0.04}};

  auto decoded = HeartbeatMsg::Decode(hb.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->worker_id, 2u);
  EXPECT_EQ(decoded->seq, 41u);
  EXPECT_EQ(decoded->plan_version, 9u);
  EXPECT_EQ(decoded->queue_depth, 17u);
  EXPECT_EQ(decoded->counters.generated, 1000u);
  EXPECT_EQ(decoded->counters.lost_tuples, 3u);
  EXPECT_DOUBLE_EQ(decoded->counters.latency_max, 0.125);
  ASSERT_EQ(decoded->loads.size(), 2u);
  EXPECT_EQ(decoded->loads[1].op, 4u);
  EXPECT_EQ(decoded->loads[1].processed, 400u);
}

TEST(ClusterWireTest, TuplePauseDiffFinalRoundTrips) {
  TupleBatchMsg batch{12, 1, 64, 3, 2.75};
  auto b = TupleBatchMsg::Decode(batch.Encode());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->to_op, 12u);
  EXPECT_EQ(b->to_port, 1u);
  EXPECT_EQ(b->count, 64u);
  EXPECT_EQ(b->from_worker, 3u);
  EXPECT_DOUBLE_EQ(b->create_time, 2.75);

  PauseMsg pause;
  pause.plan_version = 4;
  pause.ops = {1, 5, 9};
  auto p = PauseMsg::Decode(pause.Encode());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->plan_version, 4u);
  EXPECT_EQ(p->ops, pause.ops);

  PlanDiffMsg diff;
  diff.version = 5;
  diff.moves = {{1, 2, 0}, {5, 2, 1}};
  auto d = PlanDiffMsg::Decode(diff.Encode());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->version, 5u);
  ASSERT_EQ(d->moves.size(), 2u);
  EXPECT_EQ(d->moves[1].op, 5u);
  EXPECT_EQ(d->moves[1].from_worker, 2u);
  EXPECT_EQ(d->moves[1].to_worker, 1u);

  FinalStatsMsg stats;
  stats.worker_id = 1;
  stats.counters.delivered = 123456;
  auto f = FinalStatsMsg::Decode(stats.Encode());
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->worker_id, 1u);
  EXPECT_EQ(f->counters.delivered, 123456u);
}

TEST(ClusterWireTest, TupleBatchCarriesSendTime) {
  TupleBatchMsg batch{12, 1, 64, 3, 2.75};
  batch.send_time_us = 123456.5;
  auto b = TupleBatchMsg::Decode(batch.Encode());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(b->send_time_us, 123456.5);
  // Default encodes as the unstamped sentinel.
  auto unstamped = TupleBatchMsg::Decode(TupleBatchMsg{}.Encode());
  ASSERT_TRUE(unstamped.ok());
  EXPECT_DOUBLE_EQ(unstamped->send_time_us, 0.0);
}

TEST(ClusterWireTest, PingPongRoundTrip) {
  PingMsg ping{42, 1e6};
  auto p = PingMsg::Decode(ping.Encode());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->seq, 42u);
  EXPECT_DOUBLE_EQ(p->t1_us, 1e6);

  PongMsg pong;
  pong.seq = 42;
  pong.worker_id = 2;
  pong.t1_us = 1e6;
  pong.t2_us = 5e5;
  pong.t3_us = 5e5 + 30.0;
  auto q = PongMsg::Decode(pong.Encode());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->seq, 42u);
  EXPECT_EQ(q->worker_id, 2u);
  EXPECT_DOUBLE_EQ(q->t1_us, 1e6);
  EXPECT_DOUBLE_EQ(q->t2_us, 5e5);
  EXPECT_DOUBLE_EQ(q->t3_us, 5e5 + 30.0);
}

TEST(ClusterWireTest, StatsReportRoundTrip) {
  StatsReportMsg report;
  report.worker_id = 1;
  report.counters = {{"cluster.batches_received", 17},
                     {"engine.tuples", 123456}};
  report.gauges = {{"cluster.clock_offset_us", -250.5}};
  StatsReportMsg::HistogramState h;
  h.name = "cluster.ship_latency_us";
  h.count = 3;
  h.sum = 900.0;
  h.min = 100.0;
  h.max = 500.0;
  h.buckets = {{128.0, 1}, {512.0, 2}};
  report.histograms.push_back(h);

  auto r = StatsReportMsg::Decode(report.Encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->worker_id, 1u);
  EXPECT_EQ(r->counters, report.counters);
  EXPECT_EQ(r->gauges, report.gauges);
  ASSERT_EQ(r->histograms.size(), 1u);
  EXPECT_EQ(r->histograms[0].name, "cluster.ship_latency_us");
  EXPECT_EQ(r->histograms[0].count, 3u);
  EXPECT_DOUBLE_EQ(r->histograms[0].sum, 900.0);
  EXPECT_DOUBLE_EQ(r->histograms[0].min, 100.0);
  EXPECT_DOUBLE_EQ(r->histograms[0].max, 500.0);
  EXPECT_EQ(r->histograms[0].buckets, h.buckets);
}

TEST(ClusterWireTest, ClockSyncFreezeFrozenRoundTrips) {
  ClockSyncMsg sync;
  sync.entries = {{0, -120.25, 60.0}, {1, 310.0, 42.5}};
  auto s = ClockSyncMsg::Decode(sync.Encode());
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->entries.size(), 2u);
  EXPECT_EQ(s->entries[1].worker_id, 1u);
  EXPECT_DOUBLE_EQ(s->entries[1].offset_us, 310.0);
  EXPECT_DOUBLE_EQ(s->entries[0].rtt_us, 60.0);

  FreezeMsg freeze;
  freeze.incident_id = 7;
  freeze.kind = "cluster.worker_failure";
  freeze.detail = "w1 missed heartbeats";
  auto fr = FreezeMsg::Decode(freeze.Encode());
  ASSERT_TRUE(fr.ok());
  EXPECT_EQ(fr->incident_id, 7u);
  EXPECT_EQ(fr->kind, freeze.kind);
  EXPECT_EQ(fr->detail, freeze.detail);

  FrozenReportMsg frozen;
  frozen.incident_id = 7;
  frozen.worker_id = 2;
  frozen.incident_json = "{\"kind\": \"cluster.worker_failure\"}";
  auto fz = FrozenReportMsg::Decode(frozen.Encode());
  ASSERT_TRUE(fz.ok());
  EXPECT_EQ(fz->incident_id, 7u);
  EXPECT_EQ(fz->worker_id, 2u);
  EXPECT_EQ(fz->incident_json, frozen.incident_json);
}

TEST(ClusterWireTest, TruncatedPayloadIsRejected) {
  HelloMsg msg;
  msg.name = "truncate-me";
  std::string payload = msg.Encode();
  payload.resize(payload.size() / 2);
  EXPECT_EQ(HelloMsg::Decode(payload).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusterWireTest, TrailingGarbageIsRejected) {
  WelcomeMsg msg;
  std::string payload = msg.Encode() + "extra";
  EXPECT_EQ(WelcomeMsg::Decode(payload).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusterWireTest, PlanWithInconsistentAssignmentIsRejected) {
  PlanMsg plan;
  plan.graph = SmallGraph();       // 3 operators.
  plan.assignment = {0, 1};        // Wrong arity.
  plan.capacities = {1.0, 1.0};
  plan.source_owner = {0, 0};
  EXPECT_EQ(PlanMsg::Decode(plan.Encode()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ClusterWireTest, ReaderLatchesOutOfBoundsAndReports) {
  WireWriter w;
  w.U32(7);
  WireReader r(w.str());
  EXPECT_EQ(r.U32(), 7u);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(r.U64(), 0u);  // Out of bounds: latches failure, returns 0.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rod::cluster
