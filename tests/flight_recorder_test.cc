// Flight recorder tests: the frozen-at-incident contract (metrics,
// trace ring, aggregator window), notes, the bounded incident ring, and
// the golden artifact pinned by tests/golden/flight_recorder_incident.json
// under a manual clock.

#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/aggregator.h"
#include "telemetry/json_writer.h"
#include "telemetry/telemetry.h"

namespace rod::telemetry {
namespace {

TelemetryOptions ManualClock() {
  TelemetryOptions o;
  o.manual_clock = true;
  return o;
}

TEST(FlightRecorderTest, NoteAndCompleteWithoutPendingAreNoOps) {
  Telemetry tel(ManualClock());
  FlightRecorder recorder(&tel);
  recorder.Note("lost");          // No pending incident: dropped.
  recorder.CompleteIncident();    // No-op.
  EXPECT_EQ(recorder.incident_count(), 0u);
  EXPECT_FALSE(recorder.pending());
}

TEST(FlightRecorderTest, BeginFreezesStateAtTheIncidentInstant) {
  Telemetry tel(ManualClock());
  Counter events = tel.counter("engine.events");
  events.Add(10);
  FlightRecorder recorder(&tel);

  recorder.BeginIncident("node_crash", "crash node 1");
  EXPECT_TRUE(recorder.pending());
  // Everything recorded after Begin must NOT appear in the frozen state.
  events.Add(999);
  tel.AdvanceClock(500.0);
  recorder.Note("detected");
  recorder.CompleteIncident();
  EXPECT_FALSE(recorder.pending());
  ASSERT_EQ(recorder.incident_count(), 1u);

  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"engine.events\": 10"), std::string::npos) << json;
  EXPECT_EQ(json.find("1009"), std::string::npos) << json;
  EXPECT_NE(json.find("\"detected\""), std::string::npos) << json;
}

TEST(FlightRecorderTest, SecondBeginAbandonsAndCounts) {
  Telemetry tel(ManualClock());
  FlightRecorder recorder(&tel);
  recorder.BeginIncident("node_crash", "first");
  recorder.BeginIncident("node_crash", "second");  // Abandons the first.
  recorder.CompleteIncident();
  EXPECT_EQ(recorder.incident_count(), 1u);
  EXPECT_EQ(tel.Snapshot().counters.at("telemetry.flightrecorder.abandoned"),
            1u);
  std::ostringstream out;
  recorder.WriteJson(out);
  EXPECT_NE(out.str().find("\"second\""), std::string::npos);
  EXPECT_EQ(out.str().find("\"first\""), std::string::npos);
}

TEST(FlightRecorderTest, IncidentRingIsBoundedAndCountsDrops) {
  Telemetry tel(ManualClock());
  FlightRecorderOptions options;
  options.max_incidents = 2;
  FlightRecorder recorder(&tel, nullptr, options);
  for (int i = 0; i < 5; ++i) {
    recorder.BeginIncident("node_crash", "incident " + std::to_string(i));
    recorder.CompleteIncident();
  }
  EXPECT_EQ(recorder.incident_count(), 2u);
  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"dropped_incidents\": 3"), std::string::npos) << json;
  // Oldest dropped first: 3 and 4 survive.
  EXPECT_NE(json.find("incident 3"), std::string::npos) << json;
  EXPECT_NE(json.find("incident 4"), std::string::npos) << json;
  EXPECT_EQ(json.find("incident 0"), std::string::npos) << json;
}

TEST(FlightRecorderTest, GoldenArtifactIsByteExact) {
  Telemetry tel(ManualClock());
  Counter events = tel.counter("engine.events_processed");
  events.Add(100);
  Aggregator agg(&tel);  // Baseline: 100.

  tel.AdvanceClock(1'000'000.0);
  events.Add(50);
  agg.SampleNow();  // Window: one sample (delta 50, rate 50/s).

  tel.AdvanceClock(500'000.0);
  tel.RecordSpan("engine", "sweep", 1'400'000.0, 1'500'000.0, 3, true);
  tel.RecordInstant("engine", "crash", 1, true);

  FlightRecorder recorder(&tel, &agg);
  recorder.BeginIncident("node_crash", "crash node 1 at t=1.5");
  tel.AdvanceClock(100'000.0);
  recorder.Note("supervisor: failure of node 1 detected");
  tel.AdvanceClock(100'000.0);
  recorder.Note("plan applied, moved 2 operators");
  recorder.CompleteIncident([](JsonWriter& w) {
    w.BeginObjectInline();
    w.Key("failed_node").Uint(1);
    w.Key("recovered").Bool(true);
    w.Key("availability").Double(0.97);
    w.EndObject();
  });

  std::ostringstream out;
  recorder.WriteJson(out);

  const std::string golden_path = std::string(ROD_TESTS_SOURCE_DIR) +
                                  "/golden/flight_recorder_incident.json";
  std::ifstream golden_in(golden_path);
  ASSERT_TRUE(golden_in.good()) << "missing golden: " << golden_path;
  std::ostringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(out.str(), golden.str())
      << "--- actual ---\n"
      << out.str() << "\n--- golden (" << golden_path << ") ---\n"
      << golden.str();
}

TEST(FlightRecorderTest, NullAggregatorOmitsWindow) {
  Telemetry tel(ManualClock());
  FlightRecorder recorder(&tel);
  recorder.BeginIncident("node_crash", "no window");
  recorder.CompleteIncident();
  std::ostringstream out;
  recorder.WriteJson(out);
  EXPECT_NE(out.str().find("\"aggregator\": null"), std::string::npos)
      << out.str();
}

}  // namespace
}  // namespace rod::telemetry
