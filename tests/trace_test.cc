// Tests for rate traces and the synthetic trace generators.

#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/bmodel.h"
#include "trace/onoff.h"

namespace rod::trace {
namespace {

TEST(RateTraceTest, BasicStatistics) {
  RateTrace t;
  t.window_sec = 2.0;
  t.rates = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(t.MeanRate(), 2.0);
  EXPECT_DOUBLE_EQ(t.StdDevRate(), 1.0);
  EXPECT_DOUBLE_EQ(t.CoefficientOfVariation(), 0.5);
  EXPECT_DOUBLE_EQ(t.duration(), 4.0);
  EXPECT_EQ(t.num_windows(), 2u);
}

TEST(RateTraceTest, RateAtClampsAndIndexes) {
  RateTrace t;
  t.window_sec = 1.0;
  t.rates = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(t.RateAt(-1.0), 10.0);
  EXPECT_DOUBLE_EQ(t.RateAt(0.5), 10.0);
  EXPECT_DOUBLE_EQ(t.RateAt(1.5), 20.0);
  EXPECT_DOUBLE_EQ(t.RateAt(99.0), 30.0);
  EXPECT_DOUBLE_EQ(RateTrace{}.RateAt(0.0), 0.0);
}

TEST(RateTraceTest, ScalingPreservesShape) {
  RateTrace t;
  t.window_sec = 1.0;
  t.rates = {1.0, 3.0};
  const RateTrace scaled = t.ScaledToMean(10.0);
  EXPECT_DOUBLE_EQ(scaled.MeanRate(), 10.0);
  EXPECT_DOUBLE_EQ(scaled.CoefficientOfVariation(),
                   t.CoefficientOfVariation());
  const RateTrace norm = t.Normalized();
  EXPECT_DOUBLE_EQ(norm.MeanRate(), 1.0);
}

TEST(BModelTest, ConservesVolumeAndMean) {
  BModelOptions options;
  options.levels = 10;
  options.bias = 0.7;
  options.mean_rate = 5.0;
  Rng rng(1);
  const RateTrace t = GenerateBModel(options, rng);
  EXPECT_EQ(t.num_windows(), 1024u);
  EXPECT_NEAR(t.MeanRate(), 5.0, 1e-9);  // cascade conserves total volume
  for (double r : t.rates) EXPECT_GE(r, 0.0);
}

TEST(BModelTest, BiasHalfIsFlat) {
  BModelOptions options;
  options.levels = 8;
  options.bias = 0.5;
  Rng rng(2);
  const RateTrace t = GenerateBModel(options, rng);
  EXPECT_NEAR(t.CoefficientOfVariation(), 0.0, 1e-12);
}

TEST(BModelTest, HigherBiasIsBurstier) {
  Rng rng1(3), rng2(3);
  BModelOptions mild{.levels = 12, .bias = 0.55};
  BModelOptions wild{.levels = 12, .bias = 0.8};
  const double cv_mild = GenerateBModel(mild, rng1).CoefficientOfVariation();
  const double cv_wild = GenerateBModel(wild, rng2).CoefficientOfVariation();
  EXPECT_GT(cv_wild, 2.0 * cv_mild);
}

TEST(BModelTest, TheoreticalCvMatchesEmpirical) {
  BModelOptions options;
  options.levels = 14;
  options.bias = 0.62;
  Rng rng(4);
  const RateTrace t = GenerateBModel(options, rng);
  const double expected = BModelTheoreticalCv(options.bias, options.levels);
  EXPECT_NEAR(t.CoefficientOfVariation(), expected, 0.15 * expected);
}

TEST(BModelTest, BiasForCvInvertsTheoreticalCv) {
  for (double cv : {0.2, 0.35, 0.5, 1.0}) {
    const double bias = BModelBiasForCv(cv, 12);
    EXPECT_GE(bias, 0.5);
    EXPECT_LT(bias, 1.0);
    EXPECT_NEAR(BModelTheoreticalCv(bias, 12), cv, 1e-9);
  }
}

TEST(OnOffTest, MeanRateMatchesDutyCycle) {
  OnOffOptions options;
  options.num_sources = 64;
  options.num_windows = 4096;
  options.mean_on = 2.0;
  options.mean_off = 6.0;
  options.peak_rate = 1.0;
  Rng rng(5);
  const RateTrace t = GenerateOnOff(options, rng);
  // Expected mean: sources * peak * on/(on+off) = 64 * 0.25 = 16.
  EXPECT_NEAR(t.MeanRate(), 16.0, 2.5);
  EXPECT_GT(t.CoefficientOfVariation(), 0.02);  // visibly bursty
}

TEST(OnOffTest, NonNegativeBoundedByPeakSum) {
  OnOffOptions options;
  options.num_sources = 8;
  options.num_windows = 512;
  Rng rng(6);
  const RateTrace t = GenerateOnOff(options, rng);
  for (double r : t.rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, options.peak_rate * options.num_sources + 1e-9);
  }
}

TEST(PresetTest, NamesAndNormalization) {
  EXPECT_STREQ(TracePresetName(TracePreset::kPkt), "PKT");
  EXPECT_STREQ(TracePresetName(TracePreset::kTcp), "TCP");
  EXPECT_STREQ(TracePresetName(TracePreset::kHttp), "HTTP");
  Rng rng(7);
  const RateTrace t = GeneratePreset(TracePreset::kPkt, 600, 1.0, rng);
  EXPECT_EQ(t.num_windows(), 600u);
  EXPECT_NEAR(t.MeanRate(), 1.0, 1e-9);
}

TEST(PresetTest, BurstinessOrderingMatchesFigure2) {
  // TCP > HTTP > PKT in variability, averaged over several seeds (one
  // cascade realization has high variance in its sample cv).
  double cv_pkt = 0, cv_tcp = 0, cv_http = 0;
  const int trials = 8;
  for (int s = 0; s < trials; ++s) {
    Rng r1(100 + s), r2(200 + s), r3(300 + s);
    cv_pkt += GeneratePreset(TracePreset::kPkt, 1024, 1.0, r1)
                  .CoefficientOfVariation();
    cv_tcp += GeneratePreset(TracePreset::kTcp, 1024, 1.0, r2)
                  .CoefficientOfVariation();
    cv_http += GeneratePreset(TracePreset::kHttp, 1024, 1.0, r3)
                   .CoefficientOfVariation();
  }
  EXPECT_GT(cv_tcp, cv_http);
  EXPECT_GT(cv_http, cv_pkt);
  // Calibration sanity: PKT ~ 0.2, TCP ~ 0.5 (loose bands; sample cv of a
  // finite cascade fluctuates).
  EXPECT_NEAR(cv_pkt / trials, 0.2, 0.1);
  EXPECT_NEAR(cv_tcp / trials, 0.5, 0.2);
}

TEST(SinusoidTest, MeanAmplitudeAndPeriod) {
  SinusoidOptions options;
  options.num_windows = 600;
  options.mean = 10.0;
  options.relative_amplitude = 0.5;
  options.period = 100.0;
  const RateTrace t = GenerateSinusoid(options);
  EXPECT_EQ(t.num_windows(), 600u);
  EXPECT_NEAR(t.MeanRate(), 10.0, 0.05);
  double lo = 1e300, hi = -1e300;
  for (double r : t.rates) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_NEAR(hi, 15.0, 0.1);
  EXPECT_NEAR(lo, 5.0, 0.1);
  // Periodicity: window w and w + period are equal.
  EXPECT_NEAR(t.rates[10], t.rates[110], 1e-9);
}

TEST(SinusoidTest, ClampsAtZeroForLargeAmplitude) {
  SinusoidOptions options;
  options.num_windows = 200;
  options.mean = 1.0;
  options.relative_amplitude = 2.0;  // would dip to -1 without clamping
  options.period = 50.0;
  const RateTrace t = GenerateSinusoid(options);
  for (double r : t.rates) EXPECT_GE(r, 0.0);
}

TEST(SinusoidTest, PhaseShiftsTheWave) {
  SinusoidOptions a;
  a.num_windows = 100;
  a.period = 100.0;
  SinusoidOptions b = a;
  b.phase = M_PI;  // half a cycle
  const RateTrace ta = GenerateSinusoid(a);
  const RateTrace tb = GenerateSinusoid(b);
  // Anti-phased: where a is above mean, b is below.
  EXPECT_NEAR(ta.rates[20] - 1.0, -(tb.rates[20] - 1.0), 1e-9);
}

TEST(PresetTest, BurstyAtCoarserTimeScales) {
  // Self-similarity: aggregating 16x must leave substantial variability
  // (an iid series' cv would fall by 4x; the cascade's falls much less).
  Rng rng(9);
  const RateTrace t = GeneratePreset(TracePreset::kTcp, 4096, 1.0, rng);
  std::vector<double> coarse;
  for (size_t i = 0; i + 16 <= t.rates.size(); i += 16) {
    double sum = 0.0;
    for (size_t j = 0; j < 16; ++j) sum += t.rates[i + j];
    coarse.push_back(sum / 16.0);
  }
  RateTrace ct;
  ct.rates = coarse;
  EXPECT_GT(ct.CoefficientOfVariation(),
            0.4 * t.CoefficientOfVariation());
}

}  // namespace
}  // namespace rod::trace
