// Bit-exactness of the AVX2 membership kernel against the scalar
// reference path: same verdict for every sample — hence the same count —
// across odd sample counts, ranges that start off a lane-group boundary
// (misaligned tails), dimensions above the lane-group width, and the
// affinely-mapped lower-bound variant. Vector-path tests skip on
// machines without AVX2; the dispatch plumbing tests always run.

#include "geometry/simd_kernel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "geometry/feasible_set.h"
#include "geometry/hyperplane.h"
#include "geometry/sample_cache.h"

namespace rod::geom {
namespace {

/// Restores runtime dispatch however a test toggled it.
struct SimdGuard {
  ~SimdGuard() { SetSimdKernelEnabled(true); }
};

Matrix RandomWeights(size_t rows, size_t dims, uint64_t seed) {
  Matrix w(rows, dims);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t k = 0; k < dims; ++k) {
      w(i, k) = rng.Uniform(0.2, 3.0);
    }
  }
  return w;
}

/// The scalar verdict the kernel documents itself against: dot products
/// accumulated in k order as mul-then-add (exactly hyperplane.h's Dot),
/// every row tested against W x <= 1 + tol.
size_t ReferenceCount(const Matrix& weights, const Matrix& samples,
                      size_t begin, size_t end, const double* lower_bound,
                      double scale, double tol) {
  const size_t d = samples.cols();
  std::vector<double> mapped(d);
  size_t feasible = 0;
  for (size_t s = begin; s < end; ++s) {
    std::span<const double> x = samples.Row(s);
    if (lower_bound != nullptr) {
      for (size_t k = 0; k < d; ++k) {
        mapped[k] = lower_bound[k] + scale * x[k];
      }
      x = mapped;
    }
    bool inside = true;
    for (size_t i = 0; i < weights.rows(); ++i) {
      if (Dot(weights.Row(i), x) > 1.0 + tol) {
        inside = false;
        break;
      }
    }
    if (inside) ++feasible;
  }
  return feasible;
}

TEST(SimdKernelTest, IsaNameTracksToggle) {
  SimdGuard guard;
  SetSimdKernelEnabled(false);
  EXPECT_STREQ(ActiveSimdIsa(), "scalar");
  EXPECT_FALSE(SimdKernelEnabled());
  SetSimdKernelEnabled(true);
  if (SimdKernelAvailable()) {
    EXPECT_STREQ(ActiveSimdIsa(), "avx2");
    EXPECT_TRUE(SimdKernelEnabled());
  } else {
    EXPECT_STREQ(ActiveSimdIsa(), "scalar");
  }
}

TEST(SimdKernelTest, DirectKernelMatchesScalarOnMisalignedRanges) {
  if (!SimdKernelAvailable()) GTEST_SKIP() << "no AVX2 on this machine";
  // Odd sample counts and dims straddling the 4-wide lane group; begins
  // off the group boundary force partial-group bookkeeping.
  for (size_t dims : {1u, 2u, 3u, 4u, 5u, 7u, 11u}) {
    for (size_t num_samples : {5u, 7u, 63u, 130u}) {
      SimplexSampleKey key;
      key.dims = dims;
      key.num_samples = num_samples;
      const SimplexSampleSet set = GenerateSimplexSampleSet(key);
      const Matrix weights = RandomWeights(3, dims, 0xabc0 + dims);
      for (size_t begin : {0u, 1u, 2u, 3u, 5u}) {
        if (begin >= num_samples) continue;
        const size_t end = num_samples;
        size_t tail = begin;
        const size_t simd_count = CountContainedAvx2(
            weights.Row(0).data(), weights.rows(), dims, set.lanes.data(),
            set.lane_stride, begin, end, /*lower_bound=*/nullptr,
            /*scale=*/1.0, /*tol=*/1e-9, /*map_scratch=*/nullptr, &tail);
        const size_t full_groups = (end - begin) / kSimdGroup;
        EXPECT_EQ(tail, begin + kSimdGroup * full_groups)
            << "dims=" << dims << " n=" << num_samples << " begin=" << begin;
        EXPECT_EQ(simd_count,
                  ReferenceCount(weights, set.samples, begin, tail,
                                 /*lower_bound=*/nullptr, 1.0, 1e-9))
            << "dims=" << dims << " n=" << num_samples << " begin=" << begin;
      }
    }
  }
}

TEST(SimdKernelTest, DirectKernelMatchesScalarWithLowerBoundMapping) {
  if (!SimdKernelAvailable()) GTEST_SKIP() << "no AVX2 on this machine";
  for (size_t dims : {2u, 5u, 9u}) {
    const size_t num_samples = 101;  // odd: scalar tail of one sample
    SimplexSampleKey key;
    key.dims = dims;
    key.num_samples = num_samples;
    const SimplexSampleSet set = GenerateSimplexSampleSet(key);
    const Matrix weights = RandomWeights(4, dims, 0xbee0 + dims);
    std::vector<double> lb(dims);
    for (size_t k = 0; k < dims; ++k) {
      lb[k] = 0.01 * static_cast<double>(k + 1);
    }
    const double scale = 0.75;
    std::vector<double> scratch(kSimdGroup * dims);
    size_t tail = 0;
    const size_t simd_count = CountContainedAvx2(
        weights.Row(0).data(), weights.rows(), dims, set.lanes.data(),
        set.lane_stride, 0, num_samples, lb.data(), scale, 1e-9,
        scratch.data(), &tail);
    EXPECT_EQ(tail, num_samples - num_samples % kSimdGroup);
    EXPECT_EQ(simd_count, ReferenceCount(weights, set.samples, 0, tail,
                                         lb.data(), scale, 1e-9))
        << "dims=" << dims;
  }
}

TEST(SimdKernelTest, RatioToIdealIdenticalAcrossPaths) {
  if (!SimdKernelAvailable()) GTEST_SKIP() << "no AVX2 on this machine";
  SimdGuard guard;
  for (size_t dims : {2u, 3u, 5u, 8u}) {
    const Matrix weights = RandomWeights(6, dims, 0xfeed + dims);
    const FeasibleSet fs{Matrix(weights)};
    VolumeOptions vol;
    vol.num_samples = 4097;  // odd: exercises the scalar tail
    SetSimdKernelEnabled(true);
    const double simd_ratio = fs.RatioToIdeal(vol);
    SetSimdKernelEnabled(false);
    const double scalar_ratio = fs.RatioToIdeal(vol);
    EXPECT_EQ(simd_ratio, scalar_ratio) << "dims=" << dims;

    std::vector<double> lb(dims, 0.02);
    SetSimdKernelEnabled(true);
    const auto simd_above = fs.RatioToIdealAbove(lb, vol);
    SetSimdKernelEnabled(false);
    const auto scalar_above = fs.RatioToIdealAbove(lb, vol);
    ASSERT_TRUE(simd_above.ok());
    ASSERT_TRUE(scalar_above.ok());
    EXPECT_EQ(*simd_above, *scalar_above) << "dims=" << dims;
  }
}

TEST(SimdKernelTest, ThreadedCountsIdenticalAcrossPaths) {
  if (!SimdKernelAvailable()) GTEST_SKIP() << "no AVX2 on this machine";
  SimdGuard guard;
  const size_t dims = 6;
  const Matrix weights = RandomWeights(8, dims, 0x5eed);
  const FeasibleSet fs{Matrix(weights)};
  VolumeOptions vol;
  vol.num_samples = 8191;  // odd and spanning several kernel chunks
  SetSimdKernelEnabled(true);
  const double base = fs.RatioToIdeal(vol);
  for (size_t threads : {1u, 2u, 4u}) {
    vol.num_threads = threads;
    SetSimdKernelEnabled(true);
    EXPECT_EQ(fs.RatioToIdeal(vol), base) << "simd threads=" << threads;
    SetSimdKernelEnabled(false);
    EXPECT_EQ(fs.RatioToIdeal(vol), base) << "scalar threads=" << threads;
  }
}

}  // namespace
}  // namespace rod::geom
