// Tests for Hurst exponent estimation (self-similarity verification).

#include "trace/hurst.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "trace/bmodel.h"
#include "trace/onoff.h"

namespace rod::trace {
namespace {

TEST(HurstTest, RejectsShortSeries) {
  EXPECT_FALSE(EstimateHurstRS(std::vector<double>(10, 1.0)).ok());
  EXPECT_FALSE(EstimateHurstVarianceTime(std::vector<double>(32, 1.0)).ok());
}

TEST(HurstTest, WhiteNoiseNearHalf) {
  Rng rng(1);
  std::vector<double> noise(8192);
  for (double& x : noise) x = rng.Normal();
  auto h = EstimateHurstRS(noise);
  ASSERT_TRUE(h.ok());
  // R/S on finite iid samples biases slightly above 0.5 (Anis–Lloyd).
  EXPECT_NEAR(*h, 0.55, 0.08);
}

TEST(HurstTest, IncreasingTrendNearOne) {
  // A strongly persistent series: cumulative sum of positive drift noise.
  Rng rng(2);
  std::vector<double> series(4096);
  double level = 0.0;
  for (double& x : series) {
    level += 0.01 + 0.001 * rng.Normal();
    x = level;
  }
  auto h = EstimateHurstRS(series);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(*h, 0.85);
}

TEST(HurstTest, AlternatingSeriesAntiPersistent) {
  std::vector<double> series(2048);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = (i % 2 == 0) ? 1.0 : -1.0;
  }
  auto h = EstimateHurstRS(series);
  ASSERT_TRUE(h.ok());
  EXPECT_LT(*h, 0.3);
}

TEST(HurstTest, BModelCascadeIsPersistent) {
  BModelOptions options;
  options.levels = 13;
  options.bias = 0.7;
  Rng rng(3);
  const RateTrace t = GenerateBModel(options, rng);
  auto h = EstimateHurstRS(t.rates);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(*h, 0.6);  // long-range dependent, like the paper's traces
}

TEST(HurstTest, OnOffAggregateIsPersistent) {
  OnOffOptions options;
  options.num_sources = 64;
  options.num_windows = 8192;
  options.alpha_on = 1.4;  // theoretical H = (3 - 1.4)/2 = 0.8
  options.alpha_off = 1.4;
  Rng rng(4);
  const RateTrace t = GenerateOnOff(options, rng);
  auto h = EstimateHurstRS(t.rates);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(*h, 0.62);
  EXPECT_LT(*h, 1.05);
}

TEST(HurstTest, VarianceTimeAgreesWithRSOnPersistentSeries) {
  BModelOptions options;
  options.levels = 13;
  options.bias = 0.65;
  Rng rng(5);
  const RateTrace t = GenerateBModel(options, rng);
  auto rs = EstimateHurstRS(t.rates);
  auto vt = EstimateHurstVarianceTime(t.rates);
  ASSERT_TRUE(rs.ok() && vt.ok());
  EXPECT_NEAR(*rs, *vt, 0.25);  // different estimators; rough agreement
  EXPECT_GT(*vt, 0.55);
}

TEST(HurstTest, ConstantSeriesFailsGracefully) {
  EXPECT_FALSE(EstimateHurstRS(std::vector<double>(1024, 3.0)).ok());
}

}  // namespace
}  // namespace rod::trace
