// Property-based invariant sweeps (TEST_P) over randomized query graphs,
// placements, and cluster shapes. Each property is the paper's algebra made
// executable: L^n = A L^o, Theorem 1's bounds, normalization identities,
// linearization consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/feasible_set.h"
#include "geometry/hyperplane.h"
#include "geometry/polygon2d.h"
#include "geometry/qmc.h"
#include "placement/baselines.h"
#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod {
namespace {

using place::Placement;
using place::PlacementEvaluator;
using place::SystemSpec;
using query::QueryGraph;

struct SweepCase {
  uint64_t seed;
  size_t inputs;
  size_t ops_per_tree;
  size_t nodes;
};

void PrintTo(const SweepCase& c, std::ostream* os) {
  *os << "seed=" << c.seed << " d=" << c.inputs << " m/tree=" << c.ops_per_tree
      << " n=" << c.nodes;
}

class GraphSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    const SweepCase& c = GetParam();
    query::GraphGenOptions gen;
    gen.num_input_streams = c.inputs;
    gen.ops_per_tree = c.ops_per_tree;
    Rng rng(c.seed);
    graph_ = query::GenerateRandomTrees(gen, rng);
    auto model = query::BuildLoadModel(graph_);
    ASSERT_TRUE(model.ok());
    model_ = std::move(*model);
    system_ = SystemSpec::Homogeneous(c.nodes);
  }

  Placement RandomPlacement(uint64_t seed) {
    Rng rng(seed);
    auto p = place::RandomPlace(model_, system_, rng);
    EXPECT_TRUE(p.ok());
    return *p;
  }

  QueryGraph graph_;
  query::LoadModel model_;
  SystemSpec system_;
};

TEST_P(GraphSweepTest, NodeCoeffsEqualAllocationTimesOpCoeffs) {
  const Placement p = RandomPlacement(1);
  const Matrix direct = p.NodeCoeffs(model_.op_coeffs());
  const Matrix via = p.AllocationMatrix().MatMul(model_.op_coeffs());
  EXPECT_TRUE(direct.AlmostEquals(via, 1e-9));
}

TEST_P(GraphSweepTest, ColumnSumsInvariantUnderPlacement) {
  // Constraint (1) of Theorem 1: sum_i l^n_ik = sum_j l^o_jk = l_k for any
  // placement.
  for (uint64_t s : {2u, 3u}) {
    const Matrix ln = RandomPlacement(s).NodeCoeffs(model_.op_coeffs());
    for (size_t k = 0; k < model_.num_vars(); ++k) {
      EXPECT_NEAR(ln.ColSum(k), model_.total_coeffs()[k], 1e-9);
    }
  }
}

TEST_P(GraphSweepTest, WeightedCapacityMeanIsOne) {
  // sum_i w_ik * (C_i / C_T) = 1 for every stream k: the capacity-weighted
  // average weight of a stream is always exactly 1.
  const PlacementEvaluator eval(model_, system_);
  auto w = eval.WeightMatrix(RandomPlacement(4));
  ASSERT_TRUE(w.ok());
  const double ct = system_.TotalCapacity();
  for (size_t k = 0; k < w->cols(); ++k) {
    double acc = 0.0;
    for (size_t i = 0; i < w->rows(); ++i) {
      acc += (*w)(i, k) * system_.capacities[i] / ct;
    }
    EXPECT_NEAR(acc, 1.0, 1e-9);
  }
}

TEST_P(GraphSweepTest, RatioNeverExceedsOne) {
  const PlacementEvaluator eval(model_, system_);
  geom::VolumeOptions vol;
  vol.num_samples = 4096;
  for (uint64_t s : {5u, 6u}) {
    auto ratio = eval.RatioToIdeal(RandomPlacement(s), vol);
    ASSERT_TRUE(ratio.ok());
    EXPECT_GE(*ratio, 0.0);
    EXPECT_LE(*ratio, 1.0 + 1e-12);
  }
}

TEST_P(GraphSweepTest, MmadBoundHolds) {
  // §4.1: ratio >= prod_k min(1, min-axis-distance_k).
  const PlacementEvaluator eval(model_, system_);
  geom::VolumeOptions vol;
  vol.num_samples = 1u << 14;
  const Placement p = RandomPlacement(7);
  auto w = eval.WeightMatrix(p);
  ASSERT_TRUE(w.ok());
  auto ratio = eval.RatioToIdeal(p, vol);
  ASSERT_TRUE(ratio.ok());
  EXPECT_GE(*ratio + 0.02, geom::AxisDistanceVolumeLowerBound(*w));
}

TEST_P(GraphSweepTest, HypersphereBoundHolds) {
  // §4.2: the feasible set contains the nonneg-orthant part of the
  // r-sphere, so ratio * V(F*) >= orthant sphere volume; a cheaper check:
  // every sampled infeasible point lies farther than r from the origin.
  const PlacementEvaluator eval(model_, system_);
  const Placement p = RandomPlacement(8);
  auto w = eval.WeightMatrix(p);
  ASSERT_TRUE(w.ok());
  const double r = geom::MinPlaneDistance(*w);
  const geom::FeasibleSet fs(*w);
  geom::HaltonSequence halton(model_.num_vars());
  for (int s = 0; s < 2000; ++s) {
    const Vector x = geom::MapUnitCubeToSimplex(halton.Next());
    if (!fs.Contains(x)) {
      EXPECT_GE(Norm2(x), r - 1e-9);
    }
  }
}

TEST_P(GraphSweepTest, RodFeasibleSetContainsPointsBelowMinPlane) {
  // ROD's plan must itself satisfy the same geometry.
  auto plan = place::RodPlace(model_, system_);
  ASSERT_TRUE(plan.ok());
  const PlacementEvaluator eval(model_, system_);
  auto w = eval.WeightMatrix(*plan);
  ASSERT_TRUE(w.ok());
  const geom::FeasibleSet fs(*w);
  const double r = geom::MinPlaneDistance(*w);
  // Points strictly inside the r-sphere are always feasible.
  Rng rng(99);
  for (int s = 0; s < 500; ++s) {
    Vector x(model_.num_vars());
    double norm = 0.0;
    for (double& v : x) {
      v = rng.NextDouble();
      norm += v * v;
    }
    norm = std::sqrt(norm);
    const double scale = 0.99 * r / norm * rng.NextDouble();
    for (double& v : x) v *= scale;
    EXPECT_TRUE(fs.Contains(x));
  }
}

TEST_P(GraphSweepTest, AnalyticFeasibilityMatchesNormalizedContainment) {
  // FeasibleAt(R) <=> normalized point within the weight polytope.
  const PlacementEvaluator eval(model_, system_);
  const Placement p = RandomPlacement(10);
  auto w = eval.WeightMatrix(p);
  ASSERT_TRUE(w.ok());
  const geom::FeasibleSet fs(*w);
  Rng rng(123);
  const double ct = system_.TotalCapacity();
  for (int s = 0; s < 200; ++s) {
    Vector rates(model_.num_system_inputs());
    for (size_t k = 0; k < rates.size(); ++k) {
      // Up to ~1.5x the single-stream ideal boundary.
      rates[k] = rng.NextDouble() * 1.5 * ct /
                 (model_.total_coeffs()[k] *
                  static_cast<double>(rates.size()));
    }
    const Vector x =
        geom::NormalizePoint(rates, model_.total_coeffs(), ct);
    EXPECT_EQ(eval.FeasibleAt(p, rates), fs.Contains(x))
        << "sample " << s;
  }
}

TEST_P(GraphSweepTest, RodBeatsOrMatchesRandomOnAverage) {
  const PlacementEvaluator eval(model_, system_);
  geom::VolumeOptions vol;
  vol.num_samples = 8192;
  auto rod = place::RodPlace(model_, system_);
  ASSERT_TRUE(rod.ok());
  auto rod_ratio = eval.RatioToIdeal(*rod, vol);
  ASSERT_TRUE(rod_ratio.ok());
  double random_sum = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    auto ratio = eval.RatioToIdeal(RandomPlacement(1000 + t), vol);
    ASSERT_TRUE(ratio.ok());
    random_sum += *ratio;
  }
  EXPECT_GE(*rod_ratio + 1e-9, random_sum / trials);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GraphSweepTest,
    ::testing::Values(SweepCase{101, 2, 8, 2}, SweepCase{102, 2, 20, 3},
                      SweepCase{103, 3, 10, 2}, SweepCase{104, 3, 25, 4},
                      SweepCase{105, 5, 12, 3}, SweepCase{106, 5, 30, 5},
                      SweepCase{107, 7, 15, 4}, SweepCase{108, 4, 40, 6}));

// --- 2-D exactness sweep: QMC volume vs polygon area on random weights ---

class Exact2DSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Exact2DSweepTest, QmcAgreesWithPolygon) {
  Rng rng(GetParam());
  const size_t n = 1 + rng.NextIndex(4);
  Matrix w(n, 2);
  for (size_t i = 0; i < n; ++i) {
    w(i, 0) = rng.Uniform(0.0, 3.0);
    w(i, 1) = rng.Uniform(0.0, 3.0);
  }
  const double exact = *geom::ExactRatioToIdeal2D(w);
  geom::VolumeOptions vol;
  vol.num_samples = 1u << 15;
  const double qmc = geom::FeasibleSet(w).RatioToIdeal(vol);
  EXPECT_NEAR(qmc, exact, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Exact2DSweepTest,
                         ::testing::Range<uint64_t>(1, 21));

// --- Linearization identity sweep over graphs with joins ---

class JoinSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinSweepTest, CoefficientLoadsMatchDirectLoads) {
  Rng rng(GetParam());
  // Random 2-input graph with a join over two random-depth chains.
  QueryGraph g;
  const auto i0 = g.AddInputStream("L");
  const auto i1 = g.AddInputStream("R");
  query::StreamRef left = query::StreamRef::Input(i0);
  query::StreamRef right = query::StreamRef::Input(i1);
  const int depth = 1 + static_cast<int>(rng.NextIndex(3));
  for (int j = 0; j < depth; ++j) {
    left = query::StreamRef::Op(*g.AddOperator(
        {.name = "l" + std::to_string(j),
         .kind = query::OperatorKind::kFilter,
         .cost = rng.Uniform(0.5, 2.0),
         .selectivity = rng.Uniform(0.3, 1.0)},
        {left}));
    right = query::StreamRef::Op(*g.AddOperator(
        {.name = "r" + std::to_string(j),
         .kind = query::OperatorKind::kFilter,
         .cost = rng.Uniform(0.5, 2.0),
         .selectivity = rng.Uniform(0.3, 1.0)},
        {right}));
  }
  auto join = g.AddOperator({.name = "join",
                             .kind = query::OperatorKind::kJoin,
                             .cost = rng.Uniform(0.1, 1.0),
                             .selectivity = rng.Uniform(0.1, 0.9),
                             .window = rng.Uniform(0.5, 4.0)},
                            {left, right});
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(g.AddOperator({.name = "down",
                             .kind = query::OperatorKind::kMap,
                             .cost = rng.Uniform(0.5, 2.0)},
                            {query::StreamRef::Op(*join)})
                  .ok());
  auto model = query::BuildLinearizedLoadModel(g);
  ASSERT_TRUE(model.ok());
  for (int s = 0; s < 20; ++s) {
    const Vector rates = {rng.Uniform(0.0, 5.0), rng.Uniform(0.0, 5.0)};
    const Vector direct = model->OperatorLoadsAt(rates);
    const Vector via = model->op_coeffs().MatVec(model->ExtendRates(rates));
    for (size_t j = 0; j < direct.size(); ++j) {
      EXPECT_NEAR(direct[j], via[j], 1e-6 * (1.0 + direct[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinSweepTest,
                         ::testing::Range<uint64_t>(1, 16));

}  // namespace
}  // namespace rod
