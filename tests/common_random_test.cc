// Tests for the deterministic PRNG.

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace rod {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += a.NextU64() != b.NextU64();
  EXPECT_GT(differing, 60);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.NextU64());
  a.Reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.NextU64(), first[i]);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Uniform(-3.0, 5.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.5);
  }
}

TEST(RngTest, UniformMeanApproximatelyCentered) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(0.0, 10.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, NextIndexCoversRangeUniformly) {
  Rng rng(9);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextIndex(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, ParetoScaleAndMean) {
  Rng rng(19);
  const int n = 400000;
  double sum = 0.0;
  double min_seen = 1e300;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Pareto(2.0, 3.0);
    min_seen = std::min(min_seen, x);
    sum += x;
  }
  EXPECT_GE(min_seen, 2.0);          // support is [xm, inf)
  EXPECT_NEAR(sum / n, 3.0, 0.05);   // mean = xm * a/(a-1) = 3
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleUniformFirstElement) {
  Rng rng(29);
  std::vector<int> counts(5, 0);
  for (int trial = 0; trial < 50000; ++trial) {
    std::vector<int> v = {0, 1, 2, 3, 4};
    rng.Shuffle(v);
    ++counts[v[0]];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // The child must not replay the parent's continuation.
  Rng parent_copy(31);
  (void)parent_copy.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child.NextU64() == parent.NextU64();
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace rod
