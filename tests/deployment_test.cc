// Tests for deployment compilation (graph + placement -> routing tables).

#include "runtime/deployment.h"

#include <gtest/gtest.h>

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

QueryGraph ChainWithJoin() {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("L");
  const InputStreamId i1 = g.AddInputStream("R");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Input(i0)}, {7e-4});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kFilter,
                          .cost = 2e-3, .selectivity = 0.5},
                         {StreamRef::Input(i1)});
  auto j = g.AddOperator({.name = "j", .kind = OperatorKind::kJoin,
                          .cost = 1e-5, .selectivity = 0.3, .window = 2.0},
                         {StreamRef::Op(*a), StreamRef::Op(*b)}, {1e-4, 0.0});
  EXPECT_TRUE(j.ok());
  return g;
}

TEST(DeploymentTest, CompilesRoutingTables) {
  const QueryGraph g = ChainWithJoin();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto dep = CompileDeployment(g, Placement(2, {0, 1, 0}), system);
  ASSERT_TRUE(dep.ok());
  EXPECT_EQ(dep->num_nodes(), 2u);
  EXPECT_EQ(dep->num_inputs(), 2u);
  ASSERT_EQ(dep->ops.size(), 3u);

  // Input routes: L -> a (node 0), R -> b (node 1); ingestion always
  // "crosses" (external sources).
  ASSERT_EQ(dep->input_routes[0].size(), 1u);
  EXPECT_EQ(dep->input_routes[0][0].to_op, 0u);
  EXPECT_TRUE(dep->input_routes[0][0].crosses_nodes);
  EXPECT_DOUBLE_EQ(dep->input_routes[0][0].comm_cost, 7e-4);

  // a (node 0) -> j (node 0): local. b (node 1) -> j (node 0): crossing.
  ASSERT_EQ(dep->ops[0].consumers.size(), 1u);
  EXPECT_FALSE(dep->ops[0].consumers[0].crosses_nodes);
  EXPECT_EQ(dep->ops[0].consumers[0].to_port, 0u);
  ASSERT_EQ(dep->ops[1].consumers.size(), 1u);
  EXPECT_TRUE(dep->ops[1].consumers[0].crosses_nodes);
  EXPECT_EQ(dep->ops[1].consumers[0].to_port, 1u);
}

TEST(DeploymentTest, SinkDetectionAndJoinWindowHalving) {
  const QueryGraph g = ChainWithJoin();
  const SystemSpec system = SystemSpec::Homogeneous(1);
  auto dep = CompileDeployment(g, Placement(1, {0, 0, 0}), system);
  ASSERT_TRUE(dep.ok());
  EXPECT_FALSE(dep->ops[0].is_sink);
  EXPECT_FALSE(dep->ops[1].is_sink);
  EXPECT_TRUE(dep->ops[2].is_sink);
  EXPECT_TRUE(dep->ops[2].is_join);
  // Symmetric probing convention: per-side horizon = window / 2.
  EXPECT_DOUBLE_EQ(dep->ops[2].window, 1.0);
  EXPECT_DOUBLE_EQ(dep->ops[1].selectivity, 0.5);
}

TEST(DeploymentTest, ValidatesShapes) {
  const QueryGraph g = ChainWithJoin();
  const SystemSpec system = SystemSpec::Homogeneous(2);
  // Placement with wrong operator count.
  EXPECT_FALSE(CompileDeployment(g, Placement(2, {0, 1}), system).ok());
  // Placement whose node count disagrees with the system.
  EXPECT_FALSE(
      CompileDeployment(g, Placement(3, {0, 1, 2}), system).ok());
  // Invalid system.
  EXPECT_FALSE(
      CompileDeployment(g, Placement(2, {0, 1, 0}), SystemSpec{}).ok());
  // Invalid graph.
  QueryGraph empty;
  EXPECT_FALSE(
      CompileDeployment(empty, Placement(1, {}), SystemSpec::Homogeneous(1))
          .ok());
}

TEST(DeploymentTest, FanOutCompilesOneRoutePerConsumer) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto src = g.AddOperator({.name = "src", .kind = OperatorKind::kMap,
                            .cost = 1e-3},
                           {StreamRef::Input(in)});
  for (int c = 0; c < 3; ++c) {
    ASSERT_TRUE(g.AddOperator({.name = "c" + std::to_string(c),
                               .kind = OperatorKind::kMap, .cost = 1e-3},
                              {StreamRef::Op(*src)})
                    .ok());
  }
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto dep = CompileDeployment(g, Placement(2, {0, 0, 1, 1}), system);
  ASSERT_TRUE(dep.ok());
  ASSERT_EQ(dep->ops[0].consumers.size(), 3u);
  size_t crossing = 0;
  for (const Route& r : dep->ops[0].consumers) crossing += r.crosses_nodes;
  EXPECT_EQ(crossing, 2u);  // consumers on node 1
}

TEST(DeploymentTest, ReassignOperatorsRemapsHostsAndCrossFlags) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Op(*a)}, {2e-3});
  ASSERT_TRUE(b.ok());
  const SystemSpec system = SystemSpec::Homogeneous(3);
  auto dep = CompileDeployment(g, Placement(3, {0, 0}), system);
  ASSERT_TRUE(dep.ok());
  EXPECT_FALSE(dep->ops[0].consumers[0].crosses_nodes);

  // Move b to node 2: the a->b arc now crosses, comm cost unchanged.
  auto moved = ReassignOperators(*dep, {0, 2});
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(*moved, std::vector<uint32_t>{1});
  EXPECT_EQ(dep->ops[1].node, 2u);
  EXPECT_TRUE(dep->ops[0].consumers[0].crosses_nodes);
  EXPECT_DOUBLE_EQ(dep->ops[0].consumers[0].comm_cost, 2e-3);
  // Input routes keep crossing (external sources).
  EXPECT_TRUE(dep->input_routes[0][0].crosses_nodes);

  // Reunite both on node 2: the arc stops crossing.
  auto moved2 = ReassignOperators(*dep, {2, 2});
  ASSERT_TRUE(moved2.ok());
  EXPECT_EQ(*moved2, std::vector<uint32_t>{0});
  EXPECT_FALSE(dep->ops[0].consumers[0].crosses_nodes);

  // No-op reassignment moves nothing.
  auto moved3 = ReassignOperators(*dep, {2, 2});
  ASSERT_TRUE(moved3.ok());
  EXPECT_TRUE(moved3->empty());

  // Validation: wrong size, node outside the cluster.
  EXPECT_FALSE(ReassignOperators(*dep, {0}).ok());
  EXPECT_FALSE(ReassignOperators(*dep, {0, 3}).ok());
}

}  // namespace
}  // namespace rod::sim
