// Tests for the Lasserre exact polytope volume and its agreement with the
// polygon (d = 2) and QMC (d >= 3) estimators.

#include "geometry/exact_volume.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "geometry/feasible_set.h"
#include "geometry/polygon2d.h"

namespace rod::geom {
namespace {

/// Constraints for the unit box [0, s]^d.
void BoxSystem(size_t d, double s, Matrix* a, Vector* b) {
  *a = Matrix(2 * d, d);
  b->assign(2 * d, 0.0);
  for (size_t k = 0; k < d; ++k) {
    (*a)(k, k) = 1.0;
    (*b)[k] = s;
    (*a)(d + k, k) = -1.0;
    (*b)[d + k] = 0.0;
  }
}

TEST(PolytopeVolumeTest, UnitBoxes) {
  for (size_t d : {1u, 2u, 3u, 4u, 5u}) {
    Matrix a;
    Vector b;
    BoxSystem(d, 1.0, &a, &b);
    auto v = PolytopeVolume(a, b);
    ASSERT_TRUE(v.ok()) << d;
    EXPECT_NEAR(*v, 1.0, 1e-9) << "d = " << d;
  }
}

TEST(PolytopeVolumeTest, ScaledBox) {
  Matrix a;
  Vector b;
  BoxSystem(3, 0.5, &a, &b);
  auto v = PolytopeVolume(a, b);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.125, 1e-9);
}

TEST(PolytopeVolumeTest, StandardSimplices) {
  for (size_t d : {2u, 3u, 4u, 5u}) {
    Matrix a(d + 1, d);
    Vector b(d + 1, 0.0);
    for (size_t k = 0; k < d; ++k) {
      a(k, k) = -1.0;                       // x_k >= 0
      a(d, k) = 1.0;                        // sum <= 1
    }
    b[d] = 1.0;
    auto v = PolytopeVolume(a, b);
    ASSERT_TRUE(v.ok());
    EXPECT_NEAR(*v, 1.0 / std::tgamma(static_cast<double>(d) + 1.0), 1e-9)
        << "d = " << d;
  }
}

TEST(PolytopeVolumeTest, RedundantConstraintsHarmless) {
  Matrix a;
  Vector b;
  BoxSystem(3, 1.0, &a, &b);
  // Add a redundant plane and a duplicate of an existing facet.
  Matrix a2(a.rows() + 2, 3);
  Vector b2 = b;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < 3; ++k) a2(i, k) = a(i, k);
  }
  a2(a.rows(), 0) = 1.0;  // x <= 10 (redundant)
  b2.push_back(10.0);
  a2(a.rows() + 1, 1) = 2.0;  // 2y <= 2 == facet y <= 1 duplicated
  b2.push_back(2.0);
  auto v = PolytopeVolume(a2, b2);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 1.0, 1e-9);
}

TEST(PolytopeVolumeTest, EmptyPolytopeIsZero) {
  // x >= 1 and x <= 0 in a box.
  Matrix a(4, 2);
  Vector b(4, 0.0);
  a(0, 0) = 1.0;
  b[0] = 0.0;  // x <= 0
  a(1, 0) = -1.0;
  b[1] = -1.0;  // x >= 1
  a(2, 1) = 1.0;
  b[2] = 1.0;
  a(3, 1) = -1.0;
  b[3] = 0.0;
  auto v = PolytopeVolume(a, b);
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 0.0, 1e-12);
}

TEST(PolytopeVolumeTest, UnboundedRejected) {
  Matrix a(1, 2);
  a(0, 0) = 1.0;
  Vector b = {1.0};
  EXPECT_FALSE(PolytopeVolume(a, b).ok());
}

TEST(PolytopeVolumeTest, GuardsAndValidation) {
  Matrix a(2, 7, 1.0);
  Vector b(2, 1.0);
  EXPECT_FALSE(PolytopeVolume(a, b).ok());  // d = 7 > default guard
  Matrix ok(1, 2, 1.0);
  EXPECT_FALSE(PolytopeVolume(ok, Vector{1.0, 2.0}).ok());  // size mismatch
}

TEST(ExactRatioNDTest, IdealMatrixGivesOne) {
  for (size_t d : {2u, 3u, 4u}) {
    Matrix w(3, d, 1.0);
    auto r = ExactRatioToIdealND(w);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(*r, 1.0, 1e-9) << d;
  }
}

TEST(ExactRatioNDTest, HandComputed3D) {
  // W = 2*I in 3-D: feasible = {x <= 1/2 each} ∩ {sum <= 1}. Volume =
  // (1/2)^3 - (corner simplex with legs 1/2) = 1/8 - 1/48 = 5/48;
  // ratio = (5/48) / (1/6) = 5/8.
  Matrix w(3, 3);
  for (size_t i = 0; i < 3; ++i) w(i, i) = 2.0;
  auto r = ExactRatioToIdealND(w);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(*r, 5.0 / 8.0, 1e-9);
}

TEST(ExactRatioNDTest, MatchesPolygonIn2D) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix w(1 + rng.NextIndex(4), 2);
    for (size_t i = 0; i < w.rows(); ++i) {
      w(i, 0) = rng.Uniform(0.0, 3.0);
      w(i, 1) = rng.Uniform(0.0, 3.0);
    }
    const double polygon = *ExactRatioToIdeal2D(w);
    auto lasserre = ExactRatioToIdealND(w);
    ASSERT_TRUE(lasserre.ok());
    EXPECT_NEAR(*lasserre, polygon, 1e-9) << w.ToString();
  }
}

TEST(ExactRatioNDTest, MatchesQmcIn3And4D) {
  Rng rng(13);
  VolumeOptions vol;
  vol.num_samples = 1u << 16;
  for (size_t d : {3u, 4u}) {
    for (int trial = 0; trial < 5; ++trial) {
      Matrix w(3, d);
      for (size_t i = 0; i < w.rows(); ++i) {
        for (size_t k = 0; k < d; ++k) w(i, k) = rng.Uniform(0.2, 2.5);
      }
      auto exact = ExactRatioToIdealND(w);
      ASSERT_TRUE(exact.ok());
      const double qmc = FeasibleSet(w).RatioToIdeal(vol);
      EXPECT_NEAR(qmc, *exact, 0.02) << "d=" << d << "\n" << w.ToString();
    }
  }
}

}  // namespace
}  // namespace rod::geom
