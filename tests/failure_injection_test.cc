// Failure injection: a node dies mid-run. Composes the fluid simulator
// (backlog carry-in/out) with placement repair to model the full incident:
// steady state -> failure -> orphans re-homed -> recovery, and checks that
// repair beats the naive alternative of dumping every orphan onto one
// surviving node.

#include <gtest/gtest.h>

#include "placement/evaluator.h"
#include "placement/repair.h"
#include "query/graph_gen.h"
#include "query/load_model.h"
#include "runtime/fluid.h"

namespace rod {
namespace {

using place::Placement;
using place::SystemSpec;

struct Scenario {
  query::QueryGraph graph;
  query::LoadModel model;

  Scenario() {
    query::GraphGenOptions gen;
    gen.num_input_streams = 3;
    gen.ops_per_tree = 10;
    Rng rng(0xfa11);
    graph = query::GenerateRandomTrees(gen, rng);
    model = *query::BuildLoadModel(graph);
  }
};

std::vector<trace::RateTrace> ConstantTraces(const query::LoadModel& model,
                                             const Placement& plan,
                                             const SystemSpec& system,
                                             double load_level,
                                             size_t epochs) {
  // Uniform rates at `load_level` of the plan's boundary.
  const place::PlacementEvaluator eval(model, system);
  Vector unit(model.num_system_inputs(), 1.0);
  const Vector util = eval.NodeUtilizationAt(plan, unit);
  double peak = 0.0;
  for (double u : util) peak = std::max(peak, u);
  std::vector<trace::RateTrace> traces;
  for (size_t k = 0; k < model.num_system_inputs(); ++k) {
    trace::RateTrace t;
    t.window_sec = 1.0;
    t.rates.assign(epochs, load_level / peak);
    traces.push_back(std::move(t));
  }
  return traces;
}

TEST(FailureInjectionTest, BacklogCarriesAcrossComposedRuns) {
  Scenario s;
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = place::RodPlace(s.model, system);
  ASSERT_TRUE(plan.ok());
  // Overload for 10 epochs, then compose a light continuation run seeded
  // with the first run's backlog: it must drain, not reset.
  auto hot = sim::FluidSimulate(
      s.model, *plan, system,
      ConstantTraces(s.model, *plan, system, 1.4, 10));
  ASSERT_TRUE(hot.ok());
  ASSERT_GT(hot->final_backlog_sec, 0.0);

  sim::FluidOptions carry;
  carry.initial_backlog = hot->final_backlog;
  auto cool = sim::FluidSimulate(
      s.model, *plan, system,
      ConstantTraces(s.model, *plan, system, 0.3, 40), carry);
  ASSERT_TRUE(cool.ok());
  // Backlog is sampled at epoch ends, so one epoch of drain (0.7 CPU-sec
  // at 30% load) has already happened at the first measurement.
  EXPECT_NEAR(cool->max_backlog_sec, hot->final_backlog_sec - 0.7, 1e-6);
  EXPECT_DOUBLE_EQ(cool->final_backlog_sec, 0.0);

  // Validation of the carry-in shape.
  sim::FluidOptions bad;
  bad.initial_backlog = {1.0};
  EXPECT_FALSE(sim::FluidSimulate(
                   s.model, *plan, system,
                   ConstantTraces(s.model, *plan, system, 0.3, 5), bad)
                   .ok());
}

TEST(FailureInjectionTest, RepairAfterNodeDeathBeatsNaiveDump) {
  Scenario s;
  const SystemSpec three = SystemSpec::Homogeneous(3);
  auto plan = place::RodPlace(s.model, three);
  ASSERT_TRUE(plan.ok());

  // Phase 1: healthy at 55% of the 3-node boundary.
  const auto traces3 = ConstantTraces(s.model, *plan, three, 0.55, 20);
  auto healthy = sim::FluidSimulate(s.model, *plan, three, traces3);
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->overloaded_epochs, 0u);

  // Node 2 dies. Its queued work is lost; survivors keep their backlog
  // (zero here). The same *absolute* input rates continue on 2 nodes.
  const SystemSpec two = SystemSpec::Homogeneous(2);
  const std::vector<size_t> mapping = {0, 1, place::kUnassigned};
  auto repaired = place::RepairPlacement(s.model, *plan, two, mapping);
  ASSERT_TRUE(repaired.ok());

  // Naive alternative: dump every orphan onto node 0.
  std::vector<size_t> naive_assign(s.model.num_operators());
  for (size_t j = 0; j < naive_assign.size(); ++j) {
    const size_t old_node = plan->node_of(j);
    naive_assign[j] = old_node == 2 ? 0 : old_node;
  }
  const Placement naive(2, naive_assign);

  sim::FluidOptions carry;
  carry.initial_backlog = {healthy->final_backlog[0],
                           healthy->final_backlog[1]};
  std::vector<trace::RateTrace> traces2;
  for (const auto& t : traces3) {
    trace::RateTrace copy = t;
    copy.rates.assign(40, t.rates[0]);  // same rates, longer horizon
    traces2.push_back(std::move(copy));
  }
  auto with_repair = sim::FluidSimulate(s.model, repaired->placement, two,
                                        traces2, carry);
  auto with_naive = sim::FluidSimulate(s.model, naive, two, traces2, carry);
  ASSERT_TRUE(with_repair.ok() && with_naive.ok());

  // The repaired plan spreads the orphans: lower peak utilization and no
  // more overload than the dump-on-one-node response.
  EXPECT_LE(with_repair->max_utilization, with_naive->max_utilization + 1e-9);
  EXPECT_LE(with_repair->overloaded_epochs, with_naive->overloaded_epochs);
  // The dead node carried ~1/3 of the load at 0.55 * 3-node boundary;
  // on 2 nodes total utilization ~0.83 of capacity — the repaired plan
  // must actually survive it.
  EXPECT_LT(with_repair->max_utilization, 1.0);
}

}  // namespace
}  // namespace rod
