// Tests for the arrival generator (trace -> tuple arrival times).

#include "runtime/workload_driver.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rod::sim {
namespace {

trace::RateTrace MakeTrace(std::vector<double> rates, double window = 1.0) {
  trace::RateTrace t;
  t.window_sec = window;
  t.rates = std::move(rates);
  return t;
}

TEST(ArrivalGeneratorTest, PoissonMeanRateMatchesTrace) {
  Rng rng(1);
  ArrivalGenerator gen(MakeTrace(std::vector<double>(100, 50.0)), true, &rng);
  size_t count = 0;
  double t = 0.0;
  while (true) {
    t = gen.NextArrival(t);
    if (!std::isfinite(t)) break;
    ++count;
  }
  // 100 s at 50/s: ~5000 arrivals.
  EXPECT_NEAR(static_cast<double>(count), 5000.0, 220.0);
}

TEST(ArrivalGeneratorTest, PoissonGapsAreExponential) {
  Rng rng(2);
  ArrivalGenerator gen(MakeTrace(std::vector<double>(200, 100.0)), true, &rng);
  std::vector<double> gaps;
  double t = 0.0;
  while (true) {
    const double next = gen.NextArrival(t);
    if (!std::isfinite(next)) break;
    gaps.push_back(next - t);
    t = next;
  }
  // Exponential(100): mean = sd = 0.01.
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  EXPECT_NEAR(mean, 0.01, 0.001);
  EXPECT_NEAR(std::sqrt(var), 0.01, 0.002);
}

TEST(ArrivalGeneratorTest, DeterministicSpacingIsEven) {
  Rng rng(3);
  ArrivalGenerator gen(MakeTrace({10.0, 10.0}), false, &rng);
  double t = 0.0;
  std::vector<double> arrivals;
  while (true) {
    t = gen.NextArrival(t);
    if (!std::isfinite(t)) break;
    arrivals.push_back(t);
  }
  ASSERT_GE(arrivals.size(), 15u);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_NEAR(arrivals[i] - arrivals[i - 1], 0.1, 1e-9);
  }
}

TEST(ArrivalGeneratorTest, ZeroRateWindowsProduceNothing) {
  Rng rng(4);
  // 1 s silent, 1 s at 100/s, 1 s silent.
  ArrivalGenerator gen(MakeTrace({0.0, 100.0, 0.0}), true, &rng);
  double t = 0.0;
  size_t count = 0;
  while (true) {
    t = gen.NextArrival(t);
    if (!std::isfinite(t)) break;
    EXPECT_GE(t, 1.0);
    EXPECT_LT(t, 2.0);
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count), 100.0, 35.0);
}

TEST(ArrivalGeneratorTest, ExhaustedTraceReturnsInfinity) {
  Rng rng(5);
  ArrivalGenerator gen(MakeTrace({5.0}), false, &rng);
  EXPECT_FALSE(std::isfinite(gen.NextArrival(100.0)));
}

TEST(ArrivalGeneratorTest, RateChangeShowsInDensity) {
  Rng rng(6);
  ArrivalGenerator gen(MakeTrace({20.0, 200.0}, 10.0), true, &rng);
  size_t early = 0, late = 0;
  double t = 0.0;
  while (true) {
    t = gen.NextArrival(t);
    if (!std::isfinite(t)) break;
    (t < 10.0 ? early : late) += 1;
  }
  EXPECT_NEAR(static_cast<double>(early), 200.0, 60.0);
  EXPECT_NEAR(static_cast<double>(late), 2000.0, 200.0);
}

}  // namespace
}  // namespace rod::sim
