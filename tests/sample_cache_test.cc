// Tests for the simplex sample cache: hit/reuse semantics (same key ->
// same shared buffer, no regeneration), exact reproduction of the
// sequential generators (Halton, pseudo-random, Cranley–Patterson shifts),
// access-order independence of shift replications, and FIFO eviction.

#include "geometry/sample_cache.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/qmc.h"

namespace rod::geom {
namespace {

SimplexSampleKey HaltonKey(size_t dims, size_t num_samples) {
  SimplexSampleKey key;
  key.dims = dims;
  key.num_samples = num_samples;
  return key;
}

TEST(SampleCacheTest, SameKeyReturnsSameBufferWithoutRegeneration) {
  SimplexSampleCache cache;
  const auto key = HaltonKey(3, 64);
  const auto first = cache.Get(key);
  const auto second = cache.Get(key);
  EXPECT_EQ(first.get(), second.get());  // the same shared matrix
  EXPECT_EQ(cache.misses(), 1u);         // generated exactly once
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SampleCacheTest, DistinctKeysGetDistinctBuffers) {
  SimplexSampleCache cache;
  const auto a = cache.Get(HaltonKey(3, 64));
  const auto b = cache.Get(HaltonKey(3, 128));
  const auto c = cache.Get(HaltonKey(4, 64));
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(SampleCacheTest, HaltonMatchesSequentialDraw) {
  const size_t d = 3, S = 32;
  const auto key = HaltonKey(d, S);
  const Matrix generated = GenerateSimplexSamples(key);
  HaltonSequence halton(d);
  for (size_t s = 0; s < S; ++s) {
    const Vector expected = MapUnitCubeToSimplex(halton.Next());
    for (size_t k = 0; k < d; ++k) {
      EXPECT_EQ(generated(s, k), expected[k]) << "sample " << s;
    }
  }
}

TEST(SampleCacheTest, PseudoRandomMatchesSequentialDraw) {
  SimplexSampleKey key;
  key.dims = 4;
  key.num_samples = 32;
  key.pseudo_random = true;
  key.seed = 0xfeedULL;
  const Matrix generated = GenerateSimplexSamples(key);
  Rng rng(key.seed);
  for (size_t s = 0; s < key.num_samples; ++s) {
    Vector cube(key.dims);
    for (double& v : cube) v = rng.NextDouble();
    const Vector expected = MapUnitCubeToSimplex(std::move(cube));
    for (size_t k = 0; k < key.dims; ++k) {
      EXPECT_EQ(generated(s, k), expected[k]) << "sample " << s;
    }
  }
}

TEST(SampleCacheTest, ShiftReplicationMatchesSequentialRotationStream) {
  // Replication r must use draws [r*d, (r+1)*d) of the shift stream — the
  // values the sequential estimator drew when running replications in
  // order — regardless of which replications were generated before it.
  const size_t d = 3, S = 16;
  const uint64_t shift_seed = 0xabcdULL;
  Rng shift_rng(shift_seed);
  Vector shift(d);
  for (int rep = 0; rep < 3; ++rep) {  // keep draws for replication 2
    for (double& v : shift) v = shift_rng.NextDouble();
  }
  HaltonSequence halton(d);
  Matrix expected(S, d);
  for (size_t s = 0; s < S; ++s) {
    Vector p = halton.Next();
    for (size_t k = 0; k < d; ++k) {
      p[k] += shift[k];
      if (p[k] >= 1.0) p[k] -= 1.0;
    }
    const Vector point = MapUnitCubeToSimplex(std::move(p));
    for (size_t k = 0; k < d; ++k) expected(s, k) = point[k];
  }

  SimplexSampleKey key = HaltonKey(d, S);
  key.shift_index = 3;  // replication 2
  key.shift_seed = shift_seed;
  // Generated directly, with no earlier replications ever requested.
  EXPECT_TRUE(GenerateSimplexSamples(key).AlmostEquals(expected, 0.0));
}

TEST(SampleCacheTest, SamplesLieInTheSolidSimplex) {
  for (bool pseudo : {false, true}) {
    SimplexSampleKey key = HaltonKey(5, 256);
    key.pseudo_random = pseudo;
    key.seed = pseudo ? 7u : 0u;
    const Matrix samples = GenerateSimplexSamples(key);
    for (size_t s = 0; s < samples.rows(); ++s) {
      double sum = 0.0;
      for (size_t k = 0; k < samples.cols(); ++k) {
        EXPECT_GE(samples(s, k), 0.0);
        sum += samples(s, k);
      }
      EXPECT_LE(sum, 1.0 + 1e-12);
    }
  }
}

TEST(SampleCacheTest, EvictsOldestInsertFirst) {
  SimplexSampleCache cache(/*max_entries=*/2);
  (void)cache.Get(HaltonKey(2, 16));
  (void)cache.Get(HaltonKey(3, 16));
  (void)cache.Get(HaltonKey(4, 16));  // evicts (2, 16)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 3u);
  (void)cache.Get(HaltonKey(3, 16));  // still resident
  EXPECT_EQ(cache.hits(), 1u);
  (void)cache.Get(HaltonKey(2, 16));  // evicted: regenerated
  EXPECT_EQ(cache.misses(), 4u);
}

TEST(SampleCacheTest, EvictedBufferSurvivesThroughSharedPtr) {
  SimplexSampleCache cache(/*max_entries=*/1);
  const auto held = cache.Get(HaltonKey(2, 16));
  (void)cache.Get(HaltonKey(3, 16));  // evicts the held entry
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(held->samples.rows(), 16u);  // still valid
  EXPECT_EQ(held->samples.cols(), 2u);
}

TEST(SampleCacheTest, ClearResetsEntriesAndCounters) {
  SimplexSampleCache cache;
  (void)cache.Get(HaltonKey(2, 16));
  (void)cache.Get(HaltonKey(2, 16));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SampleCacheTest, GlobalIsOneInstance) {
  EXPECT_EQ(&SimplexSampleCache::Global(), &SimplexSampleCache::Global());
}

}  // namespace
}  // namespace rod::geom
