// Delta-vs-full equivalence of volume-greedy ROD placement: incremental
// candidate scoring (cached per-sample violation counters, changed-row
// retest) must produce exactly the placements of the full re-scan path,
// on randomized greedy traces — random load matrices, heterogeneous
// capacities, several sample budgets and thread counts. Any divergence
// in any intermediate candidate count would change a greedy pick and
// show up as a different assignment, so assignment equality over many
// random traces is a sharp end-to-end check of the scoring algebra.

#include "placement/delta_volume.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "geometry/sample_cache.h"
#include "placement/plan.h"
#include "placement/rod.h"

namespace rod::place {
namespace {

struct RandomTrace {
  Matrix op_coeffs;
  Vector totals;
};

RandomTrace MakeTrace(size_t units, size_t dims, uint64_t seed) {
  Matrix op_coeffs(units, dims);
  Rng rng(seed);
  for (size_t j = 0; j < units; ++j) {
    op_coeffs(j, j % dims) = rng.Uniform(0.5, 2.0);
    for (size_t k = 0; k < dims; ++k) {
      if (k != j % dims && rng.Bernoulli(0.4)) {
        op_coeffs(j, k) = rng.Uniform(0.05, 0.6);
      }
    }
  }
  Vector totals(dims, 0.0);
  for (size_t j = 0; j < units; ++j) {
    for (size_t k = 0; k < dims; ++k) totals[k] += op_coeffs(j, k);
  }
  return {std::move(op_coeffs), std::move(totals)};
}

std::vector<size_t> PlaceWith(const RandomTrace& t, const SystemSpec& system,
                              bool delta, size_t samples, size_t threads) {
  RodOptions options;
  options.mode = RodOptions::Mode::kVolumeGreedy;
  options.delta_eval = delta;
  options.volume.num_samples = samples;
  options.volume.num_threads = threads;
  auto placement = RodPlaceMatrix(t.op_coeffs, t.totals, system, options);
  EXPECT_TRUE(placement.ok());
  return placement.ok() ? placement->assignment() : std::vector<size_t>{};
}

TEST(DeltaVolumeTest, RandomTracesPlaceIdenticallyWithAndWithoutDelta) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const size_t dims = 2 + seed % 5;           // 2..6 rate variables
    const size_t nodes = 3 + (seed * 7) % 6;    // 3..8 nodes
    const RandomTrace t = MakeTrace(5 * nodes, dims, 0xd307a + seed);
    const SystemSpec system = SystemSpec::Homogeneous(nodes);
    const auto with_delta = PlaceWith(t, system, true, 2048, 1);
    const auto full = PlaceWith(t, system, false, 2048, 1);
    EXPECT_EQ(with_delta, full) << "seed " << seed;
  }
}

TEST(DeltaVolumeTest, HeterogeneousCapacitiesPlaceIdentically) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    const size_t dims = 4;
    const size_t nodes = 6;
    const RandomTrace t = MakeTrace(5 * nodes, dims, 0xcafe + seed);
    SystemSpec system;
    system.capacities = Vector(nodes, 1.0);
    Rng rng(seed);
    for (size_t i = 0; i < nodes; ++i) {
      system.capacities[i] = rng.Uniform(0.5, 2.5);
    }
    const auto with_delta = PlaceWith(t, system, true, 4096, 1);
    const auto full = PlaceWith(t, system, false, 4096, 1);
    EXPECT_EQ(with_delta, full) << "seed " << seed;
  }
}

TEST(DeltaVolumeTest, SampleBudgetAndThreadsDoNotSplitThePaths) {
  const RandomTrace t = MakeTrace(30, 5, 0xfade);
  const SystemSpec system = SystemSpec::Homogeneous(6);
  for (size_t samples : {512u, 1024u, 4096u}) {
    for (size_t threads : {1u, 2u, 4u}) {
      const auto with_delta = PlaceWith(t, system, true, samples, threads);
      const auto full = PlaceWith(t, system, false, samples, threads);
      EXPECT_EQ(with_delta, full)
          << "samples " << samples << " threads " << threads;
    }
  }
}

TEST(DeltaVolumeTest, ContextPathsAgreeOnEveryCandidateCount) {
  // Below the end-to-end checks: the two ScoreCandidate paths must agree
  // on the raw counts for every (unit, node) pair of a mid-trace state.
  const RandomTrace t = MakeTrace(12, 3, 0xbead);
  const size_t nodes = 4;
  // Homogeneous: each node's capacity share is 1/nodes, so 1/share = nodes.
  Vector inv_cap(nodes, static_cast<double>(nodes));
  geom::SimplexSampleKey key;
  key.dims = 3;
  key.num_samples = 1024;
  auto set = geom::SimplexSampleCache::Global().Get(key);
  DeltaVolumeContext ctx(t.op_coeffs, t.totals, inv_cap, set);
  for (size_t j = 0; j < t.op_coeffs.rows(); ++j) {
    ctx.LoadUnit(j);
    for (size_t node = 0; node < nodes; ++node) {
      EXPECT_EQ(ctx.ScoreCandidate(node, /*delta=*/true),
                ctx.ScoreCandidate(node, /*delta=*/false))
          << "unit " << j << " node " << node;
    }
    ctx.Commit(j % nodes);
  }
}

}  // namespace
}  // namespace rod::place
