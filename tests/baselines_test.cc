// Tests for the four §7.2 baseline distribution algorithms.

#include "placement/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "placement/evaluator.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::place {
namespace {

using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

/// A graph of `m` independent single-operator chains on one stream, with
/// distinct costs so load-based tie-breaking is unambiguous.
QueryGraph UniformChains(size_t m, double base_cost = 1.0) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  for (size_t j = 0; j < m; ++j) {
    EXPECT_TRUE(g.AddOperator({.name = "o" + std::to_string(j),
                               .kind = OperatorKind::kMap,
                               .cost = base_cost * (1.0 + 0.01 * j)},
                              {StreamRef::Input(in)})
                    .ok());
  }
  return g;
}

TEST(RandomPlaceTest, EqualOperatorCounts) {
  const QueryGraph g = UniformChains(12);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(4);
  Rng rng(3);
  auto plan = RandomPlace(*model, system, rng);
  ASSERT_TRUE(plan.ok());
  for (const auto& ops : plan->OperatorsByNode()) {
    EXPECT_EQ(ops.size(), 3u);
  }
}

TEST(RandomPlaceTest, DifferentSeedsDifferentPlans) {
  const QueryGraph g = UniformChains(20);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(4);
  Rng r1(1), r2(2);
  auto a = RandomPlace(*model, system, r1);
  auto b = RandomPlace(*model, system, r2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->assignment(), b->assignment());
}

TEST(LlfTest, BalancesLoadAtGivenRates) {
  const QueryGraph g = UniformChains(40);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(4);
  const Vector rates = {2.0};
  auto plan = LargestLoadFirstPlace(*model, system, rates);
  ASSERT_TRUE(plan.ok());
  const PlacementEvaluator eval(*model, system);
  const Vector loads = eval.NodeLoadsAt(*plan, rates);
  const double total = Sum(loads);
  for (double l : loads) {
    EXPECT_NEAR(l, total / 4.0, total * 0.05);  // within 5% of even split
  }
}

TEST(LlfTest, HonorsHeterogeneousCapacity) {
  const QueryGraph g = UniformChains(40);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system{Vector{3.0, 1.0}};
  const Vector rates = {1.0};
  auto plan = LargestLoadFirstPlace(*model, system, rates);
  ASSERT_TRUE(plan.ok());
  const PlacementEvaluator eval(*model, system);
  const Vector util = eval.NodeUtilizationAt(*plan, rates);
  EXPECT_NEAR(util[0], util[1], 0.1 * util[0]);  // balanced *utilization*
}

TEST(LlfTest, ValidatesRateSize) {
  const QueryGraph g = UniformChains(4);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(LargestLoadFirstPlace(*model, SystemSpec::Homogeneous(2),
                                     Vector{1.0, 2.0})
                   .ok());
}

TEST(ConnectedTest, KeepsChainsLocal) {
  // Two long chains on two streams; with two nodes the connected algorithm
  // should produce far fewer cross-node arcs than a random split.
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("I0");
  const InputStreamId i1 = g.AddInputStream("I1");
  StreamRef prev0 = StreamRef::Input(i0);
  StreamRef prev1 = StreamRef::Input(i1);
  for (int j = 0; j < 10; ++j) {
    prev0 = StreamRef::Op(*g.AddOperator(
        {.name = "a" + std::to_string(j), .kind = OperatorKind::kMap,
         .cost = 1.0},
        {prev0}));
    prev1 = StreamRef::Op(*g.AddOperator(
        {.name = "b" + std::to_string(j), .kind = OperatorKind::kMap,
         .cost = 1.0},
        {prev1}));
  }
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = ConnectedLoadBalancePlace(*model, g, system, Vector{1.0, 1.0});
  ASSERT_TRUE(plan.ok());
  // Perfect result: each chain whole on one node -> zero crossings.
  EXPECT_LE(plan->CountCrossNodeArcs(g), 2u);
  // And the load is balanced: 10 ops each side.
  const auto by_node = plan->OperatorsByNode();
  EXPECT_EQ(by_node[0].size(), 10u);
  EXPECT_EQ(by_node[1].size(), 10u);
}

TEST(ConnectedTest, AssignsEveryOperator) {
  query::GraphGenOptions gen;
  gen.num_input_streams = 4;
  gen.ops_per_tree = 12;
  Rng rng(17);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(3);
  Vector rates(4, 1.0);
  auto plan = ConnectedLoadBalancePlace(*model, g, system, rates);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->num_operators(), g.num_operators());
}

TEST(CorrelationTest, SeparatesPerfectlyCorrelatedOperators) {
  // Two heavy operators on the same stream are perfectly load-correlated;
  // with two nodes the correlation-based scheme must separate them.
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("I0");
  const InputStreamId i1 = g.AddInputStream("I1");
  auto a0 = g.AddOperator({.name = "a0", .kind = OperatorKind::kMap,
                           .cost = 10.0},
                          {StreamRef::Input(i0)});
  auto a1 = g.AddOperator({.name = "a1", .kind = OperatorKind::kMap,
                           .cost = 10.0},
                          {StreamRef::Input(i0)});
  auto b0 = g.AddOperator({.name = "b0", .kind = OperatorKind::kMap,
                           .cost = 10.0},
                          {StreamRef::Input(i1)});
  auto b1 = g.AddOperator({.name = "b1", .kind = OperatorKind::kMap,
                           .cost = 10.0},
                          {StreamRef::Input(i1)});
  ASSERT_TRUE(b1.ok());
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());

  // Anti-correlated rate history for the two streams.
  Matrix series(16, 2);
  for (size_t t = 0; t < 16; ++t) {
    series(t, 0) = 1.0 + std::sin(static_cast<double>(t));
    series(t, 1) = 1.0 - std::sin(static_cast<double>(t));
  }
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = CorrelationBasedPlace(*model, system, series);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->node_of(*a0), plan->node_of(*a1));
  EXPECT_NE(plan->node_of(*b0), plan->node_of(*b1));
}

TEST(CorrelationTest, ValidatesSeries) {
  const QueryGraph g = UniformChains(4);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  EXPECT_FALSE(CorrelationBasedPlace(*model, system, Matrix(1, 1)).ok());
  EXPECT_FALSE(CorrelationBasedPlace(*model, system, Matrix(10, 3)).ok());
}

TEST(BaselinesTest, AllRejectEmptyModelOrBadSystem) {
  const QueryGraph g = UniformChains(4);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  Rng rng(1);
  SystemSpec bad;  // no nodes
  EXPECT_FALSE(RandomPlace(*model, bad, rng).ok());
  EXPECT_FALSE(LargestLoadFirstPlace(*model, bad, Vector{1.0}).ok());
}

}  // namespace
}  // namespace rod::place
