// Frame codec tests: encode/decode round-trips (including a randomized
// property sweep over types and payload sizes) and the corruption matrix
// — truncated frames, bit-flipped payloads and headers, bad version and
// magic bytes — each mapping to the documented Status code so a receiver
// can distinguish "peer gone" from "protocol skew" from "corruption".

#include "cluster/frame.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <span>
#include <string>

#include "cluster/transport.h"
#include "common/net.h"
#include "common/random.h"
#include "trace/store/format.h"

namespace rod::cluster {
namespace {

std::span<const std::byte> Bytes(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Decodes header + payload of one encoded frame buffer.
Status DecodeWhole(const std::string& wire, Frame* out) {
  if (wire.size() < kFrameHeaderBytes) {
    return Status::Unavailable("short buffer");
  }
  auto header = DecodeFrameHeader(Bytes(wire));
  ROD_RETURN_IF_ERROR(header.status());
  const std::string_view payload(wire.data() + kFrameHeaderBytes,
                                 wire.size() - kFrameHeaderBytes);
  if (payload.size() != header->payload_len) {
    return Status::Unavailable("short payload");
  }
  ROD_RETURN_IF_ERROR(ValidateFramePayload(*header, payload));
  out->type = header->type;
  out->payload = std::string(payload);
  return Status::OK();
}

TEST(ClusterFrameTest, EncodeDecodeRoundTrip) {
  const std::string wire = EncodeFrame(MsgType::kHeartbeat, "hello world");
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + 11);

  Frame frame;
  ASSERT_TRUE(DecodeWhole(wire, &frame).ok());
  EXPECT_EQ(frame.type, MsgType::kHeartbeat);
  EXPECT_EQ(frame.payload, "hello world");
}

TEST(ClusterFrameTest, RoundTripPropertyOverTypesAndSizes) {
  Rng rng(0xf4a3e5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto type = static_cast<MsgType>(1 + (trial % kMaxMsgType));
    const size_t len = static_cast<size_t>(rng.Uniform(0.0, 4096.0));
    std::string payload(len, '\0');
    for (char& c : payload) {
      c = static_cast<char>(static_cast<int>(rng.Uniform(0.0, 256.0)));
    }
    const std::string wire = EncodeFrame(type, payload);
    Frame frame;
    ASSERT_TRUE(DecodeWhole(wire, &frame).ok()) << "trial " << trial;
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(ClusterFrameTest, EmptyPayloadIsValid) {
  const std::string wire = EncodeFrame(MsgType::kResume, "");
  Frame frame;
  ASSERT_TRUE(DecodeWhole(wire, &frame).ok());
  EXPECT_EQ(frame.type, MsgType::kResume);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ClusterFrameTest, BitFlippedPayloadIsDataLoss) {
  std::string wire = EncodeFrame(MsgType::kTuples, "payload-bytes");
  wire[kFrameHeaderBytes + 3] ^= 0x10;  // Flip one payload bit.
  Frame frame;
  EXPECT_EQ(DecodeWhole(wire, &frame).code(), StatusCode::kDataLoss);
}

TEST(ClusterFrameTest, BitFlippedHeaderIsDataLoss) {
  // Any header corruption trips the header CRC before field checks, so
  // even a flipped length byte cannot trigger a giant allocation.
  std::string wire = EncodeFrame(MsgType::kTuples, "payload");
  wire[9] ^= 0x40;  // Flip a payload_len bit.
  Frame frame;
  EXPECT_EQ(DecodeWhole(wire, &frame).code(), StatusCode::kDataLoss);
}

/// Recomputes the header CRC (bytes [16,20) over [0,16)) with the same
/// CRC-32 the framing layer shares with the trace store.
std::string ReencodeHeaderCrc(std::string wire) {
  const uint32_t crc = trace::store::Crc32(
      {reinterpret_cast<const std::byte*>(wire.data()), 16});
  for (int i = 0; i < 4; ++i) {
    wire[16 + i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  return wire;
}

/// Rewrites byte `at`, then fixes the header CRC so the corruption
/// reaches the field checks (version/magic/type) instead of the CRC.
std::string CorruptWithValidCrc(std::string wire, size_t at, char value) {
  wire[at] = value;
  return ReencodeHeaderCrc(std::move(wire));
}

TEST(ClusterFrameTest, BadVersionByteIsInvalidArgument) {
  const std::string wire = CorruptWithValidCrc(
      EncodeFrame(MsgType::kHello, "x"), 4,
      static_cast<char>(kFrameVersion + 9));
  Frame frame;
  EXPECT_EQ(DecodeWhole(wire, &frame).code(), StatusCode::kInvalidArgument);
}

TEST(ClusterFrameTest, BadMagicIsInvalidArgument) {
  const std::string wire =
      CorruptWithValidCrc(EncodeFrame(MsgType::kHello, "x"), 0, 'X');
  Frame frame;
  EXPECT_EQ(DecodeWhole(wire, &frame).code(), StatusCode::kInvalidArgument);
}

TEST(ClusterFrameTest, UnknownMessageTypeIsInvalidArgument) {
  const std::string wire = CorruptWithValidCrc(
      EncodeFrame(MsgType::kHello, "x"), 5, static_cast<char>(200));
  Frame frame;
  EXPECT_EQ(DecodeWhole(wire, &frame).code(), StatusCode::kInvalidArgument);
}

TEST(ClusterFrameTest, OversizedLengthIsInvalidArgument) {
  std::string wire = EncodeFrame(MsgType::kHello, "x");
  // Claim a payload over the per-call cap (with a consistent header CRC).
  wire[8] = 0x01;
  wire[9] = 0x00;
  wire[10] = 0x00;
  wire[11] = 0x01;  // 0x01000001 = ~16.8M > 16M cap.
  wire = ReencodeHeaderCrc(std::move(wire));
  auto header = DecodeFrameHeader(Bytes(wire), /*max_payload=*/16u << 20);
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterFrameTest, TruncatedFrameOverSocketIsUnavailable) {
  // A peer that dies mid-frame leaves a truncated stream: the reader
  // must report kUnavailable (peer gone), not hang or misparse.
  FrameListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  auto client = FrameConn::DialLoopback(listener.port());
  ASSERT_TRUE(client.ok());
  auto server = listener.Accept();
  ASSERT_TRUE(server.ok());

  const std::string wire = EncodeFrame(MsgType::kHeartbeat, "truncated!");
  ASSERT_TRUE(net::WriteAll(client->fd(), wire.data(), wire.size() - 4));
  client->Close();  // EOF mid-payload.

  Frame frame;
  EXPECT_EQ(server->Recv(&frame).code(), StatusCode::kUnavailable);
}

TEST(ClusterFrameTest, SocketRoundTripThroughTransport) {
  FrameListener listener;
  ASSERT_TRUE(listener.Listen(0).ok());
  auto client = FrameConn::DialLoopback(listener.port());
  ASSERT_TRUE(client.ok());
  auto server = listener.Accept();
  ASSERT_TRUE(server.ok());

  ASSERT_TRUE(client->Send(MsgType::kPlan, "the plan").ok());
  ASSERT_TRUE(client->Send(MsgType::kStart, "").ok());

  Frame frame;
  ASSERT_TRUE(server->Recv(&frame).ok());
  EXPECT_EQ(frame.type, MsgType::kPlan);
  EXPECT_EQ(frame.payload, "the plan");
  ASSERT_TRUE(server->Recv(&frame).ok());
  EXPECT_EQ(frame.type, MsgType::kStart);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(ClusterFrameTest, MsgTypeNamesAreStable) {
  EXPECT_STREQ(MsgTypeName(MsgType::kHello), "hello");
  EXPECT_STREQ(MsgTypeName(MsgType::kTuples), "tuples");
  EXPECT_STREQ(MsgTypeName(MsgType::kShutdown), "shutdown");
  EXPECT_STREQ(MsgTypeName(MsgType::kPing), "ping");
  EXPECT_STREQ(MsgTypeName(MsgType::kPong), "pong");
  EXPECT_STREQ(MsgTypeName(MsgType::kStatsReport), "stats_report");
  EXPECT_STREQ(MsgTypeName(MsgType::kClockSync), "clock_sync");
  EXPECT_STREQ(MsgTypeName(MsgType::kFreeze), "freeze");
  EXPECT_STREQ(MsgTypeName(MsgType::kFrozenReport), "frozen_report");
  EXPECT_STREQ(MsgTypeName(static_cast<MsgType>(250)), "unknown");
}

}  // namespace
}  // namespace rod::cluster
