// Tests for the §7.1 random-tree generator and the application workloads.

#include "query/graph_gen.h"

#include <gtest/gtest.h>

#include "query/load_model.h"

namespace rod::query {
namespace {

TEST(GraphGenTest, ProducesRequestedShape) {
  GraphGenOptions options;
  options.num_input_streams = 5;
  options.ops_per_tree = 20;
  Rng rng(42);
  const QueryGraph g = GenerateRandomTrees(options, rng);
  EXPECT_EQ(g.num_input_streams(), 5u);
  EXPECT_EQ(g.num_operators(), 100u);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_FALSE(g.RequiresLinearization());
}

TEST(GraphGenTest, DeterministicGivenSeed) {
  GraphGenOptions options;
  Rng rng1(7), rng2(7);
  const QueryGraph a = GenerateRandomTrees(options, rng1);
  const QueryGraph b = GenerateRandomTrees(options, rng2);
  ASSERT_EQ(a.num_operators(), b.num_operators());
  for (OperatorId j = 0; j < a.num_operators(); ++j) {
    EXPECT_DOUBLE_EQ(a.spec(j).cost, b.spec(j).cost);
    EXPECT_DOUBLE_EQ(a.spec(j).selectivity, b.spec(j).selectivity);
  }
}

TEST(GraphGenTest, TreesAreSingleInputTrees) {
  GraphGenOptions options;
  options.num_input_streams = 3;
  options.ops_per_tree = 15;
  Rng rng(11);
  const QueryGraph g = GenerateRandomTrees(options, rng);
  // Every operator has exactly one input, so each tree's operators load on
  // exactly one input stream: each L^o row has exactly one nonzero.
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  for (OperatorId j = 0; j < g.num_operators(); ++j) {
    EXPECT_EQ(g.inputs_of(j).size(), 1u);
    size_t nonzeros = 0;
    for (size_t k = 0; k < model->num_vars(); ++k) {
      if (model->op_coeffs()(j, k) != 0.0) ++nonzeros;
    }
    EXPECT_EQ(nonzeros, 1u) << "operator " << j;
  }
}

TEST(GraphGenTest, CostsWithinPaperBounds) {
  GraphGenOptions options;  // defaults: 0.1 ms - 10 ms
  Rng rng(13);
  const QueryGraph g = GenerateRandomTrees(options, rng);
  for (OperatorId j = 0; j < g.num_operators(); ++j) {
    EXPECT_GE(g.spec(j).cost, options.min_cost);
    EXPECT_LE(g.spec(j).cost, options.max_cost);
    const double s = g.spec(j).selectivity;
    EXPECT_TRUE(s == 1.0 ||
                (s >= options.min_selectivity && s <= options.max_selectivity))
        << s;
  }
}

TEST(GraphGenTest, AboutHalfSelectivityOne) {
  GraphGenOptions options;
  options.num_input_streams = 4;
  options.ops_per_tree = 250;
  Rng rng(17);
  const QueryGraph g = GenerateRandomTrees(options, rng);
  size_t ones = 0;
  for (OperatorId j = 0; j < g.num_operators(); ++j) {
    ones += g.spec(j).selectivity == 1.0;
  }
  const double frac = static_cast<double>(ones) /
                      static_cast<double>(g.num_operators());
  EXPECT_NEAR(frac, 0.5, 0.07);
}

TEST(TrafficMonitoringTest, BuildsValidLinearGraph) {
  TrafficMonitoringOptions options;
  options.num_links = 3;
  const QueryGraph g = BuildTrafficMonitoringGraph(options);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(g.num_input_streams(), 3u);
  EXPECT_FALSE(g.RequiresLinearization());
  EXPECT_TRUE(BuildLoadModel(g).ok());
  // 1 parse + 3 protos * (1 filter + 3 windows * 2 ops) per link + rollup.
  EXPECT_GT(g.num_operators(), 20u);
}

TEST(TrafficMonitoringTest, RollupUnionSpansLinks) {
  TrafficMonitoringOptions options;
  options.num_links = 2;
  options.include_global_rollup = true;
  const QueryGraph g = BuildTrafficMonitoringGraph(options);
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  // The final aggregate (last operator) must load on both input streams.
  const OperatorId top = g.num_operators() - 1;
  EXPECT_GT(model->op_coeffs()(top, 0), 0.0);
  EXPECT_GT(model->op_coeffs()(top, 1), 0.0);
}

TEST(ComplianceTest, BuildsWideValidGraph) {
  ComplianceOptions options;
  options.num_feeds = 2;
  options.num_rules = 12;
  const QueryGraph g = BuildComplianceGraph(options);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_GE(g.num_operators(), options.num_rules * 4);
  EXPECT_TRUE(BuildLoadModel(g).ok());
  // Wide: at least one sink per rule.
  EXPECT_GE(g.Sinks().size(), options.num_rules);
}

TEST(ComplianceTest, ScalesWithRules) {
  ComplianceOptions small{.num_feeds = 2, .num_rules = 3};
  ComplianceOptions big{.num_feeds = 2, .num_rules = 30};
  EXPECT_GT(BuildComplianceGraph(big).num_operators(),
            BuildComplianceGraph(small).num_operators() * 5);
}

}  // namespace
}  // namespace rod::query
