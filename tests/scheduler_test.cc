// Tests for node scheduling disciplines (FIFO vs round-robin) — unit
// behaviour of SimNode and the end-to-end latency isolation property.

#include <gtest/gtest.h>

#include "runtime/engine.h"
#include "runtime/node.h"

namespace rod::sim {
namespace {

Task MakeTask(uint32_t op, double origin = 0.0) {
  Task t;
  t.op = op;
  t.origin = origin;
  return t;
}

TEST(SimNodeTest, FifoServesInArrivalOrder) {
  SimNode node(1.0, Scheduling::kFifo);
  node.Enqueue(MakeTask(7, 1.0));
  node.Enqueue(MakeTask(7, 2.0));
  node.Enqueue(MakeTask(9, 3.0));
  EXPECT_EQ(node.queue_length(), 3u);
  EXPECT_DOUBLE_EQ(node.StartService().origin, 1.0);
  node.FinishService(0.1);
  EXPECT_DOUBLE_EQ(node.StartService().origin, 2.0);
  node.FinishService(0.1);
  EXPECT_DOUBLE_EQ(node.StartService().origin, 3.0);
  node.FinishService(0.1);
  EXPECT_EQ(node.queue_length(), 0u);
  EXPECT_EQ(node.tasks_processed(), 3u);
  EXPECT_NEAR(node.busy_time(), 0.3, 1e-12);
}

TEST(SimNodeTest, RoundRobinAlternatesOperators) {
  SimNode node(1.0, Scheduling::kRoundRobin);
  // Operator 1 floods, operator 2 has one task.
  node.Enqueue(MakeTask(1, 1.0));
  node.Enqueue(MakeTask(1, 2.0));
  node.Enqueue(MakeTask(1, 3.0));
  node.Enqueue(MakeTask(2, 4.0));
  // Service order: op1(1.0) -> op2(4.0) -> op1(2.0) -> op1(3.0).
  EXPECT_EQ(node.StartService().op, 1u);
  node.FinishService(0.0);
  const Task second = node.StartService();
  EXPECT_EQ(second.op, 2u);
  EXPECT_DOUBLE_EQ(second.origin, 4.0);
  node.FinishService(0.0);
  EXPECT_DOUBLE_EQ(node.StartService().origin, 2.0);
  node.FinishService(0.0);
  EXPECT_DOUBLE_EQ(node.StartService().origin, 3.0);
  node.FinishService(0.0);
  EXPECT_FALSE(node.CanStart());
}

TEST(SimNodeTest, RoundRobinHandlesArrivalDuringService) {
  SimNode node(1.0, Scheduling::kRoundRobin);
  node.Enqueue(MakeTask(1, 1.0));
  EXPECT_EQ(node.StartService().op, 1u);
  node.Enqueue(MakeTask(2, 2.0));
  node.Enqueue(MakeTask(1, 3.0));
  node.FinishService(0.5);
  // op 2 entered the rotation when op 1's bucket was empty; op 1 rejoined
  // behind it.
  EXPECT_EQ(node.StartService().op, 2u);
  node.FinishService(0.5);
  EXPECT_EQ(node.StartService().op, 1u);
}

TEST(SimNodeTest, BusyBlocksStart) {
  SimNode node(2.0);
  node.Enqueue(MakeTask(0));
  node.Enqueue(MakeTask(0));
  EXPECT_TRUE(node.CanStart());
  (void)node.StartService();
  EXPECT_TRUE(node.busy());
  EXPECT_FALSE(node.CanStart());  // still serving
  node.FinishService(0.1);
  EXPECT_TRUE(node.CanStart());
}

TEST(SimNodeTest, ServiceTimeScalesWithCapacity) {
  SimNode fast(4.0);
  SimNode slow(0.5);
  EXPECT_DOUBLE_EQ(fast.ServiceTime(1.0), 0.25);
  EXPECT_DOUBLE_EQ(slow.ServiceTime(1.0), 2.0);
}

// End-to-end: a cheap low-rate query sharing a node with an expensive
// high-rate one keeps a low latency under round-robin but not under FIFO.
TEST(SchedulingTest, RoundRobinIsolatesCheapPath) {
  query::QueryGraph g;
  const auto heavy_in = g.AddInputStream("heavy");
  const auto light_in = g.AddInputStream("light");
  ASSERT_TRUE(g.AddOperator({.name = "heavy",
                             .kind = query::OperatorKind::kMap,
                             .cost = 8e-3},
                            {query::StreamRef::Input(heavy_in)})
                  .ok());
  ASSERT_TRUE(g.AddOperator({.name = "light",
                             .kind = query::OperatorKind::kMap,
                             .cost = 1e-4},
                            {query::StreamRef::Input(light_in)})
                  .ok());
  const place::SystemSpec system = place::SystemSpec::Homogeneous(1);
  const place::Placement plan(1, {0, 0});

  auto make_traces = [] {
    trace::RateTrace heavy;
    heavy.window_sec = 30.0;
    heavy.rates = {110.0};  // rho ~ 0.88: long queue at the heavy op
    trace::RateTrace light = heavy;
    light.rates = {20.0};
    return std::vector<trace::RateTrace>{heavy, light};
  };

  SimulationOptions fifo;
  fifo.duration = 30.0;
  fifo.scheduling = Scheduling::kFifo;
  SimulationOptions rr = fifo;
  rr.scheduling = Scheduling::kRoundRobin;

  auto fifo_run = SimulatePlacement(g, plan, system, make_traces(), fifo);
  auto rr_run = SimulatePlacement(g, plan, system, make_traces(), rr);
  ASSERT_TRUE(fifo_run.ok() && rr_run.ok());
  // Same offered load either way.
  EXPECT_NEAR(fifo_run->max_node_utilization, rr_run->max_node_utilization,
              0.05);
  // Compare the *light sink's* median latency (operator id 1): under FIFO
  // its tuples wait behind the heavy operator's queue; under round-robin
  // they wait at most one heavy service.
  auto sink_p50 = [](const SimulationResult& r, uint32_t op) {
    for (const SinkLatency& s : r.sink_latencies) {
      if (s.sink_op == op) return s.p50;
    }
    ADD_FAILURE() << "sink " << op << " missing";
    return 0.0;
  };
  EXPECT_LT(sink_p50(*rr_run, 1), 0.5 * sink_p50(*fifo_run, 1));
  // The heavy sink's latency is queue-bound either way.
  EXPECT_NEAR(sink_p50(*rr_run, 0), sink_p50(*fifo_run, 0),
              0.6 * sink_p50(*fifo_run, 0));
}

}  // namespace
}  // namespace rod::sim
