// Tests for the linear load model, pinned to the paper's worked examples.

#include "query/load_model.h"

#include <gtest/gtest.h>

#include "query/query_graph.h"

namespace rod::query {
namespace {

/// Builds the paper's Example 1 / Example 2 graph (Figure 4): two chains,
/// I1 -> o1 -> o2 and I2 -> o3 -> o4, with costs c = (4, 6, 9, 4) and
/// selectivities s1 = 1, s3 = 0.5 (s2, s4 feed applications; irrelevant).
QueryGraph PaperFigure4Graph() {
  QueryGraph g;
  const InputStreamId i1 = g.AddInputStream("I1");
  const InputStreamId i2 = g.AddInputStream("I2");
  auto o1 = g.AddOperator({.name = "o1",
                           .kind = OperatorKind::kMap,
                           .cost = 4.0,
                           .selectivity = 1.0},
                          {StreamRef::Input(i1)});
  auto o2 = g.AddOperator({.name = "o2",
                           .kind = OperatorKind::kMap,
                           .cost = 6.0,
                           .selectivity = 1.0},
                          {StreamRef::Op(*o1)});
  auto o3 = g.AddOperator({.name = "o3",
                           .kind = OperatorKind::kFilter,
                           .cost = 9.0,
                           .selectivity = 0.5},
                          {StreamRef::Input(i2)});
  auto o4 = g.AddOperator({.name = "o4",
                           .kind = OperatorKind::kMap,
                           .cost = 4.0,
                           .selectivity = 1.0},
                          {StreamRef::Op(*o3)});
  EXPECT_TRUE(o1.ok() && o2.ok() && o3.ok() && o4.ok());
  return g;
}

TEST(LoadModelTest, PaperExample2Coefficients) {
  // Example 1: load(o1) = c1 r1, load(o2) = c2 s1 r1, load(o3) = c3 r2,
  // load(o4) = c4 s3 r2  =>  L^o = [[4,0],[6,0],[0,9],[0,2]].
  const QueryGraph g = PaperFigure4Graph();
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_operators(), 4u);
  EXPECT_EQ(model->num_vars(), 2u);
  EXPECT_EQ(model->num_system_inputs(), 2u);
  EXPECT_FALSE(model->has_aux_vars());

  const Matrix expected =
      Matrix::FromRows({{4.0, 0.0}, {6.0, 0.0}, {0.0, 9.0}, {0.0, 2.0}});
  EXPECT_TRUE(model->op_coeffs().AlmostEquals(expected));

  // l_1 = 10, l_2 = 11 (column sums).
  EXPECT_DOUBLE_EQ(model->total_coeffs()[0], 10.0);
  EXPECT_DOUBLE_EQ(model->total_coeffs()[1], 11.0);
}

TEST(LoadModelTest, OperatorLoadsMatchCoefficients) {
  const QueryGraph g = PaperFigure4Graph();
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const Vector rates = {3.0, 7.0};
  const Vector direct = model->OperatorLoadsAt(rates);
  const Vector via_coeffs = model->op_coeffs().MatVec(rates);
  ASSERT_EQ(direct.size(), via_coeffs.size());
  for (size_t j = 0; j < direct.size(); ++j) {
    EXPECT_NEAR(direct[j], via_coeffs[j], 1e-12) << "operator " << j;
  }
}

TEST(LoadModelTest, ExtendRatesIsIdentityForLinearGraphs) {
  const QueryGraph g = PaperFigure4Graph();
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const Vector rates = {2.5, 0.5};
  EXPECT_EQ(model->ExtendRates(rates), rates);
}

TEST(LoadModelTest, SelectivityChainsPropagate) {
  // I -> a (sel 0.5) -> b (sel 0.4) -> c ; load(c) = cost_c * 0.2 * r.
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a",
                          .kind = OperatorKind::kFilter,
                          .cost = 1.0,
                          .selectivity = 0.5},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b",
                          .kind = OperatorKind::kFilter,
                          .cost = 2.0,
                          .selectivity = 0.4},
                         {StreamRef::Op(*a)});
  auto c = g.AddOperator({.name = "c",
                          .kind = OperatorKind::kMap,
                          .cost = 10.0,
                          .selectivity = 1.0},
                         {StreamRef::Op(*b)});
  ASSERT_TRUE(c.ok());
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->op_coeffs()(*a, 0), 1.0, 1e-12);
  EXPECT_NEAR(model->op_coeffs()(*b, 0), 2.0 * 0.5, 1e-12);
  EXPECT_NEAR(model->op_coeffs()(*c, 0), 10.0 * 0.2, 1e-12);
}

TEST(LoadModelTest, UnionSumsInputRates) {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("I0");
  const InputStreamId i1 = g.AddInputStream("I1");
  auto u = g.AddOperator(
      {.name = "u", .kind = OperatorKind::kUnion, .cost = 3.0},
      {StreamRef::Input(i0), StreamRef::Input(i1)});
  auto down = g.AddOperator(
      {.name = "d", .kind = OperatorKind::kMap, .cost = 2.0},
      {StreamRef::Op(*u)});
  ASSERT_TRUE(down.ok());
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  // Union pays cost on both streams; downstream sees the merged rate.
  EXPECT_NEAR(model->op_coeffs()(*u, 0), 3.0, 1e-12);
  EXPECT_NEAR(model->op_coeffs()(*u, 1), 3.0, 1e-12);
  EXPECT_NEAR(model->op_coeffs()(*down, 0), 2.0, 1e-12);
  EXPECT_NEAR(model->op_coeffs()(*down, 1), 2.0, 1e-12);
}

TEST(LoadModelTest, StrictBuilderRejectsJoins) {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("I0");
  const InputStreamId i1 = g.AddInputStream("I1");
  auto j = g.AddOperator({.name = "j",
                          .kind = OperatorKind::kJoin,
                          .cost = 1.0,
                          .selectivity = 0.5,
                          .window = 1.0},
                         {StreamRef::Input(i0), StreamRef::Input(i1)});
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(BuildLoadModel(g).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(BuildLinearizedLoadModel(g).ok());
}

TEST(LoadModelTest, RejectsInvalidGraphs) {
  QueryGraph empty;
  EXPECT_FALSE(BuildLoadModel(empty).ok());
}

TEST(LoadModelTest, VariablesDescribeSystemInputsFirst) {
  const QueryGraph g = PaperFigure4Graph();
  auto model = BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->variables().size(), 2u);
  EXPECT_EQ(model->variables()[0].kind, VariableInfo::Kind::kSystemInput);
  EXPECT_EQ(model->variables()[0].index, 0u);
  EXPECT_EQ(model->variables()[1].index, 1u);
}

}  // namespace
}  // namespace rod::query
