// Tests for the textual query-graph format.

#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::query {
namespace {

constexpr const char* kExample2 = R"(# paper Example 2
input I1
input I2
op o1 map cost=4 inputs=I1
op o2 map cost=6 inputs=o1
op o3 filter cost=9 sel=0.5 inputs=I2
op o4 map cost=4 inputs=o3
)";

TEST(ParserTest, ParsesExample2) {
  auto g = ParseQueryGraph(kExample2);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_input_streams(), 2u);
  EXPECT_EQ(g->num_operators(), 4u);
  EXPECT_EQ(g->spec(2).kind, OperatorKind::kFilter);
  EXPECT_DOUBLE_EQ(g->spec(2).selectivity, 0.5);
  auto model = BuildLoadModel(*g);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->total_coeffs()[0], 10.0);
  EXPECT_DOUBLE_EQ(model->total_coeffs()[1], 11.0);
}

TEST(ParserTest, ParsesJoinsUnionsAndFlags) {
  const char* text = R"(
input L
input R
op fl filter cost=1 sel=0.5 varsel inputs=L
op u union cost=0.1 inputs=fl,R
op j join cost=0.01 sel=0.2 window=2.5 inputs=u,R
)";
  // 'j' reads from both u and R; R feeds two operators (fan-out).
  auto g = ParseQueryGraph(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(g->spec(0).variable_selectivity);
  EXPECT_EQ(g->spec(1).kind, OperatorKind::kUnion);
  EXPECT_EQ(g->inputs_of(1).size(), 2u);
  EXPECT_DOUBLE_EQ(g->spec(2).window, 2.5);
  EXPECT_TRUE(g->RequiresLinearization());
  EXPECT_TRUE(BuildLinearizedLoadModel(*g).ok());
}

TEST(ParserTest, ParsesCommCosts) {
  const char* text = R"(
input I
op a map cost=1 inputs=I
op b map cost=2 inputs=a comm=0.25
)";
  auto g = ParseQueryGraph(text);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->inputs_of(1)[0].comm_cost, 0.25);
}

TEST(ParserTest, CommentsAndBlankLinesIgnored) {
  const char* text =
      "# header\n\ninput I  # trailing comment\n\n"
      "op a map cost=1 inputs=I\n";
  auto g = ParseQueryGraph(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_operators(), 1u);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto missing_cost = ParseQueryGraph("input I\nop a map inputs=I\n");
  ASSERT_FALSE(missing_cost.ok());
  EXPECT_NE(missing_cost.status().message().find("line 2"),
            std::string::npos);

  auto bad_kind = ParseQueryGraph("input I\nop a blender cost=1 inputs=I\n");
  ASSERT_FALSE(bad_kind.ok());
  EXPECT_NE(bad_kind.status().message().find("blender"), std::string::npos);
}

TEST(ParserTest, RejectsStructuralErrors) {
  // Unknown input reference.
  EXPECT_FALSE(ParseQueryGraph("input I\nop a map cost=1 inputs=X\n").ok());
  // Duplicate names.
  EXPECT_FALSE(ParseQueryGraph("input I\ninput I\nop a map cost=1 inputs=I\n")
                   .ok());
  EXPECT_FALSE(
      ParseQueryGraph("input I\nop a map cost=1 inputs=I\n"
                      "op a map cost=1 inputs=I\n")
          .ok());
  // Mismatched comm list.
  EXPECT_FALSE(
      ParseQueryGraph("input I\nop a map cost=1 inputs=I comm=0.1,0.2\n")
          .ok());
  // Forward references are impossible (operator must exist already).
  EXPECT_FALSE(
      ParseQueryGraph("input I\nop a map cost=1 inputs=b\n"
                      "op b map cost=1 inputs=I\n")
          .ok());
  // Orphan input stream fails final validation.
  EXPECT_FALSE(ParseQueryGraph("input I\ninput J\nop a map cost=1 inputs=I\n")
                   .ok());
  // Unknown key.
  EXPECT_FALSE(
      ParseQueryGraph("input I\nop a map cost=1 zoom=3 inputs=I\n").ok());
  // Empty graph.
  EXPECT_FALSE(ParseQueryGraph("").ok());
}

TEST(ParserTest, SerializeRoundTrips) {
  const char* text = R"(
input L
input R
op fl filter cost=1.5 sel=0.5 inputs=L
op fr map cost=2 varsel sel=0.8 inputs=R comm=0.125
op j join cost=0.01 sel=0.2 window=2.5 inputs=fl,fr
op down aggregate cost=0.5 sel=0.1 inputs=j
)";
  auto g = ParseQueryGraph(text);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const std::string serialized = SerializeQueryGraph(*g);
  auto back = ParseQueryGraph(serialized);
  ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n" << serialized;
  ASSERT_EQ(back->num_operators(), g->num_operators());
  for (OperatorId j = 0; j < g->num_operators(); ++j) {
    EXPECT_EQ(back->spec(j).name, g->spec(j).name);
    EXPECT_EQ(back->spec(j).kind, g->spec(j).kind);
    EXPECT_DOUBLE_EQ(back->spec(j).cost, g->spec(j).cost);
    EXPECT_DOUBLE_EQ(back->spec(j).selectivity, g->spec(j).selectivity);
    EXPECT_DOUBLE_EQ(back->spec(j).window, g->spec(j).window);
    EXPECT_EQ(back->spec(j).variable_selectivity,
              g->spec(j).variable_selectivity);
    ASSERT_EQ(back->inputs_of(j).size(), g->inputs_of(j).size());
    for (size_t a = 0; a < g->inputs_of(j).size(); ++a) {
      EXPECT_EQ(back->inputs_of(j)[a].from, g->inputs_of(j)[a].from);
      EXPECT_DOUBLE_EQ(back->inputs_of(j)[a].comm_cost,
                       g->inputs_of(j)[a].comm_cost);
    }
  }
  // Identical load models, too.
  auto m1 = BuildLinearizedLoadModel(*g);
  auto m2 = BuildLinearizedLoadModel(*back);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_TRUE(m1->op_coeffs().AlmostEquals(m2->op_coeffs()));
}

TEST(ParserTest, LoadFileNotFound) {
  EXPECT_EQ(LoadQueryGraphFile("/no/such/graph.txt").status().code(),
            StatusCode::kNotFound);
}

// Round-trip sweep: serialize randomly generated graphs and verify the
// parsed copy produces an identical load model.
class ParserSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserSweepTest, GeneratedGraphRoundTrips) {
  Rng rng(GetParam());
  GraphGenOptions gen;
  gen.num_input_streams = 2 + rng.NextIndex(4);
  gen.ops_per_tree = 4 + rng.NextIndex(12);
  const QueryGraph g = GenerateRandomTrees(gen, rng);
  auto back = ParseQueryGraph(SerializeQueryGraph(g));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->num_operators(), g.num_operators());
  auto m1 = BuildLoadModel(g);
  auto m2 = BuildLoadModel(*back);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_TRUE(m1->op_coeffs().AlmostEquals(m2->op_coeffs(), 1e-12));
  EXPECT_TRUE(m1->out_rate_coeffs().AlmostEquals(m2->out_rate_coeffs(),
                                                 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserSweepTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace rod::query
