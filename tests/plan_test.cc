// Tests for Placement / SystemSpec.

#include "placement/plan.h"

#include <gtest/gtest.h>

#include "query/query_graph.h"

namespace rod::place {
namespace {

TEST(SystemSpecTest, HomogeneousFactory) {
  const SystemSpec s = SystemSpec::Homogeneous(4, 2.0);
  EXPECT_EQ(s.num_nodes(), 4u);
  EXPECT_DOUBLE_EQ(s.TotalCapacity(), 8.0);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SystemSpecTest, ValidateRejectsBadSpecs) {
  EXPECT_FALSE(SystemSpec{}.Validate().ok());
  EXPECT_FALSE((SystemSpec{Vector{1.0, 0.0}}).Validate().ok());
  EXPECT_FALSE((SystemSpec{Vector{-1.0}}).Validate().ok());
}

TEST(PlacementTest, BasicAccessors) {
  const Placement p(3, {0, 2, 2, 1});
  EXPECT_EQ(p.num_nodes(), 3u);
  EXPECT_EQ(p.num_operators(), 4u);
  EXPECT_EQ(p.node_of(2), 2u);
  const auto by_node = p.OperatorsByNode();
  EXPECT_EQ(by_node[0], (std::vector<query::OperatorId>{0}));
  EXPECT_EQ(by_node[2], (std::vector<query::OperatorId>{1, 2}));
}

TEST(PlacementTest, AllocationMatrixIsZeroOne) {
  const Placement p(2, {0, 1, 0});
  const Matrix a = p.AllocationMatrix();
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_DOUBLE_EQ(a(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 1.0);
  // Each column sums to 1 (every operator on exactly one node).
  for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a.ColSum(j), 1.0);
}

TEST(PlacementTest, NodeCoeffsEqualsAllocationTimesOpCoeffs) {
  const Placement p(2, {0, 0, 1, 1});
  const Matrix lo =
      Matrix::FromRows({{4.0, 0.0}, {6.0, 0.0}, {0.0, 9.0}, {0.0, 2.0}});
  const Matrix direct = p.NodeCoeffs(lo);
  const Matrix via_matmul = p.AllocationMatrix().MatMul(lo);
  EXPECT_TRUE(direct.AlmostEquals(via_matmul));
  EXPECT_DOUBLE_EQ(direct(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(direct(1, 1), 11.0);
}

TEST(PlacementTest, CountCrossNodeArcs) {
  // Chain I -> a -> b -> c.
  query::QueryGraph g;
  const auto in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = query::OperatorKind::kMap,
                          .cost = 1.0},
                         {query::StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = query::OperatorKind::kMap,
                          .cost = 1.0},
                         {query::StreamRef::Op(*a)});
  auto c = g.AddOperator({.name = "c", .kind = query::OperatorKind::kMap,
                          .cost = 1.0},
                         {query::StreamRef::Op(*b)});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(Placement(2, {0, 0, 0}).CountCrossNodeArcs(g), 0u);
  EXPECT_EQ(Placement(2, {0, 1, 0}).CountCrossNodeArcs(g), 2u);
  EXPECT_EQ(Placement(2, {0, 0, 1}).CountCrossNodeArcs(g), 1u);
  // Input-stream arcs never count.
  EXPECT_EQ(Placement(2, {1, 1, 1}).CountCrossNodeArcs(g), 0u);
}

TEST(PlacementTest, Equality) {
  EXPECT_EQ(Placement(2, {0, 1}), Placement(2, {0, 1}));
  EXPECT_FALSE(Placement(2, {0, 1}) == Placement(2, {1, 0}));
}

TEST(PlacementSerializationTest, RoundTrip) {
  const Placement p(3, {0, 2, 2, 1, 0});
  const std::string text = SerializePlacement(p);
  EXPECT_EQ(text, "nodes=3 assignment=0,2,2,1,0");
  auto back = ParsePlacement(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, p);
}

TEST(PlacementSerializationTest, RejectsMalformed) {
  EXPECT_FALSE(ParsePlacement("").ok());
  EXPECT_FALSE(ParsePlacement("nodes=2").ok());
  EXPECT_FALSE(ParsePlacement("assignment=0,1 nodes=2").ok());
  EXPECT_FALSE(ParsePlacement("nodes=abc assignment=0").ok());
  EXPECT_FALSE(ParsePlacement("nodes=0 assignment=0").ok());
  EXPECT_FALSE(ParsePlacement("nodes=2 assignment=").ok());
  EXPECT_FALSE(ParsePlacement("nodes=2 assignment=0,5").ok());   // bad node
  EXPECT_FALSE(ParsePlacement("nodes=2 assignment=0,1x").ok());  // trailing
}

}  // namespace
}  // namespace rod::place
