// Tests for the 2-D feasible-set terminal renderer.

#include "geometry/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rod::geom {
namespace {

/// Counts occurrences of `c` in the plot's grid rows only (the legend
/// line below the axis also contains '#' and '.').
size_t Count(const std::string& s, char c) {
  size_t n = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("   |", 0) != 0 && line.rfind("x2 ^", 0) != 0) continue;
    for (size_t i = 4; i < line.size(); ++i) n += line[i] == c;
  }
  return n;
}

TEST(AsciiPlotTest, IdealSetFillsWholeTriangle) {
  const Matrix w = Matrix::FromRows({{1.0, 1.0}});
  auto plot = RenderFeasibleSet2D(w);
  ASSERT_TRUE(plot.ok());
  // Everything below the ideal hyperplane is feasible: no '.' cells.
  EXPECT_EQ(Count(*plot, '.'), 0u);
  EXPECT_GT(Count(*plot, '#'), 100u);
}

TEST(AsciiPlotTest, FeasibleAreaTracksRatio) {
  // Plan (a) of Example 2 keeps half the ideal triangle: the '#' count
  // should be roughly half of the ('#' + '.') count.
  const Matrix w = Matrix::FromRows({{2.0, 0.0}, {0.0, 2.0}});
  AsciiPlotOptions options;
  options.width = 100;
  options.height = 100;
  options.x_max = 1.0;
  options.y_max = 1.0;
  auto plot = RenderFeasibleSet2D(w, options);
  ASSERT_TRUE(plot.ok());
  const double feasible = static_cast<double>(Count(*plot, '#'));
  const double ideal = feasible + static_cast<double>(Count(*plot, '.'));
  EXPECT_NEAR(feasible / ideal, 0.5, 0.03);
}

TEST(AsciiPlotTest, MarksLowerBound) {
  const Matrix w = Matrix::FromRows({{1.0, 1.0}});
  const Vector b = {0.3, 0.2};
  auto plot = RenderFeasibleSet2D(w, AsciiPlotOptions{}, &b);
  ASSERT_TRUE(plot.ok());
  EXPECT_GE(Count(*plot, 'B'), 1u);
}

TEST(AsciiPlotTest, GeometryOrientation) {
  // For W = [[4, 0]] (feasible iff x <= 0.25) the bottom-left region is
  // feasible and the bottom-right (x near 1, y near 0) shows '.'.
  const Matrix w = Matrix::FromRows({{4.0, 0.0}});
  AsciiPlotOptions options;
  options.width = 40;
  options.height = 20;
  options.x_max = 1.0;  // keep the bottom row inside the ideal triangle
  options.y_max = 1.0;
  auto plot = RenderFeasibleSet2D(w, options);
  ASSERT_TRUE(plot.ok());
  // Examine the last grid row (y near 0): it must start with '#' cells and
  // switch to '.' after x = 0.25.
  std::istringstream is(*plot);
  std::string line, last_grid;
  while (std::getline(is, line)) {
    if (line.rfind("   |", 0) == 0) last_grid = line;
  }
  ASSERT_FALSE(last_grid.empty());
  const std::string cells = last_grid.substr(4);
  EXPECT_EQ(cells[1], '#');                    // x ~ 0.04
  EXPECT_EQ(cells[cells.size() - 3], '.');     // x ~ 0.98 < ideal, overloaded
}

TEST(AsciiPlotTest, ValidatesInputs) {
  EXPECT_FALSE(RenderFeasibleSet2D(Matrix(1, 3, 1.0)).ok());
  AsciiPlotOptions tiny;
  tiny.width = 2;
  EXPECT_FALSE(RenderFeasibleSet2D(Matrix(1, 2, 1.0), tiny).ok());
  const Vector bad_bound = {0.1};
  EXPECT_FALSE(RenderFeasibleSet2D(Matrix(1, 2, 1.0), AsciiPlotOptions{},
                                   &bad_bound)
                   .ok());
}

}  // namespace
}  // namespace rod::geom
