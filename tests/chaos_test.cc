// End-to-end chaos tests: mid-run node crashes in the tuple-level engine,
// supervised recovery via incremental placement repair, incident metrics
// (lost tuples, phase latencies, recovery time, availability), and the
// repair-beats-naive-dump claim at tuple granularity.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "placement/evaluator.h"
#include "placement/rod.h"
#include "query/graph_gen.h"
#include "query/load_model.h"
#include "runtime/chaos.h"
#include "runtime/engine.h"
#include "runtime/supervisor.h"

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

trace::RateTrace ConstantTrace(double rate, double duration) {
  trace::RateTrace t;
  t.window_sec = duration;
  t.rates = {rate};
  return t;
}

/// Graph: I -> map(cost, selectivity) -> sink.
QueryGraph OneOpGraph(double cost, double selectivity = 1.0) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  EXPECT_TRUE(g.AddOperator({.name = "op", .kind = OperatorKind::kMap,
                             .cost = cost, .selectivity = selectivity},
                            {StreamRef::Input(in)})
                  .ok());
  return g;
}

/// The paper-style random forest scenario the repair tests run on.
struct Scenario {
  query::QueryGraph graph;
  query::LoadModel model;
  SystemSpec system = SystemSpec::Homogeneous(3);
  Placement plan{3, {}};

  Scenario() {
    query::GraphGenOptions gen;
    gen.num_input_streams = 3;
    gen.ops_per_tree = 10;
    Rng rng(0xfa11);
    graph = query::GenerateRandomTrees(gen, rng);
    model = *query::BuildLoadModel(graph);
    plan = *place::RodPlace(model, system);
  }

  /// Uniform input rates at `load_level` of this plan's boundary.
  std::vector<trace::RateTrace> Traces(double load_level,
                                       double duration) const {
    const place::PlacementEvaluator eval(model, system);
    Vector unit(model.num_system_inputs(), 1.0);
    const Vector util = eval.NodeUtilizationAt(plan, unit);
    double peak = 0.0;
    for (double u : util) peak = std::max(peak, u);
    std::vector<trace::RateTrace> traces;
    for (size_t k = 0; k < model.num_system_inputs(); ++k) {
      traces.push_back(ConstantTrace(load_level / peak, duration));
    }
    return traces;
  }

  /// The node hosting input stream 0's first consumer — crashing it
  /// guarantees arrivals bounce until the supervisor re-homes.
  uint32_t NodeOfInput0() const {
    for (query::OperatorId j = 0; j < graph.num_operators(); ++j) {
      for (const query::Arc& arc : graph.inputs_of(j)) {
        if (arc.from.kind == query::StreamRef::Kind::kInput &&
            arc.from.index == 0) {
          return static_cast<uint32_t>(plan.node_of(j));
        }
      }
    }
    ADD_FAILURE() << "input 0 has no consumer";
    return 0;
  }
};

TEST(FailureScheduleTest, ValidatesScripts) {
  FailureSchedule ok;
  ok.CrashAt(5.0, 1).RecoverAt(9.0, 1).CrashAt(12.0, 1).SlowdownAt(3.0, 0,
                                                                   0.5);
  EXPECT_TRUE(ok.Validate(2).ok());

  FailureSchedule bad_node;
  bad_node.CrashAt(1.0, 7);
  EXPECT_FALSE(bad_node.Validate(2).ok());

  FailureSchedule double_crash;
  double_crash.CrashAt(1.0, 0).CrashAt(2.0, 0);
  EXPECT_FALSE(double_crash.Validate(2).ok());

  FailureSchedule spurious_recover;
  spurious_recover.RecoverAt(1.0, 0);
  EXPECT_FALSE(spurious_recover.Validate(2).ok());

  FailureSchedule negative_time;
  negative_time.CrashAt(-1.0, 0);
  EXPECT_FALSE(negative_time.Validate(2).ok());

  FailureSchedule bad_factor;
  bad_factor.SlowdownAt(1.0, 0, 0.0);
  EXPECT_FALSE(bad_factor.Validate(2).ok());
}

TEST(FailureScheduleTest, ValidatesLoadSpikes) {
  FailureSchedule ok;
  ok.LoadSpikeAt(5.0, 1, 3.0).LoadSpikeAt(9.0, 1, 1.0).LoadSpikeAt(2.0, 0,
                                                                   0.0);
  EXPECT_TRUE(ok.Validate(/*num_nodes=*/1, /*num_streams=*/2).ok());

  // `node` indexes the stream universe for spikes, not the cluster.
  FailureSchedule bad_stream;
  bad_stream.LoadSpikeAt(1.0, 5, 2.0);
  EXPECT_FALSE(bad_stream.Validate(8, 2).ok());

  FailureSchedule negative_factor;
  negative_factor.LoadSpikeAt(1.0, 0, -0.5);
  EXPECT_FALSE(negative_factor.Validate(1, 1).ok());

  // The legacy single-arg form cannot know the stream universe.
  FailureSchedule spike;
  spike.LoadSpikeAt(1.0, 0, 2.0);
  EXPECT_FALSE(spike.Validate(4).ok());
  EXPECT_TRUE(spike.Validate(4, 1).ok());

  // Spikes are stream events: they are legal while nodes are down.
  FailureSchedule during_outage;
  during_outage.CrashAt(5.0, 0).LoadSpikeAt(6.0, 0, 2.0);
  EXPECT_TRUE(during_outage.Validate(1, 1).ok());
}

TEST(FailureScheduleTest, RejectsSlowdownOfCrashedNode) {
  // A slowdown must target a node that is up at that instant.
  FailureSchedule down;
  down.CrashAt(5.0, 0).SlowdownAt(6.0, 0, 0.5);
  EXPECT_FALSE(down.Validate(1).ok());
  EXPECT_FALSE(down.Validate(1, 0).ok());

  FailureSchedule recovered;
  recovered.CrashAt(5.0, 0).RecoverAt(6.0, 0).SlowdownAt(6.5, 0, 0.5);
  EXPECT_TRUE(recovered.Validate(1).ok());

  // Same-instant events apply in insertion order, matching the engine's
  // replay: crash-then-slowdown is invalid, slowdown-then-crash is fine.
  FailureSchedule crash_first;
  crash_first.CrashAt(5.0, 0).SlowdownAt(5.0, 0, 0.5);
  EXPECT_FALSE(crash_first.Validate(1).ok());

  FailureSchedule slowdown_first;
  slowdown_first.SlowdownAt(5.0, 0, 0.5).CrashAt(5.0, 0);
  EXPECT_TRUE(slowdown_first.Validate(1).ok());

  FailureSchedule recover_then_slow;
  recover_then_slow.CrashAt(4.0, 0).RecoverAt(5.0, 0).SlowdownAt(5.0, 0, 2.0);
  EXPECT_TRUE(recover_then_slow.Validate(1).ok());
}

TEST(ChaosTest, UnsupervisedCrashDropsWorkAndRejectsArrivals) {
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  FailureSchedule chaos;
  chaos.CrashAt(10.0, 0);
  SimulationOptions options;
  options.duration = 30.0;
  options.failures = &chaos;
  // rho = 0.8: the crash catches a non-trivial queue.
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(800.0, 30.0)}, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->incident.has_value());
  const IncidentReport& inc = *r->incident;
  EXPECT_DOUBLE_EQ(inc.crash_time, 10.0);
  EXPECT_EQ(inc.failed_node, 0u);
  EXPECT_LT(inc.detect_time, 0.0);  // nobody watching
  // Every post-crash arrival bounces: ~2/3 of the offered tuples.
  EXPECT_GT(inc.rejected_inputs, 12000u);
  EXPECT_GT(inc.lost_queued + inc.lost_inflight, 0u);
  EXPECT_EQ(inc.lost_tuples,
            inc.lost_queued + inc.lost_inflight + inc.lost_network +
                inc.rejected_inputs);
  EXPECT_NEAR(inc.availability, 1.0 / 3.0, 0.05);
  // Outputs only exist pre-crash.
  EXPECT_GT(inc.pre_failure.outputs, 0u);
  EXPECT_EQ(inc.post_recovery.outputs + inc.during_recovery.outputs, 0u);
}

TEST(ChaosTest, CrashedNodeComesBackEmptyOnRecover) {
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  FailureSchedule chaos;
  chaos.CrashAt(10.0, 0).RecoverAt(20.0, 0);
  SimulationOptions options;
  options.duration = 40.0;
  options.failures = &chaos;
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(200.0, 40.0)}, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->incident.has_value());
  // 10 s of the 40 s run rejected: availability ~ 3/4.
  EXPECT_NEAR(r->incident->availability, 0.75, 0.04);
  EXPECT_TRUE(r->incident->recovered);
  // Outputs resume after the node returns.
  EXPECT_GT(r->incident->post_recovery.outputs, 0u);
  EXPECT_FALSE(r->saturated);
}

TEST(ChaosTest, SlowdownRaisesUtilization) {
  const QueryGraph g = OneOpGraph(1e-3);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  FailureSchedule chaos;
  chaos.SlowdownAt(0.0, 0, 0.5);  // half capacity from the start
  SimulationOptions options;
  options.duration = 30.0;
  options.failures = &chaos;
  auto slowed = SimulatePlacement(g, Placement(1, {0}), system,
                                  {ConstantTrace(300.0, 30.0)}, options);
  SimulationOptions healthy = options;
  healthy.failures = nullptr;
  auto normal = SimulatePlacement(g, Placement(1, {0}), system,
                                  {ConstantTrace(300.0, 30.0)}, healthy);
  ASSERT_TRUE(slowed.ok() && normal.ok());
  // rho doubles from 0.3 to 0.6 at half capacity.
  EXPECT_NEAR(normal->max_node_utilization, 0.3, 0.05);
  EXPECT_NEAR(slowed->max_node_utilization, 0.6, 0.08);
  EXPECT_FALSE(slowed->incident.has_value());  // slowdown is not a crash
}

TEST(ChaosTest, DeterministicGivenSeedAndSchedule) {
  Scenario s;
  FailureSchedule chaos;
  chaos.CrashAt(15.0, s.NodeOfInput0());
  Supervisor::Options sup_options;
  sup_options.detection_delay = 1.0;

  SimulationOptions options;
  options.duration = 50.0;
  options.failures = &chaos;

  auto run = [&]() {
    Supervisor supervisor(s.model, sup_options);
    SimulationOptions o = options;
    o.recovery = &supervisor;
    return SimulatePlacement(s.graph, s.plan, s.system, s.Traces(0.5, 50.0),
                             o);
  };
  auto a = run();
  auto b = run();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->incident && b->incident);
  EXPECT_EQ(a->input_tuples, b->input_tuples);
  EXPECT_EQ(a->output_tuples, b->output_tuples);
  EXPECT_EQ(a->incident->lost_tuples, b->incident->lost_tuples);
  EXPECT_DOUBLE_EQ(a->incident->recovery_time, b->incident->recovery_time);
}

// The acceptance scenario: a 3-node cluster at ~50% of its boundary loses
// a node mid-run; the supervisor repairs the placement and the cluster
// must settle back under the overload threshold.
TEST(ChaosTest, SupervisedRepairRecoversFromMidRunCrash) {
  Scenario s;
  const double kDuration = 80.0;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  Supervisor::Options sup_options;
  sup_options.detection_delay = 1.0;
  Supervisor supervisor(s.model, sup_options);

  SimulationOptions options;
  options.duration = kDuration;
  options.failures = &chaos;
  options.recovery = &supervisor;

  auto r = SimulatePlacement(s.graph, s.plan, s.system,
                             s.Traces(0.5, kDuration), options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->incident.has_value());
  const IncidentReport& inc = *r->incident;

  EXPECT_EQ(supervisor.repairs_performed(), 1u);
  EXPECT_TRUE(supervisor.last_status().ok());
  EXPECT_GT(inc.operators_moved, 0u);
  EXPECT_NEAR(inc.detect_time, 21.0, 1e-9);
  EXPECT_NEAR(inc.plan_applied_time, 21.0, 1e-9);

  // The incident cost something...
  EXPECT_GT(inc.lost_tuples, 0u);
  EXPECT_LT(inc.availability, 1.0);
  // ...but the cluster recovered and stays below the overload threshold.
  EXPECT_TRUE(inc.recovered);
  EXPECT_GE(inc.recovery_time, 0.0);
  EXPECT_LT(inc.post_recovery_max_utilization, options.overload_threshold);
  EXPECT_GT(inc.post_recovery.outputs, 0u);
  EXPECT_FALSE(r->saturated);
}

TEST(ChaosTest, FlightRecorderCapturesSupervisedCrashIncident) {
  Scenario s;
  const double kDuration = 80.0;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  telemetry::Telemetry tel;
  telemetry::FlightRecorder recorder(&tel);

  Supervisor::Options sup_options;
  sup_options.detection_delay = 1.0;
  sup_options.flight_recorder = &recorder;
  Supervisor supervisor(s.model, sup_options);

  SimulationOptions options;
  options.duration = kDuration;
  options.failures = &chaos;
  options.recovery = &supervisor;
  options.flight_recorder = &recorder;

  auto r = SimulatePlacement(s.graph, s.plan, s.system,
                             s.Traces(0.5, kDuration), options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->incident.has_value());

  // One incident: opened at the crash, completed at run finalize, with
  // breadcrumbs from both the engine and the supervisor and the full
  // IncidentReport embedded as the report object.
  EXPECT_FALSE(recorder.pending());
  ASSERT_EQ(recorder.incident_count(), 1u);
  std::ostringstream out;
  recorder.WriteJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"kind\": \"node_crash\""), std::string::npos) << json;
  EXPECT_NE(json.find("failure of node"), std::string::npos) << json;
  EXPECT_NE(json.find("plan applied"), std::string::npos) << json;
  EXPECT_NE(json.find("\"operators_moved\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"recovered\": true"), std::string::npos) << json;
}

TEST(ChaosTest, ShorterDetectionDelayLosesStrictlyFewerTuples) {
  Scenario s;
  const double kDuration = 60.0;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  auto lost_with_delay = [&](double delay) {
    Supervisor::Options sup_options;
    sup_options.detection_delay = delay;
    Supervisor supervisor(s.model, sup_options);
    SimulationOptions options;
    options.duration = kDuration;
    options.failures = &chaos;
    options.recovery = &supervisor;
    auto r = SimulatePlacement(s.graph, s.plan, s.system,
                               s.Traces(0.5, kDuration), options);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->incident.has_value());
    return r->incident->lost_tuples;
  };

  const size_t slow = lost_with_delay(4.0);
  const size_t fast = lost_with_delay(0.5);
  EXPECT_GT(slow, 0u);
  EXPECT_GT(fast, 0u);  // the crash itself drops queued/in-flight work
  EXPECT_LT(fast, slow);
}

TEST(ChaosTest, RepairBeatsNaiveDumpOnRecoveryLatency) {
  Scenario s;
  const double kDuration = 80.0;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  auto run_policy = [&](Supervisor::Policy policy) {
    Supervisor::Options sup_options;
    sup_options.detection_delay = 1.0;
    sup_options.policy = policy;
    Supervisor supervisor(s.model, sup_options);
    SimulationOptions options;
    options.duration = kDuration;
    options.failures = &chaos;
    options.recovery = &supervisor;
    auto r = SimulatePlacement(s.graph, s.plan, s.system,
                               s.Traces(0.55, kDuration), options);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->incident.has_value());
    return *r;
  };

  const SimulationResult repaired = run_policy(Supervisor::Policy::kRepair);
  const SimulationResult dumped = run_policy(Supervisor::Policy::kNaiveDump);

  // Both runs accepted comparable volumes (same arrivals, same outage
  // window), so the latency comparison is apples to apples.
  ASSERT_GT(repaired.incident->during_recovery.outputs, 0u);
  ASSERT_GT(dumped.incident->during_recovery.outputs, 0u);

  // Dumping every orphan on one survivor overloads it; spreading them via
  // incremental ROD keeps the recovery-phase tail latency strictly lower.
  EXPECT_LT(repaired.incident->during_recovery.p95,
            dumped.incident->during_recovery.p95);
  // The repaired cluster settles; the dump victim stays hot longer.
  EXPECT_TRUE(repaired.incident->recovered);
  EXPECT_LE(repaired.max_node_utilization, dumped.max_node_utilization);
}

TEST(ChaosTest, MigrationPauseBuffersAndReplays) {
  Scenario s;
  const double kDuration = 60.0;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  Supervisor::Options sup_options;
  sup_options.detection_delay = 1.0;
  sup_options.migration_pause = 0.5;
  Supervisor supervisor(s.model, sup_options);

  SimulationOptions options;
  options.duration = kDuration;
  options.failures = &chaos;
  options.recovery = &supervisor;

  auto r = SimulatePlacement(s.graph, s.plan, s.system,
                             s.Traces(0.5, kDuration), options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->incident.has_value());
  EXPECT_GT(r->incident->migration_buffered, 0u);
  EXPECT_EQ(r->incident->migration_shed, 0u);
  EXPECT_TRUE(r->incident->recovered);

  // Shedding variant: held tuples are dropped instead.
  sup_options.shed_during_pause = true;
  Supervisor shedder(s.model, sup_options);
  options.recovery = &shedder;
  auto shed_run = SimulatePlacement(s.graph, s.plan, s.system,
                                    s.Traces(0.5, kDuration), options);
  ASSERT_TRUE(shed_run.ok());
  ASSERT_TRUE(shed_run->incident.has_value());
  EXPECT_GT(shed_run->incident->migration_shed, 0u);
  EXPECT_EQ(shed_run->incident->migration_buffered, 0u);
}

TEST(ChaosTest, MigrationPauseLossAttributionAndDeterminism) {
  Scenario s;
  const double kDuration = 60.0;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  auto run_variant = [&](bool shed_during_pause) {
    Supervisor::Options sup_options;
    sup_options.detection_delay = 1.0;
    sup_options.migration_pause = 0.5;
    sup_options.shed_during_pause = shed_during_pause;
    Supervisor supervisor(s.model, sup_options);
    SimulationOptions options;
    options.duration = kDuration;
    options.failures = &chaos;
    options.recovery = &supervisor;
    auto r = SimulatePlacement(s.graph, s.plan, s.system,
                               s.Traces(0.5, kDuration), options);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r->incident.has_value());
    return *r;
  };

  const SimulationResult buffered = run_variant(false);
  const SimulationResult buffered_again = run_variant(false);
  const SimulationResult shed = run_variant(true);

  // The buffered-replay control is bit-exact across runs.
  EXPECT_EQ(buffered.input_tuples, buffered_again.input_tuples);
  EXPECT_EQ(buffered.output_tuples, buffered_again.output_tuples);
  EXPECT_EQ(buffered.processed_events, buffered_again.processed_events);
  EXPECT_EQ(buffered.mean_latency, buffered_again.mean_latency);
  EXPECT_EQ(buffered.incident->lost_tuples, buffered_again.incident->lost_tuples);

  // Loss attribution: the total is exactly the sum of the mechanisms, and
  // migration-pause drops are accounted separately, never as crash loss.
  for (const SimulationResult* r : {&buffered, &shed}) {
    const IncidentReport& inc = *r->incident;
    EXPECT_EQ(inc.lost_tuples, inc.lost_queued + inc.lost_inflight +
                                   inc.lost_network + inc.rejected_inputs);
  }
  EXPECT_GT(buffered.incident->migration_buffered, 0u);
  EXPECT_EQ(buffered.incident->migration_shed, 0u);
  EXPECT_GT(shed.incident->migration_shed, 0u);
  EXPECT_EQ(shed.incident->migration_buffered, 0u);

  // Shedding forfeits the held tuples (and the two trajectories diverge
  // stochastically after the pause), so it outputs no more than the
  // replaying control.
  EXPECT_LE(shed.output_tuples, buffered.output_tuples);
}

TEST(ChaosTest, ReCrashDuringMigrationPauseIsHandled) {
  Scenario s;
  const double kDuration = 80.0;
  const uint32_t first = s.NodeOfInput0();
  const uint32_t second = (first + 1) % 3;

  // Detection at 21, plan applied at 21, pause until 24; the second node
  // dies at 22 — mid-pause — orphaning operators that may be paused with
  // buffered tuples.
  FailureSchedule chaos;
  chaos.CrashAt(20.0, first).CrashAt(22.0, second);
  ASSERT_TRUE(chaos.Validate(3, s.model.num_system_inputs()).ok());

  for (bool shed_during_pause : {false, true}) {
    Supervisor::Options sup_options;
    sup_options.detection_delay = 1.0;
    sup_options.migration_pause = 3.0;
    sup_options.shed_during_pause = shed_during_pause;
    Supervisor supervisor(s.model, sup_options);
    SimulationOptions options;
    options.duration = kDuration;
    options.failures = &chaos;
    options.recovery = &supervisor;
    auto r = SimulatePlacement(s.graph, s.plan, s.system,
                               s.Traces(0.4, kDuration), options);
    ASSERT_TRUE(r.ok()) << "shed=" << shed_during_pause;
    ASSERT_TRUE(r->incident.has_value());
    EXPECT_EQ(r->incident->failed_node, first);
    EXPECT_EQ(supervisor.repairs_performed(), 2u);
    EXPECT_GT(r->output_tuples, 0u);

    auto again = SimulatePlacement(s.graph, s.plan, s.system,
                                   s.Traces(0.4, kDuration), options);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(r->output_tuples, again->output_tuples);
    EXPECT_EQ(r->incident->lost_tuples, again->incident->lost_tuples);
  }
}

TEST(SupervisorTest, ResetClearsIntrospectionState) {
  Scenario s;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  Supervisor::Options sup_options;
  sup_options.detection_delay = 1.0;
  Supervisor supervisor(s.model, sup_options);
  SimulationOptions options;
  options.duration = 40.0;
  options.failures = &chaos;
  options.recovery = &supervisor;

  auto first = SimulatePlacement(s.graph, s.plan, s.system,
                                 s.Traces(0.5, 40.0), options);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(supervisor.repairs_performed(), 1u);
  EXPECT_GT(supervisor.operators_moved(), 0u);
  EXPECT_GT(supervisor.last_plane_distance(), 0.0);

  supervisor.Reset();
  EXPECT_EQ(supervisor.repairs_performed(), 0u);
  EXPECT_EQ(supervisor.operators_moved(), 0u);
  EXPECT_EQ(supervisor.last_plane_distance(), 0.0);
  EXPECT_EQ(supervisor.repair_retries(), 0u);
  EXPECT_EQ(supervisor.overload_consults(), 0u);
  EXPECT_EQ(supervisor.num_quarantined(), 0u);
  EXPECT_TRUE(supervisor.last_status().ok());

  // A reset supervisor serves a second run exactly like a fresh one.
  auto second = SimulatePlacement(s.graph, s.plan, s.system,
                                  s.Traces(0.5, 40.0), options);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(supervisor.repairs_performed(), 1u);
  EXPECT_EQ(first->output_tuples, second->output_tuples);
  EXPECT_EQ(first->processed_events, second->processed_events);
}

TEST(SupervisorTest, FailedRepairRetriesWithDoublingBackoff) {
  Scenario s;
  auto dep = CompileDeployment(s.graph, s.plan, s.system);
  ASSERT_TRUE(dep.ok());

  // kMinCrossArcs is rejected by the incremental RepairPlacement, so
  // every repair attempt fails deterministically.
  Supervisor::Options sup_options;
  sup_options.rod.tie_break = place::RodOptions::ClassITieBreak::kMinCrossArcs;
  sup_options.max_repair_retries = 3;
  sup_options.repair_retry_backoff = 0.5;
  sup_options.repair_retry_backoff_max = 8.0;
  Supervisor supervisor(s.model, sup_options);

  std::vector<bool> node_up{true, true, true};
  node_up[s.NodeOfInput0()] = false;

  // No retry is pending before the first failure.
  EXPECT_EQ(supervisor.RepairRetryDelay(), 0.0);
  auto update = supervisor.OnFailureDetected(10.0, s.NodeOfInput0(), node_up,
                                             *dep);
  EXPECT_FALSE(update.has_value());
  EXPECT_FALSE(supervisor.last_status().ok());
  EXPECT_EQ(supervisor.repairs_performed(), 0u);

  // Doubling backoff: 0.5, 1.0, 2.0, then exhausted.
  EXPECT_EQ(supervisor.RepairRetryDelay(), 0.5);
  EXPECT_EQ(supervisor.RepairRetryDelay(), 1.0);
  EXPECT_EQ(supervisor.RepairRetryDelay(), 2.0);
  EXPECT_EQ(supervisor.RepairRetryDelay(), 0.0);
  EXPECT_EQ(supervisor.repair_retries(), 3u);
}

TEST(SupervisorTest, EngineReFiresDetectionUntilRetriesExhaust) {
  Scenario s;
  FailureSchedule chaos;
  chaos.CrashAt(10.0, s.NodeOfInput0());

  Supervisor::Options sup_options;
  sup_options.detection_delay = 0.5;
  sup_options.rod.tie_break = place::RodOptions::ClassITieBreak::kMinCrossArcs;
  sup_options.max_repair_retries = 3;
  sup_options.repair_retry_backoff = 0.5;
  Supervisor supervisor(s.model, sup_options);

  SimulationOptions options;
  options.duration = 40.0;
  options.failures = &chaos;
  options.recovery = &supervisor;
  auto r = SimulatePlacement(s.graph, s.plan, s.system, s.Traces(0.5, 40.0),
                             options);
  ASSERT_TRUE(r.ok());
  // Every attempt failed; the engine re-scheduled detection once per
  // granted retry, then accepted the failure as final.
  EXPECT_EQ(supervisor.repairs_performed(), 0u);
  EXPECT_EQ(supervisor.repair_retries(), 3u);
  EXPECT_FALSE(supervisor.last_status().ok());
  EXPECT_TRUE(r->incident.has_value());
  EXPECT_LT(r->incident->plan_applied_time, 0.0);  // never repaired
}

TEST(SupervisorTest, FlappingNodeIsQuarantined) {
  Scenario s;
  auto dep = CompileDeployment(s.graph, s.plan, s.system);
  ASSERT_TRUE(dep.ok());

  Supervisor::Options sup_options;
  sup_options.quarantine_after = 2;
  Supervisor supervisor(s.model, sup_options);

  const std::vector<bool> n1_down{true, false, true};
  const std::vector<bool> n2_down{true, true, false};

  // Crash #1 of node 1: repaired, not yet quarantined.
  auto u1 = supervisor.OnFailureDetected(10.0, 1, n1_down, *dep);
  ASSERT_TRUE(u1.has_value());
  EXPECT_FALSE(supervisor.quarantined(1));

  // Node 1 recovers (visible in the next liveness map); node 2 crashes.
  supervisor.OnFailureDetected(20.0, 2, n2_down, *dep);

  // Crash #2 of node 1: now quarantined.
  supervisor.OnFailureDetected(30.0, 1, n1_down, *dep);
  EXPECT_TRUE(supervisor.quarantined(1));
  EXPECT_EQ(supervisor.num_quarantined(), 1u);

  // Node 1 is nominally up in the next repair, but the supervisor never
  // places an operator on a quarantined node.
  auto update = supervisor.OnFailureDetected(40.0, 2, n2_down, *dep);
  ASSERT_TRUE(update.has_value());
  for (size_t node : update->assignment) EXPECT_NE(node, 1u);

  supervisor.Reset();
  EXPECT_FALSE(supervisor.quarantined(1));
  EXPECT_EQ(supervisor.num_quarantined(), 0u);
}

TEST(ChaosTest, RebalanceBudgetDoesNotHurtPlaneDistance) {
  Scenario s;
  FailureSchedule chaos;
  chaos.CrashAt(20.0, s.NodeOfInput0());

  auto distance_with_budget = [&](size_t budget) {
    Supervisor::Options sup_options;
    sup_options.detection_delay = 1.0;
    sup_options.rebalance_budget = budget;
    Supervisor supervisor(s.model, sup_options);
    SimulationOptions options;
    options.duration = 40.0;
    options.failures = &chaos;
    options.recovery = &supervisor;
    auto r = SimulatePlacement(s.graph, s.plan, s.system, s.Traces(0.5, 40.0),
                               options);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(supervisor.repairs_performed(), 1u);
    return supervisor.last_plane_distance();
  };

  const double repair_only = distance_with_budget(0);
  const double rebalanced = distance_with_budget(3);
  EXPECT_GE(rebalanced, repair_only - 1e-12);
}

}  // namespace
}  // namespace rod::sim
