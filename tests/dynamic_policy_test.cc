// Tests for the correlation-based dynamic policy ([23] as a fluid
// migration policy) and hybrid (light-op-only) migration.

#include <gtest/gtest.h>

#include <cmath>

#include "placement/correlation_policy.h"
#include "placement/dynamic.h"
#include "query/query_graph.h"
#include "runtime/fluid.h"

namespace rod::place {
namespace {

using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;
using sim::FluidOptions;
using sim::FluidSimulate;

/// Four operators: two on stream 0, two on stream 1 (equal unit costs).
struct FourOpFixture {
  QueryGraph g;
  query::LoadModel model;

  FourOpFixture() {
    const InputStreamId i0 = g.AddInputStream("I0");
    const InputStreamId i1 = g.AddInputStream("I1");
    for (int rep = 0; rep < 2; ++rep) {
      EXPECT_TRUE(g.AddOperator({.name = "a" + std::to_string(rep),
                                 .kind = OperatorKind::kMap, .cost = 1e-3},
                                {StreamRef::Input(i0)})
                      .ok());
      EXPECT_TRUE(g.AddOperator({.name = "b" + std::to_string(rep),
                                 .kind = OperatorKind::kMap, .cost = 1e-3},
                                {StreamRef::Input(i1)})
                      .ok());
    }
    model = *query::BuildLoadModel(g);
  }
};

/// Anti-phased square waves: stream 0 peaks on even 4-epoch blocks,
/// stream 1 on odd blocks.
std::vector<trace::RateTrace> AntiPhased(size_t epochs, double lo, double hi) {
  trace::RateTrace t0, t1;
  t0.window_sec = t1.window_sec = 1.0;
  for (size_t e = 0; e < epochs; ++e) {
    const bool even_block = (e / 4) % 2 == 0;
    t0.rates.push_back(even_block ? hi : lo);
    t1.rates.push_back(even_block ? lo : hi);
  }
  return {t0, t1};
}

TEST(CorrelationBalancerTest, SeparatesCorrelatedOperators) {
  FourOpFixture f;
  const place::SystemSpec system = place::SystemSpec::Homogeneous(2);
  // Worst case: each node hosts both operators of one stream, so its load
  // doubles whenever that stream peaks.
  const Placement plan(2, {0, 1, 0, 1});  // a0,a1 -> 0; b0,b1 -> 1? (ids: a0,b0,a1,b1)
  // Operator ids in creation order: a0(0), b0(1), a1(2), b1(3); so
  // {0,1,0,1} puts a0,a1 on node 0 and b0,b1 on node 1 — same-stream pairs
  // co-located, exactly what correlation-based distribution undoes.
  const auto traces = AntiPhased(120, 100.0, 880.0);

  auto static_run = FluidSimulate(f.model, plan, system, traces);
  CorrelationBalancer balancer;
  auto dynamic_run = FluidSimulate(f.model, plan, system, traces,
                                   FluidOptions{}, &balancer);
  ASSERT_TRUE(static_run.ok() && dynamic_run.ok());
  // Static: each peak block overloads one node (0.1 + 0.88 -> 1.76 util).
  EXPECT_GT(static_run->overloaded_epochs, 50u);
  // The correlation policy should mix the streams across nodes and then
  // stay quiet (anti-phased loads cancel: ~0.98 util per node).
  EXPECT_LT(dynamic_run->overloaded_epochs, static_run->overloaded_epochs);
  EXPECT_GE(dynamic_run->migrations, 1u);
  // Final assignment mixes streams: nodes host one op of each stream.
  const auto& fin = dynamic_run->final_assignment;
  EXPECT_NE(fin[0], fin[2]);  // a0 and a1 apart
  EXPECT_NE(fin[1], fin[3]);  // b0 and b1 apart
}

TEST(CorrelationBalancerTest, NeedsHistoryBeforeActing) {
  FourOpFixture f;
  const place::SystemSpec system = place::SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 1, 0, 1});
  CorrelationBalancer::Options options;
  options.min_history = 1000;  // never enough
  CorrelationBalancer balancer(options);
  auto run = FluidSimulate(f.model, plan, system,
                           AntiPhased(40, 100.0, 880.0), FluidOptions{},
                           &balancer);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->migrations, 0u);
}

TEST(CorrelationBalancerTest, QuietWhenBalanced) {
  FourOpFixture f;
  const place::SystemSpec system = place::SystemSpec::Homogeneous(2);
  const Placement mixed(2, {0, 0, 1, 1});  // one op of each stream per node
  CorrelationBalancer balancer;
  auto run = FluidSimulate(f.model, mixed, system,
                           AntiPhased(60, 100.0, 700.0), FluidOptions{},
                           &balancer);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->migrations, 0u);  // 0.8 peak util: below the watermark
}

TEST(HybridTest, LightOpRestrictionBlocksHeavyMoves) {
  // One heavy op and one light op on a hot node; with the hybrid
  // restriction only the light one may move — which doesn't relieve the
  // node enough, so ReactiveBalancer moves the light one at most.
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  EXPECT_TRUE(g.AddOperator({.name = "heavy", .kind = OperatorKind::kMap,
                             .cost = 9e-4},
                            {StreamRef::Input(in)})
                  .ok());
  EXPECT_TRUE(g.AddOperator({.name = "light", .kind = OperatorKind::kMap,
                             .cost = 1e-4},
                            {StreamRef::Input(in)})
                  .ok());
  auto model = *query::BuildLoadModel(g);
  const place::SystemSpec system = place::SystemSpec::Homogeneous(2);
  const Placement plan(2, {0, 0});

  trace::RateTrace t;
  t.window_sec = 1.0;
  t.rates.assign(30, 950.0);  // node 0 util 0.95

  ReactiveBalancer::Options options;
  options.max_movable_load_fraction = 0.2;  // heavy op (0.855) immovable
  ReactiveBalancer balancer(options);
  auto run =
      FluidSimulate(model, plan, system, {t}, FluidOptions{}, &balancer);
  ASSERT_TRUE(run.ok());
  // Only the light operator may have moved.
  EXPECT_EQ(run->final_assignment[0], 0u);
  EXPECT_LE(run->migrations, 1u);

  ReactiveBalancer unrestricted;
  auto free_run = FluidSimulate(model, plan, system, {t}, FluidOptions{},
                                &unrestricted);
  ASSERT_TRUE(free_run.ok());
  // Without the restriction the heavy op moves instead (bigger relief).
  EXPECT_EQ(free_run->final_assignment[0], 1u);
}

}  // namespace
}  // namespace rod::place
