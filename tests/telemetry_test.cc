// Tests for the telemetry subsystem: registry semantics, histogram merges
// that are associative/commutative and invariant to how recording work was
// partitioned across the thread pool, deterministic trace-ring drop
// accounting, and byte-exact exporter output (the Chrome trace pins to a
// golden file). The multi-threaded cases double as ASan/UBSan targets for
// the lock-free shard fast path.

#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace rod::telemetry {
namespace {

TEST(TelemetryTest, CountersAccumulate) {
  Telemetry tel;
  Counter c = tel.counter("engine.events");
  c.Add();
  c.Add(41);
  const MetricsSnapshot snap = tel.Snapshot();
  EXPECT_EQ(snap.counters.at("engine.events"), 42u);
}

TEST(TelemetryTest, RegistrationIsIdempotent) {
  Telemetry tel;
  tel.counter("x").Add(1);
  tel.counter("x").Add(2);
  tel.Count("x");
  const MetricsSnapshot snap = tel.Snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters.at("x"), 4u);
}

TEST(TelemetryTest, GaugeKeepsLastWrittenValue) {
  Telemetry tel;
  Gauge g = tel.gauge("pool.queue_depth");
  g.Set(3.0);
  g.Set(7.5);
  EXPECT_EQ(tel.Snapshot().gauges.at("pool.queue_depth"), 7.5);
}

TEST(TelemetryTest, DefaultHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.Add(5);  // must not crash
  g.Set(1.0);
  h.Record(1.0);
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
}

TEST(TelemetryTest, RegistrationBeyondCapacityReturnsInertHandles) {
  Telemetry tel;
  for (int i = 0; i < 300; ++i) {
    Counter c = tel.counter("c" + std::to_string(i));
    c.Add(1);  // over-cap handles must be safe no-ops
  }
  const MetricsSnapshot snap = tel.Snapshot();
  EXPECT_EQ(snap.counters.size(), 256u);
  EXPECT_EQ(snap.counters.at("c0"), 1u);
  EXPECT_EQ(snap.counters.at("c255"), 1u);
  EXPECT_EQ(snap.counters.count("c256"), 0u);
  // Cap overflow is counted, not silent: 300 - 256 refused registrations.
  EXPECT_EQ(snap.dropped_registrations, 44u);
  // Re-registering an existing name is idempotent, not a drop.
  tel.counter("c0");
  EXPECT_EQ(tel.Snapshot().dropped_registrations, 44u);
}

TEST(TelemetryTest, GaugeMaxRatchetsUpward) {
  Telemetry tel;
  Gauge g = tel.gauge("event_queue.size_high_water");
  g.Max(3.0);
  g.Max(9.0);
  g.Max(5.0);  // below the high water: ignored
  EXPECT_EQ(tel.Snapshot().gauges.at("event_queue.size_high_water"), 9.0);
  // An external reset (the Aggregator's job) re-arms the ratchet.
  tel.SetGauge("event_queue.size_high_water", 0.0);
  g.Max(4.0);
  EXPECT_EQ(tel.Snapshot().gauges.at("event_queue.size_high_water"), 4.0);
}

TEST(TelemetryTest, SnapshotTraceCopiesRingsInOrder) {
  TelemetryOptions options;
  options.manual_clock = true;
  Telemetry tel(options);
  {
    TraceSpan span(&tel, "engine", "run", uint64_t{7});
    tel.AdvanceClock(100.0);
  }
  tel.RecordInstant("engine", "crash", 2, /*has_arg=*/true);
  const std::vector<TraceEventView> events = tel.SnapshotTrace();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "run");
  EXPECT_FALSE(events[0].instant);
  EXPECT_EQ(events[0].dur_us, 100.0);
  EXPECT_TRUE(events[0].has_arg);
  EXPECT_EQ(events[0].arg, 7u);
  EXPECT_STREQ(events[1].name, "crash");
  EXPECT_TRUE(events[1].instant);
  EXPECT_EQ(events[1].arg, 2u);
}

TEST(TelemetryTest, HistogramSnapshotBasics) {
  Telemetry tel;
  Histogram h = tel.histogram("lat");
  h.Record(1.0);
  h.Record(2.0);
  h.Record(4.0);
  const HistogramSnapshot s = tel.Snapshot().histograms.at("lat");
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 7.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_EQ(s.mean(), 7.0 / 3.0);
  // Exactly one sample per power-of-two bucket.
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_EQ(s.buckets[0].first, 1.0);
  EXPECT_EQ(s.buckets[1].first, 2.0);
  EXPECT_EQ(s.buckets[2].first, 4.0);
  for (const auto& [upper, n] : s.buckets) EXPECT_EQ(n, 1u);
}

TEST(TelemetryTest, HistogramQuantileWithinOneBucketAndClamped) {
  Telemetry tel;
  Histogram h = tel.histogram("lat");
  for (int v = 1; v <= 100; ++v) h.Record(static_cast<double>(v));
  const HistogramSnapshot s = tel.Snapshot().histograms.at("lat");
  const double p50 = s.Quantile(0.50);
  // Bucket resolution is sqrt(2): the p50 estimate is the upper bound of
  // the bucket holding the 50th sample, clamped to [min, max].
  EXPECT_GE(p50, 50.0 / 1.4143);
  EXPECT_LE(p50, 50.0 * 1.4143);
  EXPECT_GE(s.Quantile(0.0), s.min);
  EXPECT_LE(s.Quantile(1.0), s.max);
  EXPECT_EQ(s.Quantile(1.0), 100.0);
}

TEST(TelemetryTest, HistogramMergeIsOrderIndependent) {
  // The same multiset recorded in opposite orders must merge to the same
  // snapshot: bucket increments commute, and the exactly-representable
  // values make the double sum exact in every order.
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(0.5 * ((i * 37) % 101));
  Telemetry forward;
  Telemetry backward;
  Histogram hf = forward.histogram("h");
  Histogram hb = backward.histogram("h");
  for (size_t i = 0; i < values.size(); ++i) {
    hf.Record(values[i]);
    hb.Record(values[values.size() - 1 - i]);
  }
  const HistogramSnapshot a = forward.Snapshot().histograms.at("h");
  const HistogramSnapshot b = backward.Snapshot().histograms.at("h");
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
}

/// Records a fixed multiset of values and counter increments partitioned
/// across `num_threads` pool workers, then snapshots.
MetricsSnapshot RunPartitioned(size_t num_threads) {
  Telemetry tel;
  Histogram hist = tel.histogram("lat");
  Counter ctr = tel.counter("n");
  ThreadPool pool(num_threads);
  constexpr size_t kN = 5000;
  ParallelFor(pool, num_threads, kN, /*grain=*/64,
              [&](size_t, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  // Multiples of 0.5: the shard-order double sum is exact,
                  // so it cannot depend on the merge order.
                  hist.Record(0.5 * static_cast<double>((i * 13) % 257));
                  ctr.Add();
                }
              });
  // ParallelFor blocks until every chunk ran, so the shards are quiescent.
  return tel.Snapshot();
}

TEST(TelemetryTest, SnapshotInvariantToThreadCount) {
  const MetricsSnapshot base = RunPartitioned(1);
  ASSERT_EQ(base.counters.at("n"), 5000u);
  for (size_t threads : {2u, 4u, 8u}) {
    const MetricsSnapshot snap = RunPartitioned(threads);
    EXPECT_EQ(snap.counters.at("n"), base.counters.at("n")) << threads;
    const HistogramSnapshot& a = base.histograms.at("lat");
    const HistogramSnapshot& b = snap.histograms.at("lat");
    EXPECT_EQ(a.count, b.count) << threads;
    EXPECT_EQ(a.sum, b.sum) << threads;
    EXPECT_EQ(a.min, b.min) << threads;
    EXPECT_EQ(a.max, b.max) << threads;
    EXPECT_EQ(a.buckets, b.buckets) << threads;
  }
}

TEST(TelemetryTest, TraceRingDropCountsAreDeterministic) {
  for (int repeat = 0; repeat < 2; ++repeat) {
    TelemetryOptions options;
    options.ring_capacity = 4;
    Telemetry tel(options);
    for (int i = 0; i < 10; ++i) {
      TraceSpan span(&tel, "test", "work");
    }
    const MetricsSnapshot snap = tel.Snapshot();
    EXPECT_EQ(snap.trace_events_recorded, 4u);
    EXPECT_EQ(snap.trace_events_dropped, 6u);
  }
}

TEST(TelemetryTest, CaptureTracesOffRecordsNothing) {
  TelemetryOptions options;
  options.capture_traces = false;
  Telemetry tel(options);
  {
    TraceSpan span(&tel, "test", "work");
  }
  tel.RecordInstant("test", "instant");
  const MetricsSnapshot snap = tel.Snapshot();
  EXPECT_EQ(snap.trace_events_recorded, 0u);
  EXPECT_EQ(snap.trace_events_dropped, 0u);
}

TEST(TelemetryTest, NullSinkSpansAreNoOps) {
  TraceSpan span(nullptr, "test", "work");
  span.End();  // must not crash
  ROD_TRACE_SPAN(nullptr, "test", "macro");
  Telemetry* null_tel = nullptr;
  ROD_TRACE_SPAN(null_tel, "test", "macro2");
}

TEST(TelemetryTest, SpanEndIsIdempotent) {
  Telemetry tel;
  TraceSpan span(&tel, "test", "work");
  span.End();
  span.End();
  EXPECT_EQ(tel.Snapshot().trace_events_recorded, 1u);
}

TEST(TelemetryTest, MetricsJsonIsDeterministic) {
  Telemetry tel;
  tel.Count("c", 2);
  tel.SetGauge("g", 1.5);
  tel.Observe("h", 1.0);
  std::ostringstream out;
  tel.WriteMetricsJson(out);
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"counters\": {\n"
            "    \"c\": 2\n"
            "  },\n"
            "  \"gauges\": {\n"
            "    \"g\": 1.5\n"
            "  },\n"
            "  \"histograms\": {\n"
            "    \"h\": {\"count\": 1, \"sum\": 1, \"min\": 1, \"max\": 1, "
            "\"mean\": 1, \"p50\": 1, \"p95\": 1, \"p99\": 1, "
            "\"buckets\": [[1, 1]]}\n"
            "  },\n"
            "  \"trace\": {\"recorded\": 0, \"dropped\": 0},\n"
            "  \"registry\": {\"dropped_registrations\": 0}\n"
            "}\n");
}

TEST(TelemetryTest, ChromeTraceMatchesGoldenFile) {
  // Scripted single-threaded recording on the manual clock: the export is
  // a pure function of the script, pinned byte-for-byte to the golden.
  // Regenerate with: tests/golden/README applies (re-run this scenario and
  // overwrite the file) whenever the exporter format changes on purpose.
  TelemetryOptions options;
  options.manual_clock = true;
  Telemetry tel(options);
  {
    TraceSpan setup(&tel, "engine", "setup");
    tel.AdvanceClock(100.0);
  }
  tel.AdvanceClock(50.0);
  {
    TraceSpan run(&tel, "engine", "run", uint64_t{42});
    tel.AdvanceClock(1000.25);
    tel.RecordInstant("engine", "calendar_resize", 64, /*has_arg=*/true);
    tel.AdvanceClock(500.0);
  }
  tel.RecordInstant("supervisor", "detect");
  std::ostringstream out;
  tel.WriteChromeTrace(out);

  std::ifstream golden(std::string(ROD_TESTS_SOURCE_DIR) +
                       "/golden/chrome_trace.json");
  ASSERT_TRUE(golden.good()) << "missing golden file";
  std::stringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(out.str(), want.str());
}

TEST(TelemetryTest, ManualClockOnlyAdvancesExplicitly) {
  TelemetryOptions options;
  options.manual_clock = true;
  Telemetry tel(options);
  EXPECT_EQ(tel.NowMicros(), 0.0);
  tel.AdvanceClock(12.5);
  EXPECT_EQ(tel.NowMicros(), 12.5);
}

}  // namespace
}  // namespace rod::telemetry
