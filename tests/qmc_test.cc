// Tests for the Halton sequence and the cube-to-simplex transform.

#include "geometry/qmc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace rod::geom {
namespace {

TEST(PrimesTest, FirstPrimes) {
  EXPECT_EQ(FirstPrimes(8),
            (std::vector<uint32_t>{2, 3, 5, 7, 11, 13, 17, 19}));
  EXPECT_TRUE(FirstPrimes(0).empty());
}

TEST(RadicalInverseTest, Base2KnownValues) {
  EXPECT_DOUBLE_EQ(RadicalInverse(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(RadicalInverse(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(RadicalInverse(2, 2), 0.25);
  EXPECT_DOUBLE_EQ(RadicalInverse(3, 2), 0.75);
  EXPECT_DOUBLE_EQ(RadicalInverse(4, 2), 0.125);
}

TEST(RadicalInverseTest, Base3KnownValues) {
  EXPECT_DOUBLE_EQ(RadicalInverse(1, 3), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(RadicalInverse(2, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(RadicalInverse(3, 3), 1.0 / 9.0);
}

TEST(HaltonTest, PointsInUnitCube) {
  HaltonSequence h(5);
  for (int i = 0; i < 1000; ++i) {
    const Vector p = h.Next();
    ASSERT_EQ(p.size(), 5u);
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(HaltonTest, DeterministicAcrossInstances) {
  HaltonSequence a(3), b(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(HaltonTest, LowDiscrepancyBeatsNothing) {
  // The 1-D Halton mean converges to 0.5 much faster than 1/sqrt(N).
  HaltonSequence h(1);
  double sum = 0.0;
  const int n = 4096;
  for (int i = 0; i < n; ++i) sum += h.Next()[0];
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(HaltonTest, DimensionsDecorrelated) {
  // Sample covariance between the base-2 and base-3 coordinates ~ 0.
  HaltonSequence h(2);
  const int n = 8192;
  double sx = 0, sy = 0, sxy = 0;
  for (int i = 0; i < n; ++i) {
    const Vector p = h.Next();
    sx += p[0];
    sy += p[1];
    sxy += p[0] * p[1];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  EXPECT_NEAR(cov, 0.0, 0.002);
}

TEST(SimplexMapTest, OutputInSolidSimplex) {
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    Vector cube(4);
    for (double& v : cube) v = rng.NextDouble();
    const Vector x = MapUnitCubeToSimplex(cube);
    double sum = 0.0;
    for (double v : x) {
      EXPECT_GE(v, 0.0);
      sum += v;
    }
    EXPECT_LE(sum, 1.0 + 1e-12);
  }
}

TEST(SimplexMapTest, PreservesTotalAsMaxCoordinate) {
  // sum of spacings equals the largest input coordinate.
  Vector cube = {0.7, 0.2, 0.4};
  const Vector x = MapUnitCubeToSimplex(cube);
  EXPECT_NEAR(x[0] + x[1] + x[2], 0.7, 1e-12);
  EXPECT_NEAR(x[0], 0.2, 1e-12);
  EXPECT_NEAR(x[1], 0.2, 1e-12);
  EXPECT_NEAR(x[2], 0.3, 1e-12);
}

TEST(SimplexMapTest, UniformMeasure) {
  // Under the uniform distribution on the solid simplex {x>=0, sum<=1} in
  // d dims, E[x_k] = 1/(d+1) for every k. Check with pseudo-random input.
  Rng rng(17);
  const size_t d = 3;
  const int n = 200000;
  Vector mean(d, 0.0);
  for (int i = 0; i < n; ++i) {
    Vector cube(d);
    for (double& v : cube) v = rng.NextDouble();
    const Vector x = MapUnitCubeToSimplex(std::move(cube));
    for (size_t k = 0; k < d; ++k) mean[k] += x[k];
  }
  for (size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(mean[k] / n, 0.25, 0.002) << "coordinate " << k;
  }
}

TEST(SimplexMapTest, HalfSpaceProbability) {
  // P(sum x <= 1/2) over the solid simplex is (1/2)^d (scaled sub-simplex).
  Rng rng(23);
  const size_t d = 4;
  const int n = 300000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    Vector cube(d);
    for (double& v : cube) v = rng.NextDouble();
    const Vector x = MapUnitCubeToSimplex(std::move(cube));
    double sum = 0.0;
    for (double v : x) sum += v;
    hits += sum <= 0.5;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 1.0 / 16.0, 0.003);
}

}  // namespace
}  // namespace rod::geom
