// Batch-size invariance of the tuple engine: the delivery-batching knob
// (SimulationOptions::batch_size) may only change how many calendar
// events carry the same tuples, never the tuples themselves. Every
// result field — latencies, per-operator statistics, utilization, and
// the PR-6 graceful-degradation accounting (OverloadStats) — must be
// bit-identical across batch sizes, with and without bounded queues,
// backpressure, and the sustained-overload control loop engaged.

#include <gtest/gtest.h>

#include <vector>

#include "runtime/engine.h"

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

constexpr size_t kBatchSweep[] = {1, 7, 64, 4096};

trace::RateTrace ConstantTrace(double rate, double duration) {
  trace::RateTrace t;
  t.window_sec = duration;
  t.rates = {rate};
  return t;
}

/// Fan-out across a network hop: I -> src (node 0) -> {a, b, c} (node 1).
/// One emission on node 0 schedules three same-instant deliveries to
/// node 1 — the shape delivery batching actually coalesces.
struct FanOutScenario {
  QueryGraph graph;
  SystemSpec system = SystemSpec::Homogeneous(2);
  Placement plan{2, {0, 1, 1, 1}};

  explicit FanOutScenario(double src_cost = 2e-4, double leaf_cost = 4e-4) {
    const InputStreamId in = graph.AddInputStream("I");
    auto src = graph.AddOperator({.name = "src", .kind = OperatorKind::kMap,
                                  .cost = src_cost, .selectivity = 1.0},
                                 {StreamRef::Input(in)});
    EXPECT_TRUE(src.ok());
    for (const char* name : {"a", "b", "c"}) {
      EXPECT_TRUE(graph
                      .AddOperator({.name = name, .kind = OperatorKind::kMap,
                                    .cost = leaf_cost, .selectivity = 0.9},
                                   {StreamRef::Op(*src)})
                      .ok());
    }
  }
};

void ExpectBitExact(const SimulationResult& a, const SimulationResult& b,
                    size_t batch) {
  SCOPED_TRACE("batch_size " + std::to_string(batch));
  EXPECT_EQ(a.input_tuples, b.input_tuples);
  EXPECT_EQ(a.shed_tuples, b.shed_tuples);
  EXPECT_EQ(a.output_tuples, b.output_tuples);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p95_latency, b.p95_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  // Batching coalesces delivery *events*, but processed_events counts
  // tuples, so even the throughput denominator is invariant.
  EXPECT_EQ(a.processed_events, b.processed_events);
  EXPECT_EQ(a.final_backlog, b.final_backlog);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.overloaded_windows, b.overloaded_windows);
  EXPECT_EQ(a.total_windows, b.total_windows);
  EXPECT_EQ(a.max_node_utilization, b.max_node_utilization);
  ASSERT_EQ(a.node_utilization.size(), b.node_utilization.size());
  for (size_t i = 0; i < a.node_utilization.size(); ++i) {
    EXPECT_EQ(a.node_utilization[i], b.node_utilization[i]) << "node " << i;
  }
  ASSERT_EQ(a.sink_latencies.size(), b.sink_latencies.size());
  for (size_t i = 0; i < a.sink_latencies.size(); ++i) {
    EXPECT_EQ(a.sink_latencies[i].sink_op, b.sink_latencies[i].sink_op);
    EXPECT_EQ(a.sink_latencies[i].outputs, b.sink_latencies[i].outputs);
    EXPECT_EQ(a.sink_latencies[i].mean, b.sink_latencies[i].mean);
    EXPECT_EQ(a.sink_latencies[i].p50, b.sink_latencies[i].p50);
    EXPECT_EQ(a.sink_latencies[i].p95, b.sink_latencies[i].p95);
  }
  ASSERT_EQ(a.op_stats.size(), b.op_stats.size());
  for (size_t i = 0; i < a.op_stats.size(); ++i) {
    EXPECT_EQ(a.op_stats[i].tuples_processed, b.op_stats[i].tuples_processed);
    EXPECT_EQ(a.op_stats[i].pairs_probed, b.op_stats[i].pairs_probed);
    EXPECT_EQ(a.op_stats[i].tuples_emitted, b.op_stats[i].tuples_emitted);
    EXPECT_EQ(a.op_stats[i].cpu_seconds, b.op_stats[i].cpu_seconds);
  }
  const auto& ao = a.overload;
  const auto& bo = b.overload;
  EXPECT_EQ(ao.shed_edge, bo.shed_edge);
  EXPECT_EQ(ao.shed_overflow, bo.shed_overflow);
  EXPECT_EQ(ao.shed_directive, bo.shed_directive);
  EXPECT_EQ(ao.backpressure_deferred, bo.backpressure_deferred);
  EXPECT_EQ(ao.congestion_episodes, bo.congestion_episodes);
  EXPECT_EQ(ao.source_stalls, bo.source_stalls);
  EXPECT_EQ(ao.source_stall_seconds, bo.source_stall_seconds);
  EXPECT_EQ(ao.node_congested_seconds, bo.node_congested_seconds);
  EXPECT_EQ(ao.queue_depth_high_water, bo.queue_depth_high_water);
  EXPECT_EQ(ao.overload_detect_time, bo.overload_detect_time);
  EXPECT_EQ(ao.control_consults, bo.control_consults);
  EXPECT_EQ(ao.shed_rate_applied, bo.shed_rate_applied);
  EXPECT_EQ(a.incident.has_value(), b.incident.has_value());
}

SimulationResult RunWith(const FanOutScenario& s,
                         const SimulationOptions& base, size_t batch,
                         double rate) {
  SimulationOptions options = base;
  options.batch_size = batch;
  auto r = SimulatePlacement(s.graph, s.plan, s.system,
                             {ConstantTrace(rate, base.duration)}, options);
  EXPECT_TRUE(r.ok());
  return std::move(*r);
}

TEST(EngineBatchTest, SweepIsBitExactAtModerateLoad) {
  const FanOutScenario s;
  SimulationOptions options;
  options.duration = 30.0;
  const SimulationResult baseline = RunWith(s, options, 1, 400.0);
  EXPECT_GT(baseline.output_tuples, 1000u);
  for (size_t batch : kBatchSweep) {
    if (batch == 1) continue;
    ExpectBitExact(baseline, RunWith(s, options, batch, 400.0), batch);
  }
}

TEST(EngineBatchTest, SweepIsBitExactUnderOverloadMachinery) {
  // Leaf node driven past saturation with every PR-6 mechanism live:
  // bounded queues, backpressure with source stalls, threshold shedding,
  // and the sustained-overload detector. All of their accounting is
  // per-tuple inside a batch, so OverloadStats must not move either.
  const FanOutScenario s(/*src_cost=*/1e-4, /*leaf_cost=*/1.2e-3);
  SimulationOptions options;
  options.duration = 30.0;
  options.queue_bound.capacity = 256;
  options.queue_bound.policy = OverflowPolicy::kDropOldest;
  options.backpressure.enabled = true;
  options.backpressure.high_water = 96;
  options.shed_queue_threshold = 192;
  const SimulationResult baseline = RunWith(s, options, 1, 1200.0);
  EXPECT_GT(baseline.overload.total_shed() +
                baseline.overload.backpressure_deferred,
            0u)
      << "scenario failed to engage the degradation machinery";
  for (size_t batch : kBatchSweep) {
    if (batch == 1) continue;
    ExpectBitExact(baseline, RunWith(s, options, batch, 1200.0), batch);
  }
}

TEST(EngineBatchTest, SweepIsBitExactOnBothEventQueues) {
  // The batching layer sits above the event queue; sweep the heap-backed
  // queue too so a calendar-specific assumption cannot hide there.
  const FanOutScenario s;
  for (EventQueueImpl impl :
       {EventQueueImpl::kCalendar, EventQueueImpl::kBinaryHeap}) {
    SimulationOptions options;
    options.duration = 15.0;
    options.event_queue = impl;
    const SimulationResult baseline = RunWith(s, options, 1, 500.0);
    for (size_t batch : kBatchSweep) {
      if (batch == 1) continue;
      ExpectBitExact(baseline, RunWith(s, options, batch, 500.0), batch);
    }
  }
}

}  // namespace
}  // namespace rod::sim
