// Tests for DOT export.

#include "query/graphviz.h"

#include <gtest/gtest.h>

namespace rod::query {
namespace {

QueryGraph SmallGraph() {
  QueryGraph g;
  const auto in = g.AddInputStream("pkts");
  auto a = g.AddOperator({.name = "parse", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Input(in)});
  EXPECT_TRUE(g.AddOperator({.name = "agg\"x\"",
                             .kind = OperatorKind::kAggregate,
                             .cost = 2e-3,
                             .selectivity = 0.1},
                            {StreamRef::Op(*a)}, {5e-4})
                  .ok());
  return g;
}

TEST(GraphvizTest, EmitsNodesEdgesAndLabels) {
  const std::string dot = ToGraphviz(SmallGraph());
  EXPECT_NE(dot.find("digraph query"), std::string::npos);
  EXPECT_NE(dot.find("in0 [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("pkts"), std::string::npos);
  EXPECT_NE(dot.find("parse"), std::string::npos);
  EXPECT_NE(dot.find("in0 -> op0"), std::string::npos);
  EXPECT_NE(dot.find("op0 -> op1"), std::string::npos);
  EXPECT_NE(dot.find("comm=0.0005"), std::string::npos);
  // Selectivity shown only when != 1.
  EXPECT_NE(dot.find("s=0.1"), std::string::npos);
}

TEST(GraphvizTest, EscapesQuotesInNames) {
  const std::string dot = ToGraphviz(SmallGraph());
  EXPECT_NE(dot.find("agg\\\"x\\\""), std::string::npos);
}

TEST(GraphvizTest, PlacementAddsClusters) {
  const QueryGraph g = SmallGraph();
  const std::vector<size_t> assignment = {0, 1};
  const std::string dot = ToGraphviz(g, &assignment);
  EXPECT_NE(dot.find("subgraph cluster_node0"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_node1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"node 1\""), std::string::npos);
}

TEST(GraphvizTest, MismatchedAssignmentIgnored) {
  const QueryGraph g = SmallGraph();
  const std::vector<size_t> wrong_size = {0};
  const std::string dot = ToGraphviz(g, &wrong_size);
  EXPECT_EQ(dot.find("subgraph"), std::string::npos);
}

TEST(GraphvizTest, JoinWindowShown) {
  QueryGraph g;
  const auto l = g.AddInputStream("L");
  const auto r = g.AddInputStream("R");
  ASSERT_TRUE(g.AddOperator({.name = "j", .kind = OperatorKind::kJoin,
                             .cost = 1e-5, .selectivity = 0.5,
                             .window = 2.0},
                            {StreamRef::Input(l), StreamRef::Input(r)})
                  .ok());
  const std::string dot = ToGraphviz(g);
  EXPECT_NE(dot.find("w=2"), std::string::npos);
}

}  // namespace
}  // namespace rod::query
