// Tests for the ROD algorithm itself: paper Example 2 behaviour, the
// perfectly balanceable case, the §6.1 lower-bound variant, tie-break
// policies, and the ablation modes.

#include "placement/rod.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/hyperplane.h"
#include "placement/evaluator.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::place {
namespace {

using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

QueryGraph PaperFigure4Graph() {
  QueryGraph g;
  const InputStreamId i1 = g.AddInputStream("I1");
  const InputStreamId i2 = g.AddInputStream("I2");
  auto o1 = g.AddOperator({.name = "o1", .kind = OperatorKind::kMap,
                           .cost = 4.0, .selectivity = 1.0},
                          {StreamRef::Input(i1)});
  auto o2 = g.AddOperator({.name = "o2", .kind = OperatorKind::kMap,
                           .cost = 6.0, .selectivity = 1.0},
                          {StreamRef::Op(*o1)});
  auto o3 = g.AddOperator({.name = "o3", .kind = OperatorKind::kFilter,
                           .cost = 9.0, .selectivity = 0.5},
                          {StreamRef::Input(i2)});
  auto o4 = g.AddOperator({.name = "o4", .kind = OperatorKind::kMap,
                           .cost = 4.0, .selectivity = 1.0},
                          {StreamRef::Op(*o3)});
  EXPECT_TRUE(o4.ok());
  return g;
}

TEST(RodTest, PaperExample2SplitsBothStreams) {
  const QueryGraph g = PaperFigure4Graph();
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = RodPlace(*model, system);
  ASSERT_TRUE(plan.ok());

  // ROD must not put a whole input stream's operators on one node: o1 and
  // o2 (stream 1) split, o3 and o4 (stream 2) split.
  EXPECT_NE(plan->node_of(0), plan->node_of(1));
  EXPECT_NE(plan->node_of(2), plan->node_of(3));

  // And its feasible ratio beats the connected plan {o1,o2}|{o3,o4} (0.5).
  const PlacementEvaluator eval(*model, system);
  geom::VolumeOptions options;
  options.num_samples = 1u << 16;
  auto rod_ratio = eval.RatioToIdeal(*plan, options);
  ASSERT_TRUE(rod_ratio.ok());
  auto connected_ratio = eval.RatioToIdeal(Placement(2, {0, 0, 1, 1}), options);
  ASSERT_TRUE(connected_ratio.ok());
  EXPECT_GT(*rod_ratio, *connected_ratio);
}

TEST(RodTest, PerfectlyBalanceableReachesIdeal) {
  // Two streams, two identical operators each, two equal nodes: the ideal
  // matrix is achievable, so ROD should attain ratio 1 and min plane
  // distance r* = 1/sqrt(2).
  QueryGraph g;
  const InputStreamId i1 = g.AddInputStream("I1");
  const InputStreamId i2 = g.AddInputStream("I2");
  for (int rep = 0; rep < 2; ++rep) {
    ASSERT_TRUE(g.AddOperator({.name = "a" + std::to_string(rep),
                               .kind = OperatorKind::kMap, .cost = 3.0},
                              {StreamRef::Input(i1)})
                    .ok());
    ASSERT_TRUE(g.AddOperator({.name = "b" + std::to_string(rep),
                               .kind = OperatorKind::kMap, .cost = 5.0},
                              {StreamRef::Input(i2)})
                    .ok());
  }
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  auto plan = RodPlace(*model, system);
  ASSERT_TRUE(plan.ok());

  const PlacementEvaluator eval(*model, system);
  auto distance = eval.MinPlaneDistance(*plan);
  ASSERT_TRUE(distance.ok());
  EXPECT_NEAR(*distance, geom::IdealPlaneDistance(2), 1e-9);
  auto ratio = eval.RatioToIdeal(*plan);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 1.0, 1e-9);
}

TEST(RodTest, HeterogeneousCapacitiesRespected) {
  // One node with 3x capacity should host ~3x the load per stream.
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  for (int rep = 0; rep < 4; ++rep) {
    ASSERT_TRUE(g.AddOperator({.name = "o" + std::to_string(rep),
                               .kind = OperatorKind::kMap, .cost = 1.0},
                              {StreamRef::Input(in)})
                    .ok());
  }
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system{Vector{3.0, 1.0}};
  auto plan = RodPlace(*model, system);
  ASSERT_TRUE(plan.ok());
  // 4 equal ops; proportional shares are 3 and 1.
  const auto by_node = plan->OperatorsByNode();
  EXPECT_EQ(by_node[0].size(), 3u);
  EXPECT_EQ(by_node[1].size(), 1u);
}

TEST(RodTest, DeterministicByDefault) {
  query::GraphGenOptions gen;
  gen.num_input_streams = 3;
  gen.ops_per_tree = 10;
  Rng rng(99);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(4);
  auto a = RodPlace(*model, system);
  auto b = RodPlace(*model, system);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment(), b->assignment());
}

TEST(RodTest, RandomTieBreakDeterministicPerSeed) {
  query::GraphGenOptions gen;
  Rng rng(7);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(3);
  RodOptions options;
  options.tie_break = RodOptions::ClassITieBreak::kRandom;
  options.seed = 1234;
  auto a = RodPlace(*model, system, options);
  auto b = RodPlace(*model, system, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment(), b->assignment());
}

TEST(RodTest, MinCrossArcsTieBreakReducesCrossings) {
  query::GraphGenOptions gen;
  gen.num_input_streams = 4;
  gen.ops_per_tree = 25;
  Rng rng(5);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(4);

  auto default_plan = RodPlace(*model, system);
  RodOptions options;
  options.tie_break = RodOptions::ClassITieBreak::kMinCrossArcs;
  auto local_plan = RodPlace(*model, system, options, &g);
  ASSERT_TRUE(default_plan.ok() && local_plan.ok());
  EXPECT_LE(local_plan->CountCrossNodeArcs(g),
            default_plan->CountCrossNodeArcs(g));
}

TEST(RodTest, MinCrossArcsRequiresGraph) {
  const QueryGraph g = PaperFigure4Graph();
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  RodOptions options;
  options.tie_break = RodOptions::ClassITieBreak::kMinCrossArcs;
  EXPECT_FALSE(RodPlace(*model, SystemSpec::Homogeneous(2), options).ok());
}

TEST(RodTest, LowerBoundVariantRunsAndDiffersWhenBoundBinds) {
  query::GraphGenOptions gen;
  gen.num_input_streams = 2;
  gen.ops_per_tree = 12;
  Rng rng(21);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);

  auto base = RodPlace(*model, system);
  ASSERT_TRUE(base.ok());

  RodOptions options;
  // A floor consuming a large share of stream 0's ideal headroom.
  const double r0_max = system.TotalCapacity() / model->total_coeffs()[0];
  options.lower_bound = {0.8 * r0_max, 0.0};
  auto bounded = RodPlace(*model, system, options);
  ASSERT_TRUE(bounded.ok());

  // The bounded plan must be at least as good as the unbounded one when
  // measured by distance-from-the-bound.
  const PlacementEvaluator eval(*model, system);
  const Vector norm_lb = geom::NormalizePoint(
      options.lower_bound, model->total_coeffs(), system.TotalCapacity());
  auto w_base = eval.WeightMatrix(*base);
  auto w_bounded = eval.WeightMatrix(*bounded);
  ASSERT_TRUE(w_base.ok() && w_bounded.ok());
  EXPECT_GE(geom::MinPlaneDistanceFrom(*w_bounded, norm_lb) + 1e-12,
            geom::MinPlaneDistanceFrom(*w_base, norm_lb));
}

TEST(RodTest, LowerBoundWorksOnLinearizedModels) {
  // The physical lower bound covers only the system inputs; auxiliary
  // (join-output) variables get floor 0 automatically.
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("L");
  const InputStreamId i1 = g.AddInputStream("R");
  auto fl = g.AddOperator({.name = "fl", .kind = OperatorKind::kFilter,
                           .cost = 1e-3, .selectivity = 0.8},
                          {StreamRef::Input(i0)});
  auto fr = g.AddOperator({.name = "fr", .kind = OperatorKind::kFilter,
                           .cost = 1e-3, .selectivity = 0.8},
                          {StreamRef::Input(i1)});
  auto j = g.AddOperator({.name = "j", .kind = OperatorKind::kJoin,
                          .cost = 1e-5, .selectivity = 0.3, .window = 0.5},
                         {StreamRef::Op(*fl), StreamRef::Op(*fr)});
  auto d = g.AddOperator({.name = "d", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Op(*j)});
  ASSERT_TRUE(d.ok());
  auto model = query::BuildLinearizedLoadModel(g);
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(model->has_aux_vars());
  RodOptions options;
  options.lower_bound = {10.0, 10.0};  // over the 2 physical inputs only
  auto plan = RodPlace(*model, SystemSpec::Homogeneous(2), options);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
}

TEST(RodTest, LowerBoundValidation) {
  const QueryGraph g = PaperFigure4Graph();
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  RodOptions options;
  options.lower_bound = {1.0};  // wrong dimension
  EXPECT_FALSE(RodPlace(*model, SystemSpec::Homogeneous(2), options).ok());
  options.lower_bound = {-1.0, 0.0};
  EXPECT_FALSE(RodPlace(*model, SystemSpec::Homogeneous(2), options).ok());
}

TEST(RodTest, AblationModesProduceValidPlans) {
  query::GraphGenOptions gen;
  gen.num_input_streams = 3;
  gen.ops_per_tree = 15;
  Rng rng(31);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(3);
  const PlacementEvaluator eval(*model, system);
  geom::VolumeOptions vol;
  vol.num_samples = 1u << 14;

  for (auto mode : {RodOptions::Mode::kCombined, RodOptions::Mode::kMmadOnly,
                    RodOptions::Mode::kMmpdOnly}) {
    RodOptions options;
    options.mode = mode;
    auto plan = RodPlace(*model, system, options);
    ASSERT_TRUE(plan.ok());
    auto ratio = eval.RatioToIdeal(*plan, vol);
    ASSERT_TRUE(ratio.ok());
    EXPECT_GT(*ratio, 0.0);
  }
}

TEST(RodTest, OrderingAblationStillValid) {
  query::GraphGenOptions gen;
  Rng rng(41);
  const QueryGraph g = query::GenerateRandomTrees(gen, rng);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  RodOptions unsorted;
  unsorted.sort_operators = false;
  RodOptions ascending;
  ascending.sort_ascending = true;
  EXPECT_TRUE(RodPlace(*model, SystemSpec::Homogeneous(4), unsorted).ok());
  EXPECT_TRUE(RodPlace(*model, SystemSpec::Homogeneous(4), ascending).ok());
}

TEST(RodTest, MinMaxWeightTieBreakBalancesAxes) {
  // Six equal ops on one stream, three nodes: kMinMaxWeight fills nodes
  // evenly (2-2-2) because it always picks the lowest-weight node.
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  for (int rep = 0; rep < 6; ++rep) {
    ASSERT_TRUE(g.AddOperator({.name = "o" + std::to_string(rep),
                               .kind = OperatorKind::kMap, .cost = 1.0},
                              {StreamRef::Input(in)})
                    .ok());
  }
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(3);
  RodOptions options;
  options.tie_break = RodOptions::ClassITieBreak::kMinMaxWeight;
  auto plan = RodPlace(*model, system, options);
  ASSERT_TRUE(plan.ok());
  for (const auto& ops : plan->OperatorsByNode()) {
    EXPECT_EQ(ops.size(), 2u);
  }
}

TEST(RodTest, PlacementIdenticalAcrossThreadCounts) {
  // The parallel candidate evaluation writes node-indexed slots and keeps
  // selection sequential, so the greedy outcome must not depend on
  // num_threads — including with a lower bound and in ablation modes.
  Rng rng(0xabc123);
  const size_t m = 60, dims = 4, n = 24;
  Matrix op_coeffs(m, dims);
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k < dims; ++k) {
      op_coeffs(j, k) = rng.Bernoulli(0.4) ? rng.Uniform(0.1, 2.0) : 0.0;
    }
    op_coeffs(j, j % dims) += 0.5;
  }
  Vector totals(dims, 0.0);
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k < dims; ++k) totals[k] += op_coeffs(j, k);
  }
  const SystemSpec system = SystemSpec::Homogeneous(n);
  const Vector lb(dims, 0.01);
  for (auto mode : {RodOptions::Mode::kCombined, RodOptions::Mode::kMmadOnly,
                    RodOptions::Mode::kMmpdOnly}) {
    RodOptions options;
    options.mode = mode;
    options.num_threads = 1;
    auto sequential = RodPlaceMatrix(op_coeffs, totals, system, options, lb);
    ASSERT_TRUE(sequential.ok());
    for (size_t threads : {2u, 8u}) {
      options.num_threads = threads;
      auto parallel = RodPlaceMatrix(op_coeffs, totals, system, options, lb);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->assignment(), sequential->assignment())
          << "mode " << static_cast<int>(mode) << " threads " << threads;
    }
  }
}

TEST(RodTest, MatrixInterfaceValidatesInputs) {
  const Matrix lo = Matrix::FromRows({{1.0, 0.0}});
  const SystemSpec system = SystemSpec::Homogeneous(2);
  // Non-positive total coefficient.
  EXPECT_FALSE(RodPlaceMatrix(lo, Vector{1.0, 0.0}, system).ok());
  // Size mismatch.
  EXPECT_FALSE(RodPlaceMatrix(lo, Vector{1.0}, system).ok());
  // Empty unit set.
  EXPECT_FALSE(RodPlaceMatrix(Matrix(), Vector{}, system).ok());
  // Valid.
  EXPECT_TRUE(RodPlaceMatrix(lo, Vector{1.0, 1.0}, system).ok());
}

}  // namespace
}  // namespace rod::place
