// Property sweeps (TEST_P) for the fluid simulator: backlog conservation,
// agreement with the analytic model, and policy-independence of totals
// over randomized graphs and traces.

#include <gtest/gtest.h>

#include "placement/baselines.h"
#include "placement/dynamic.h"
#include "placement/evaluator.h"
#include "query/graph_gen.h"
#include "query/load_model.h"
#include "runtime/fluid.h"
#include "trace/trace.h"

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;

class FluidSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    rod::Rng rng(GetParam());
    query::GraphGenOptions gen;
    gen.num_input_streams = 2 + rng.NextIndex(3);
    gen.ops_per_tree = 5 + rng.NextIndex(8);
    graph_ = query::GenerateRandomTrees(gen, rng);
    auto model = query::BuildLoadModel(graph_);
    ASSERT_TRUE(model.ok());
    model_ = std::move(*model);
    system_ = SystemSpec::Homogeneous(2 + rng.NextIndex(2));
    rod::Rng prng = rng.Fork();
    auto plan = place::RandomPlace(model_, system_, prng);
    ASSERT_TRUE(plan.ok());
    plan_ = std::make_unique<Placement>(*plan);

    // Bursty traces around 60% of the placement's uniform boundary.
    const place::PlacementEvaluator eval(model_, system_);
    Vector unit(model_.num_system_inputs(), 1.0);
    const Vector util = eval.NodeUtilizationAt(*plan_, unit);
    double peak = 0.0;
    for (double u : util) peak = std::max(peak, u);
    const double mean_rate = 0.6 / peak;
    for (size_t k = 0; k < model_.num_system_inputs(); ++k) {
      rod::Rng trng(GetParam() * 100 + k);
      traces_.push_back(
          trace::GeneratePreset(trace::TracePreset::kHttp, 64, 1.0, trng)
              .ScaledToMean(mean_rate));
    }
  }

  query::QueryGraph graph_;
  query::LoadModel model_;
  SystemSpec system_;
  std::unique_ptr<Placement> plan_;
  std::vector<trace::RateTrace> traces_;
};

TEST_P(FluidSweepTest, OverloadedEpochsMatchAnalyticInfeasibility) {
  // With no policy, an epoch is overloaded exactly when the analytic model
  // says its mid-epoch rate point is infeasible for the placement.
  auto run = FluidSimulate(model_, *plan_, system_, traces_);
  ASSERT_TRUE(run.ok());
  const place::PlacementEvaluator eval(model_, system_);
  size_t infeasible = 0;
  for (size_t e = 0; e < run->epochs; ++e) {
    Vector rates(traces_.size());
    for (size_t k = 0; k < traces_.size(); ++k) {
      rates[k] = traces_[k].RateAt(static_cast<double>(e) + 0.5);
    }
    infeasible += !eval.FeasibleAt(*plan_, rates);
  }
  EXPECT_EQ(run->overloaded_epochs, infeasible);
}

TEST_P(FluidSweepTest, BacklogNonNegativeAndBoundedByExcess) {
  auto run = FluidSimulate(model_, *plan_, system_, traces_);
  ASSERT_TRUE(run.ok());
  EXPECT_GE(run->final_backlog_sec, 0.0);
  EXPECT_GE(run->max_backlog_sec, run->final_backlog_sec * 0.0);
  // Total excess work bounds the peak backlog.
  const place::PlacementEvaluator eval(model_, system_);
  double total_excess = 0.0;
  for (size_t e = 0; e < run->epochs; ++e) {
    Vector rates(traces_.size());
    for (size_t k = 0; k < traces_.size(); ++k) {
      rates[k] = traces_[k].RateAt(static_cast<double>(e) + 0.5);
    }
    const Vector util = eval.NodeUtilizationAt(*plan_, rates);
    for (double u : util) total_excess += std::max(0.0, u - 1.0);
  }
  EXPECT_LE(run->max_backlog_sec, total_excess + 1e-9);
}

TEST_P(FluidSweepTest, DeterministicAcrossRuns) {
  auto a = FluidSimulate(model_, *plan_, system_, traces_);
  auto b = FluidSimulate(model_, *plan_, system_, traces_);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->overloaded_epochs, b->overloaded_epochs);
  EXPECT_DOUBLE_EQ(a->mean_backlog_sec, b->mean_backlog_sec);
  EXPECT_EQ(a->final_assignment, b->final_assignment);
}

TEST_P(FluidSweepTest, PolicyNeverChangesEpochCount) {
  place::ReactiveBalancer balancer;
  auto with = FluidSimulate(model_, *plan_, system_, traces_, FluidOptions{},
                            &balancer);
  auto without = FluidSimulate(model_, *plan_, system_, traces_);
  ASSERT_TRUE(with.ok() && without.ok());
  EXPECT_EQ(with->epochs, without->epochs);
  // Final assignment is a valid permutation of nodes.
  for (size_t node : with->final_assignment) {
    EXPECT_LT(node, system_.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidSweepTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace rod::sim
