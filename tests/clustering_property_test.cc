// Property sweeps (TEST_P) for §6.3 operator clustering: partition
// validity, load conservation, weight caps, and threshold monotonicity
// over randomized graphs with random communication costs.

#include <gtest/gtest.h>

#include "geometry/hyperplane.h"
#include "placement/clustering.h"
#include "placement/evaluator.h"
#include "query/graph_gen.h"
#include "query/load_model.h"

namespace rod::place {
namespace {

using query::QueryGraph;

class ClusteringSweepTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    rod::Rng rng(GetParam());
    query::GraphGenOptions gen;
    gen.num_input_streams = 2 + rng.NextIndex(3);
    gen.ops_per_tree = 6 + rng.NextIndex(10);
    graph_with_comm_ = BuildWithComm(gen, rng);
    auto model = query::BuildLoadModel(graph_with_comm_);
    ASSERT_TRUE(model.ok());
    model_ = std::move(*model);
    system_ = SystemSpec::Homogeneous(2 + rng.NextIndex(3));
  }

  /// Random trees re-built with random comm costs on operator arcs.
  static QueryGraph BuildWithComm(const query::GraphGenOptions& gen,
                                  Rng& rng) {
    const QueryGraph base = query::GenerateRandomTrees(gen, rng);
    QueryGraph out;
    for (query::InputStreamId k = 0; k < base.num_input_streams(); ++k) {
      out.AddInputStream(base.input_name(k));
    }
    for (query::OperatorId j = 0; j < base.num_operators(); ++j) {
      std::vector<query::StreamRef> inputs;
      std::vector<double> comm;
      for (const query::Arc& arc : base.inputs_of(j)) {
        inputs.push_back(arc.from);
        comm.push_back(arc.from.kind == query::StreamRef::Kind::kOperator
                           ? rng.Uniform(0.0, 5e-3)
                           : 0.0);
      }
      EXPECT_TRUE(out.AddOperator(base.spec(j), inputs, comm).ok());
    }
    return out;
  }

  QueryGraph graph_with_comm_;
  query::LoadModel model_;
  SystemSpec system_;
};

TEST_P(ClusteringSweepTest, PartitionIsValid) {
  for (auto scheme : {ClusteringOptions::Scheme::kClusteringRatio,
                      ClusteringOptions::Scheme::kMinWeight}) {
    ClusteringOptions options;
    options.scheme = scheme;
    options.ratio_threshold = 0.5;
    auto c = ClusterOperators(model_, graph_with_comm_, system_, options);
    ASSERT_TRUE(c.ok());
    // Every operator in exactly one cluster, ids consistent.
    std::vector<bool> seen(model_.num_operators(), false);
    for (size_t cl = 0; cl < c->num_clusters(); ++cl) {
      for (query::OperatorId j : c->clusters[cl]) {
        EXPECT_EQ(c->cluster_of[j], cl);
        EXPECT_FALSE(seen[j]);
        seen[j] = true;
      }
    }
    for (bool s : seen) EXPECT_TRUE(s);
  }
}

TEST_P(ClusteringSweepTest, ClusterCoeffsConserveLoad) {
  ClusteringOptions options;
  options.ratio_threshold = 0.25;
  auto c = ClusterOperators(model_, graph_with_comm_, system_, options);
  ASSERT_TRUE(c.ok());
  for (size_t k = 0; k < model_.num_vars(); ++k) {
    EXPECT_NEAR(c->cluster_coeffs.ColSum(k), model_.total_coeffs()[k], 1e-9);
  }
}

TEST_P(ClusteringSweepTest, MergedClustersRespectWeightCap) {
  ClusteringOptions options;
  options.ratio_threshold = 0.01;  // merge aggressively
  options.max_cluster_weight = 0.4;
  auto c = ClusterOperators(model_, graph_with_comm_, system_, options);
  ASSERT_TRUE(c.ok());
  for (size_t cl = 0; cl < c->num_clusters(); ++cl) {
    if (c->clusters[cl].size() < 2) continue;  // singletons are exempt
    EXPECT_LE(c->ClusterWeight(cl, model_.total_coeffs()), 0.4 + 1e-9);
  }
}

TEST_P(ClusteringSweepTest, HigherThresholdMergesLess) {
  ClusteringOptions lo;
  lo.ratio_threshold = 0.1;
  lo.max_cluster_weight = 1.0;
  ClusteringOptions hi = lo;
  hi.ratio_threshold = 10.0;
  auto c_lo = ClusterOperators(model_, graph_with_comm_, system_, lo);
  auto c_hi = ClusterOperators(model_, graph_with_comm_, system_, hi);
  ASSERT_TRUE(c_lo.ok() && c_hi.ok());
  EXPECT_GE(c_hi->num_clusters(), c_lo->num_clusters());
}

TEST_P(ClusteringSweepTest, ExpandedPlacementKeepsClustersTogether) {
  ClusteringOptions options;
  options.ratio_threshold = 0.2;
  auto c = ClusterOperators(model_, graph_with_comm_, system_, options);
  ASSERT_TRUE(c.ok());
  auto cluster_plan = RodPlaceMatrix(c->cluster_coeffs, model_.total_coeffs(),
                                     system_);
  ASSERT_TRUE(cluster_plan.ok());
  const Placement expanded = c->ExpandPlacement(*cluster_plan);
  for (query::OperatorId j = 0; j < model_.num_operators(); ++j) {
    EXPECT_EQ(expanded.node_of(j), cluster_plan->node_of(c->cluster_of[j]));
  }
  // Co-clustered operators are co-located.
  for (size_t cl = 0; cl < c->num_clusters(); ++cl) {
    for (query::OperatorId j : c->clusters[cl]) {
      EXPECT_EQ(expanded.node_of(j), expanded.node_of(c->clusters[cl][0]));
    }
  }
}

TEST_P(ClusteringSweepTest, SweepBeatsOrMatchesPlainRodOnCommMetric) {
  auto sweep = ClusteredRodPlace(model_, graph_with_comm_, system_);
  ASSERT_TRUE(sweep.ok());
  auto plain = RodPlace(model_, system_);
  ASSERT_TRUE(plain.ok());
  const Matrix plain_coeffs =
      NodeCoeffsWithComm(*plain, model_, graph_with_comm_);
  auto w = geom::ComputeWeightMatrix(plain_coeffs, model_.total_coeffs(),
                                     system_.capacities);
  ASSERT_TRUE(w.ok());
  EXPECT_GE(sweep->plane_distance + 1e-12, geom::MinPlaneDistance(*w));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringSweepTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace rod::place
