// Tests for the tuple-level simulation engine: queueing physics,
// selectivity, join semantics, communication costs, and the feasibility
// probe's agreement with the analytic load model.

#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "placement/evaluator.h"
#include "query/load_model.h"

namespace rod::sim {
namespace {

using place::Placement;
using place::SystemSpec;
using query::InputStreamId;
using query::OperatorKind;
using query::QueryGraph;
using query::StreamRef;

trace::RateTrace ConstantTrace(double rate, double duration) {
  trace::RateTrace t;
  t.window_sec = duration;
  t.rates = {rate};
  return t;
}

/// Graph: I -> map(cost, selectivity) -> sink.
QueryGraph OneOpGraph(double cost, double selectivity) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  EXPECT_TRUE(g.AddOperator({.name = "op", .kind = OperatorKind::kMap,
                             .cost = cost, .selectivity = selectivity},
                            {StreamRef::Input(in)})
                  .ok());
  return g;
}

TEST(EngineTest, UtilizationMatchesOfferedLoad) {
  const QueryGraph g = OneOpGraph(2e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 50.0;
  // rho = rate * cost = 200 * 0.002 = 0.4.
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(200.0, options.duration)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->max_node_utilization, 0.4, 0.05);
  EXPECT_FALSE(r->saturated);
  EXPECT_GT(r->input_tuples, 8000u);
}

TEST(EngineTest, OutputCountTracksSelectivity) {
  const QueryGraph g = OneOpGraph(1e-4, 0.3);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 50.0;
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(100.0, options.duration)}, options);
  ASSERT_TRUE(r.ok());
  const double ratio = static_cast<double>(r->output_tuples) /
                       static_cast<double>(r->input_tuples);
  EXPECT_NEAR(ratio, 0.3, 0.03);
}

TEST(EngineTest, LatencyGrowsNearSaturation) {
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 60.0;

  auto light = SimulatePlacement(g, Placement(1, {0}), system,
                                 {ConstantTrace(200.0, 60.0)}, options);
  auto heavy = SimulatePlacement(g, Placement(1, {0}), system,
                                 {ConstantTrace(950.0, 60.0)}, options);
  ASSERT_TRUE(light.ok() && heavy.ok());
  // M/D/1: mean delay at rho=0.2 ~ service; at rho=0.95 >> service.
  EXPECT_GT(heavy->mean_latency, 4.0 * light->mean_latency);
  EXPECT_FALSE(light->saturated);
}

TEST(EngineTest, OverloadSaturates) {
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 30.0;
  // rho = 1.5: queue grows without bound.
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(1500.0, 30.0)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->saturated);
  EXPECT_GT(r->final_backlog, 1000u);
  EXPECT_GT(r->overloaded_windows, r->total_windows / 2);
}

TEST(EngineTest, PipelineLatencyAccumulates) {
  // Chain of three 1 ms operators at trivial load: latency >= 3 ms.
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  StreamRef prev = StreamRef::Input(in);
  for (int j = 0; j < 3; ++j) {
    prev = StreamRef::Op(*g.AddOperator(
        {.name = "s" + std::to_string(j), .kind = OperatorKind::kMap,
         .cost = 1e-3},
        {prev}));
  }
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 20.0;
  auto r = SimulatePlacement(g, Placement(1, {0, 0, 0}), system,
                             {ConstantTrace(20.0, 20.0)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->p50_latency, 3e-3);
  EXPECT_LT(r->p50_latency, 8e-3);
}

TEST(EngineTest, NetworkLatencyAddsToCrossNodeFlows) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                          .cost = 1e-4},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                          .cost = 1e-4},
                         {StreamRef::Op(*a)});
  ASSERT_TRUE(b.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  SimulationOptions options;
  options.duration = 20.0;
  options.network_latency = 20e-3;

  auto colocated = SimulatePlacement(g, Placement(2, {0, 0}), system,
                                     {ConstantTrace(50.0, 20.0)}, options);
  auto split = SimulatePlacement(g, Placement(2, {0, 1}), system,
                                 {ConstantTrace(50.0, 20.0)}, options);
  ASSERT_TRUE(colocated.ok() && split.ok());
  EXPECT_GT(split->p50_latency, colocated->p50_latency + 15e-3);
}

TEST(EngineTest, CommCostRaisesUtilization) {
  QueryGraph g;
  const InputStreamId in = g.AddInputStream("I");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Input(in)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Op(*a)}, {2e-3});
  ASSERT_TRUE(b.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  SimulationOptions options;
  options.duration = 30.0;

  auto colocated = SimulatePlacement(g, Placement(2, {0, 0}), system,
                                     {ConstantTrace(100.0, 30.0)}, options);
  auto split = SimulatePlacement(g, Placement(2, {0, 1}), system,
                                 {ConstantTrace(100.0, 30.0)}, options);
  ASSERT_TRUE(colocated.ok() && split.ok());
  // Colocated: node 0 carries both ops, rho = 0.2. Split: each node pays
  // its op (0.1) plus comm (0.2) -> rho = 0.3 per node.
  EXPECT_NEAR(colocated->max_node_utilization, 0.2, 0.04);
  EXPECT_NEAR(split->max_node_utilization, 0.3, 0.05);
}

TEST(EngineTest, JoinLoadIsQuadraticAndEmitsPairs) {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("L");
  const InputStreamId i1 = g.AddInputStream("R");
  auto j = g.AddOperator({.name = "j", .kind = OperatorKind::kJoin,
                          .cost = 1e-5, .selectivity = 0.5, .window = 0.5},
                         {StreamRef::Input(i0), StreamRef::Input(i1)});
  ASSERT_TRUE(j.ok());
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 40.0;
  const double rate = 50.0;
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(rate, 40.0),
                              ConstantTrace(rate, 40.0)},
                             options);
  ASSERT_TRUE(r.ok());
  // Pairs probed per second = w * rL * rR = 0.5 * 50 * 50 = 1250 (the
  // engine compiles window/2 per side so symmetric probing matches the
  // paper's convention); outputs = selectivity * pairs = 625/s.
  const double out_rate =
      static_cast<double>(r->output_tuples) / options.duration;
  EXPECT_NEAR(out_rate, 625.0, 100.0);
  // Utilization = cost * pairs = 1e-5 * 1250 = 0.0125.
  EXPECT_NEAR(r->max_node_utilization, 0.0125, 0.006);
}

TEST(EngineTest, ProbeAgreesWithAnalyticFeasibility) {
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  auto model = query::BuildLoadModel(g);
  ASSERT_TRUE(model.ok());
  const SystemSpec system = SystemSpec::Homogeneous(1);
  const Placement plan(1, {0});
  const place::PlacementEvaluator eval(*model, system);
  SimulationOptions options;
  options.duration = 30.0;

  // Well inside (rho = 0.5) and well outside (rho = 1.4).
  EXPECT_TRUE(eval.FeasibleAt(plan, Vector{500.0}));
  auto inside = ProbeFeasibleAt(g, plan, system, Vector{500.0}, options);
  ASSERT_TRUE(inside.ok());
  EXPECT_TRUE(*inside);

  EXPECT_FALSE(eval.FeasibleAt(plan, Vector{1400.0}));
  auto outside = ProbeFeasibleAt(g, plan, system, Vector{1400.0}, options);
  ASSERT_TRUE(outside.ok());
  EXPECT_FALSE(*outside);
}

TEST(EngineTest, DeterministicGivenSeed) {
  const QueryGraph g = OneOpGraph(1e-3, 0.8);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 10.0;
  auto a = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(100.0, 10.0)}, options);
  auto b = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(100.0, 10.0)}, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->input_tuples, b->input_tuples);
  EXPECT_EQ(a->output_tuples, b->output_tuples);
  EXPECT_DOUBLE_EQ(a->mean_latency, b->mean_latency);
}

TEST(EngineTest, CalendarAndHeapQueuesGiveIdenticalResults) {
  // The calendar queue must be a drop-in replacement: same seed, same
  // trace, bit-identical SimulationResult under either implementation.
  const QueryGraph g = OneOpGraph(1e-3, 0.8);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions calendar;
  calendar.duration = 15.0;
  calendar.event_queue = EventQueueImpl::kCalendar;
  SimulationOptions heap = calendar;
  heap.event_queue = EventQueueImpl::kBinaryHeap;
  auto a = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(300.0, 15.0)}, calendar);
  auto b = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(300.0, 15.0)}, heap);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->input_tuples, b->input_tuples);
  EXPECT_EQ(a->output_tuples, b->output_tuples);
  EXPECT_EQ(a->processed_events, b->processed_events);
  EXPECT_EQ(a->mean_latency, b->mean_latency);  // bit-exact
  EXPECT_EQ(a->p99_latency, b->p99_latency);
  EXPECT_EQ(a->max_latency, b->max_latency);
  EXPECT_EQ(a->node_utilization, b->node_utilization);
}

TEST(EngineTest, ExactPercentilesMatchDefaultBelowReservoir) {
  // Short runs emit fewer outputs than the default reservoir, so the
  // sampled path must degrade to exactly the store-all answer.
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions sampled;
  sampled.duration = 10.0;
  SimulationOptions exact = sampled;
  exact.exact_percentiles = true;
  auto a = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(100.0, 10.0)}, sampled);
  auto b = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(100.0, 10.0)}, exact);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a->output_tuples, sampled.latency_reservoir);
  EXPECT_EQ(a->p50_latency, b->p50_latency);
  EXPECT_EQ(a->p95_latency, b->p95_latency);
  EXPECT_EQ(a->p99_latency, b->p99_latency);
  EXPECT_EQ(a->max_latency, b->max_latency);
}

TEST(EngineTest, PerSinkLatencyBreakdownCoversAllSinks) {
  // Two independent chains -> two sinks with distinct ids.
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("A");
  const InputStreamId i1 = g.AddInputStream("B");
  auto a = g.AddOperator({.name = "a", .kind = OperatorKind::kMap,
                          .cost = 1e-3},
                         {StreamRef::Input(i0)});
  auto b = g.AddOperator({.name = "b", .kind = OperatorKind::kMap,
                          .cost = 2e-3},
                         {StreamRef::Input(i1)});
  ASSERT_TRUE(a.ok() && b.ok());
  const SystemSpec system = SystemSpec::Homogeneous(2);
  SimulationOptions options;
  options.duration = 20.0;
  auto r = SimulatePlacement(g, Placement(2, {0, 1}), system,
                             {ConstantTrace(50.0, 20.0),
                              ConstantTrace(50.0, 20.0)},
                             options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->sink_latencies.size(), 2u);
  size_t total = 0;
  for (const auto& s : r->sink_latencies) {
    EXPECT_GT(s.outputs, 0u);
    EXPECT_GT(s.p50, 0.0);
    EXPECT_GE(s.p95, s.p50);
    total += s.outputs;
  }
  EXPECT_EQ(total, r->output_tuples);
}

TEST(EngineTest, HeterogeneousCapacityScalesService) {
  // Same op on a 4x node runs at 1/4 the utilization.
  const QueryGraph g = OneOpGraph(2e-3, 1.0);
  SimulationOptions options;
  options.duration = 30.0;
  auto slow = SimulatePlacement(g, Placement(1, {0}),
                                SystemSpec::Homogeneous(1, 1.0),
                                {ConstantTrace(100.0, 30.0)}, options);
  auto fast = SimulatePlacement(g, Placement(1, {0}),
                                SystemSpec::Homogeneous(1, 4.0),
                                {ConstantTrace(100.0, 30.0)}, options);
  ASSERT_TRUE(slow.ok() && fast.ok());
  EXPECT_NEAR(slow->max_node_utilization, 0.2, 0.04);
  EXPECT_NEAR(fast->max_node_utilization, 0.05, 0.015);
}

TEST(EngineTest, UnionMergesStreams) {
  QueryGraph g;
  const InputStreamId i0 = g.AddInputStream("A");
  const InputStreamId i1 = g.AddInputStream("B");
  auto u = g.AddOperator({.name = "u", .kind = OperatorKind::kUnion,
                          .cost = 1e-4},
                         {StreamRef::Input(i0), StreamRef::Input(i1)});
  ASSERT_TRUE(u.ok());
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 30.0;
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(40.0, 30.0),
                              ConstantTrace(60.0, 30.0)},
                             options);
  ASSERT_TRUE(r.ok());
  // Union emits one tuple per input tuple from either stream.
  EXPECT_NEAR(static_cast<double>(r->output_tuples),
              static_cast<double>(r->input_tuples), 5.0);
  EXPECT_NEAR(static_cast<double>(r->input_tuples) / options.duration, 100.0,
              8.0);
}

TEST(EngineTest, OperatorStatsTrackCountsAndCpu) {
  const QueryGraph g = OneOpGraph(2e-3, 0.5);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 40.0;
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(100.0, 40.0)}, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->op_stats.size(), 1u);
  const auto& s = r->op_stats[0];
  EXPECT_EQ(s.tuples_processed, r->input_tuples);
  EXPECT_EQ(s.tuples_emitted, r->output_tuples);
  EXPECT_EQ(s.pairs_probed, 0u);
  // CPU = processed * cost.
  EXPECT_NEAR(s.cpu_seconds,
              2e-3 * static_cast<double>(s.tuples_processed), 1e-6);
}

TEST(EngineTest, WarmupExcludesColdStartFromLatency) {
  // Near saturation the queue builds toward steady state over tens of
  // seconds; tuples arriving into the initially *empty* queue see
  // unrepresentatively low latency. Excluding the cold start raises the
  // measured mean; total tuple counts are unchanged.
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);

  SimulationOptions cold;
  cold.duration = 60.0;
  cold.seed = 99;
  SimulationOptions warm = cold;
  warm.warmup = 30.0;

  auto cold_run = SimulatePlacement(g, Placement(1, {0}), system,
                                    {ConstantTrace(970.0, 60.0)}, cold);
  auto warm_run = SimulatePlacement(g, Placement(1, {0}), system,
                                    {ConstantTrace(970.0, 60.0)}, warm);
  ASSERT_TRUE(cold_run.ok() && warm_run.ok());
  EXPECT_EQ(cold_run->output_tuples, warm_run->output_tuples);
  EXPECT_GT(warm_run->output_tuples,
            warm_run->sink_latencies[0].outputs);  // some samples excluded
  EXPECT_GT(warm_run->mean_latency, cold_run->mean_latency);

  SimulationOptions bad = cold;
  bad.warmup = 60.0;  // >= duration
  EXPECT_FALSE(SimulatePlacement(g, Placement(1, {0}), system,
                                 {ConstantTrace(10.0, 60.0)}, bad)
                   .ok());
}

TEST(EngineTest, LoadSheddingBoundsQueuesUnderOverload) {
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 30.0;
  options.shed_queue_threshold = 50;
  // rho = 2.0: without shedding the queue would grow to ~30k tasks.
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(2000.0, 30.0)}, options);
  ASSERT_TRUE(r.ok());
  // Roughly half the offered tuples must be shed; the backlog stays at
  // the shedding threshold instead of growing without bound.
  const double offered =
      static_cast<double>(r->input_tuples + r->shed_tuples);
  EXPECT_NEAR(static_cast<double>(r->shed_tuples) / offered, 0.5, 0.05);
  EXPECT_LE(r->final_backlog, options.shed_queue_threshold + 1);
  // The accepted tuples are all processed: throughput = capacity.
  EXPECT_NEAR(static_cast<double>(r->output_tuples) / options.duration,
              1000.0, 60.0);
  // Latency stays bounded by (threshold * service time).
  EXPECT_LT(r->p99_latency, 0.06);
}

TEST(EngineTest, SheddingConservesOfferedTuples) {
  // With deterministic evenly-spaced arrivals the offered volume is known
  // exactly: every offered tuple is either accepted or shed, never lost.
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 20.0;
  options.poisson_arrivals = false;
  options.shed_queue_threshold = 40;
  const double rate = 1800.0;  // rho = 1.8: well past the threshold
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(rate, options.duration)}, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->shed_tuples, 0u);
  EXPECT_LE(r->final_backlog, options.shed_queue_threshold + 1);
  // Conservation: accepted + shed = offered (evenly spaced arrivals give
  // exactly rate * duration offered tuples, +/- the boundary arrival).
  const auto offered = static_cast<size_t>(rate * options.duration);
  EXPECT_NEAR(static_cast<double>(r->input_tuples + r->shed_tuples),
              static_cast<double>(offered), 1.0);
  // Accepted tuples are all accounted for: emitted or still queued.
  EXPECT_EQ(r->input_tuples, r->output_tuples + r->final_backlog);
}

TEST(EngineTest, MaxEventsAbortNamesTheHotSpot) {
  // An overloaded run that trips the event guard must say where the
  // backlog piled up, not just that it aborted.
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 30.0;
  options.max_events = 20'000;
  auto r = SimulatePlacement(g, Placement(1, {0}), system,
                             {ConstantTrace(2000.0, 30.0)}, options);
  ASSERT_FALSE(r.ok());
  const std::string& msg = r.status().message();
  EXPECT_NE(msg.find("hottest node 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("operator 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("queued"), std::string::npos) << msg;
}

TEST(EngineTest, NoSheddingBelowThresholdOrWhenDisabled) {
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  SimulationOptions options;
  options.duration = 20.0;
  options.shed_queue_threshold = 50;
  auto light = SimulatePlacement(g, Placement(1, {0}), system,
                                 {ConstantTrace(300.0, 20.0)}, options);
  ASSERT_TRUE(light.ok());
  EXPECT_EQ(light->shed_tuples, 0u);

  options.shed_queue_threshold = 0;  // disabled
  auto unbounded = SimulatePlacement(g, Placement(1, {0}), system,
                                     {ConstantTrace(2000.0, 20.0)}, options);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(unbounded->shed_tuples, 0u);
  EXPECT_GT(unbounded->final_backlog, 1000u);
}

TEST(EngineTest, ValidatesInputs) {
  const QueryGraph g = OneOpGraph(1e-3, 1.0);
  const SystemSpec system = SystemSpec::Homogeneous(1);
  // Wrong trace count.
  EXPECT_FALSE(
      SimulatePlacement(g, Placement(1, {0}), system, {}, {}).ok());
  // Bad duration.
  SimulationOptions bad;
  bad.duration = -1.0;
  EXPECT_FALSE(SimulatePlacement(g, Placement(1, {0}), system,
                                 {ConstantTrace(1.0, 1.0)}, bad)
                   .ok());
  // Mismatched placement.
  EXPECT_FALSE(SimulatePlacement(g, Placement(1, {0, 0}), system,
                                 {ConstantTrace(1.0, 1.0)}, {})
                   .ok());
}

}  // namespace
}  // namespace rod::sim
