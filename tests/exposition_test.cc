// Prometheus text exposition tests: name sanitization, label escaping,
// cumulative bucket rendering, and the byte-exact golden scrape pinned
// by tests/golden/prometheus_metrics.txt.

#include "telemetry/exposition.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace rod::telemetry {
namespace {

TEST(SanitizePrometheusNameTest, ReplacesIllegalCharacters) {
  EXPECT_EQ(SanitizePrometheusName("engine.events_processed"),
            "engine_events_processed");
  EXPECT_EQ(SanitizePrometheusName("pool.queue_depth_high_water"),
            "pool_queue_depth_high_water");
  EXPECT_EQ(SanitizePrometheusName("a-b/c d"), "a_b_c_d");
  EXPECT_EQ(SanitizePrometheusName("legal_name:sub"), "legal_name:sub");
}

TEST(SanitizePrometheusNameTest, LeadingDigitGainsUnderscore) {
  EXPECT_EQ(SanitizePrometheusName("9lives"), "_9lives");
  EXPECT_EQ(SanitizePrometheusName("0"), "_0");
}

TEST(SanitizePrometheusNameTest, EmptyBecomesUnderscore) {
  EXPECT_EQ(SanitizePrometheusName(""), "_");
}

TEST(EscapePrometheusLabelValueTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapePrometheusLabelValue("plain"), "plain");
  EXPECT_EQ(EscapePrometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapePrometheusLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapePrometheusLabelValue("line1\nline2"), "line1\\nline2");
}

TEST(PrometheusTextTest, EmptyHistogramStillEmitsInfSumCount) {
  Telemetry tel;
  tel.histogram("empty.hist");  // Registered, never recorded.
  std::ostringstream out;
  WritePrometheusText(tel.Snapshot(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("empty_hist_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("empty_hist_sum 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("empty_hist_count 0\n"), std::string::npos) << text;
}

TEST(PrometheusTextTest, HistogramBucketsAreCumulativeAndMonotone) {
  Telemetry tel;
  Histogram h = tel.histogram("lat");
  const std::vector<double> values = {0.5, 1.0, 1.0, 3.0, 40.0, 1000.0};
  for (double v : values) h.Record(v);
  std::ostringstream out;
  WritePrometheusText(tel.Snapshot(), out);

  // Parse every lat_bucket line; cumulative counts must be nondecreasing
  // and the +Inf bucket must equal the total count.
  std::istringstream lines(out.str());
  std::string line;
  uint64_t prev = 0;
  uint64_t inf_count = 0;
  size_t bucket_lines = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("lat_bucket{", 0) != 0) continue;
    ++bucket_lines;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const uint64_t count = std::stoull(line.substr(space + 1));
    EXPECT_GE(count, prev) << "non-monotone cumulative bucket: " << line;
    prev = count;
    if (line.find("le=\"+Inf\"") != std::string::npos) inf_count = count;
  }
  EXPECT_GT(bucket_lines, 2u);
  EXPECT_EQ(inf_count, values.size());
  EXPECT_NE(out.str().find("lat_count 6\n"), std::string::npos);
}

TEST(PrometheusTextTest, LabelsAttachToEverySeries) {
  Telemetry tel;
  tel.Count("events", 3);
  tel.SetGauge("depth", 2.0);
  PrometheusOptions options;
  options.labels = {{"job", "rod"}, {"weird label", "a\"b\\c\nd"}};
  std::ostringstream out;
  WritePrometheusText(tel.Snapshot(), out, options);
  const std::string text = out.str();
  EXPECT_NE(text.find("events{job=\"rod\",weird_label=\"a\\\"b\\\\c\\nd\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("depth{job=\"rod\""), std::string::npos) << text;
  // Bucket series merge the identity labels with `le`.
  tel.Observe("lat", 1.0);
  std::ostringstream out2;
  WritePrometheusText(tel.Snapshot(), out2, options);
  EXPECT_NE(out2.str().find("lat_bucket{job=\"rod\""), std::string::npos)
      << out2.str();
}

TEST(FederatedPrometheusTextTest, OneTypeLinePerFamilyAcrossInstances) {
  // Coordinator (unlabeled) and two workers all export the same counter
  // family; a valid exposition may carry its # TYPE line only once.
  Telemetry coord;
  coord.Count("cluster.heartbeats", 9);
  Telemetry w0;
  w0.Count("cluster.heartbeats", 4);
  w0.Observe("cluster.ship_latency_us", 120.0);
  Telemetry w1;
  w1.Count("cluster.heartbeats", 5);
  w1.Observe("cluster.ship_latency_us", 80.0);

  std::vector<FederatedInstance> instances;
  instances.push_back({{}, coord.Snapshot()});
  instances.push_back({{{"worker", "0"}, {"name", "w0"}}, w0.Snapshot()});
  instances.push_back({{{"worker", "1"}, {"name", "w1"}}, w1.Snapshot()});
  std::ostringstream out;
  WriteFederatedPrometheusText(instances, out);
  const std::string text = out.str();

  size_t type_lines = 0;
  size_t pos = 0;
  while ((pos = text.find("# TYPE cluster_heartbeats ", pos)) !=
         std::string::npos) {
    ++type_lines;
    ++pos;
  }
  EXPECT_EQ(type_lines, 1u) << text;
  // Every instance keeps its own series, told apart by labels.
  EXPECT_NE(text.find("cluster_heartbeats 9\n"), std::string::npos) << text;
  EXPECT_NE(text.find("cluster_heartbeats{name=\"w0\",worker=\"0\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cluster_heartbeats{name=\"w1\",worker=\"1\"} 5\n"),
            std::string::npos)
      << text;
  // Histogram families federate too: one TYPE line, per-worker buckets.
  size_t hist_types = 0;
  pos = 0;
  while ((pos = text.find("# TYPE cluster_ship_latency_us histogram", pos)) !=
         std::string::npos) {
    ++hist_types;
    ++pos;
  }
  EXPECT_EQ(hist_types, 1u) << text;
  EXPECT_NE(text.find("cluster_ship_latency_us_bucket{name=\"w0\""),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("cluster_ship_latency_us_count{name=\"w1\""),
            std::string::npos)
      << text;
}

TEST(FederatedPrometheusTextTest, GoldenFederatedScrapeIsByteExact) {
  // A miniature cluster scrape: coordinator plane plus two workers with
  // overlapping and disjoint families, pinned byte-for-byte.
  TelemetryOptions topt;
  topt.manual_clock = true;
  Telemetry coord(topt);
  coord.Count("cluster.heartbeats", 42);
  coord.SetGauge("cluster.clock_offset_us.w0", 250.0);

  Telemetry w0(topt);
  w0.Count("engine.events_processed", 1000);
  w0.SetGauge("cluster.up", 1.0);
  Histogram ship0 = w0.histogram("cluster.ship_latency_us");
  ship0.Record(1.0);
  ship0.Record(150.0);

  Telemetry w1(topt);
  w1.Count("engine.events_processed", 900);
  w1.SetGauge("cluster.up", 1.0);

  std::vector<FederatedInstance> instances;
  instances.push_back({{}, coord.Snapshot()});
  instances.push_back({{{"worker", "0"}, {"name", "w0"}}, w0.Snapshot()});
  instances.push_back({{{"worker", "1"}, {"name", "w1"}}, w1.Snapshot()});
  std::ostringstream out;
  WriteFederatedPrometheusText(instances, out);

  const std::string golden_path =
      std::string(ROD_TESTS_SOURCE_DIR) + "/golden/federated_metrics.txt";
  std::ifstream golden_in(golden_path);
  ASSERT_TRUE(golden_in.good()) << "missing golden: " << golden_path;
  std::ostringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(out.str(), golden.str())
      << "--- actual ---\n"
      << out.str() << "--- golden (" << golden_path << ") ---\n"
      << golden.str();
}

TEST(PrometheusTextTest, GoldenScrapeIsByteExact) {
  TelemetryOptions topt;
  topt.manual_clock = true;
  Telemetry tel(topt);
  tel.Count("engine.events_processed", 1234);
  tel.Count("engine.tuples_emitted", 56);
  tel.SetGauge("event_queue.size_high_water", 17.0);
  tel.SetGauge("pool.queue_depth_high_water", 4.0);
  Histogram lat = tel.histogram("engine.latency_us");
  lat.Record(0.0);
  lat.Record(1.0);
  lat.Record(1.5);
  lat.Record(100.0);
  tel.RecordInstant("test", "tick");

  PrometheusOptions options;
  options.labels = {{"job", "rod_bench"}};
  std::ostringstream out;
  WritePrometheusText(tel.Snapshot(), out, options);

  const std::string golden_path =
      std::string(ROD_TESTS_SOURCE_DIR) + "/golden/prometheus_metrics.txt";
  std::ifstream golden_in(golden_path);
  ASSERT_TRUE(golden_in.good()) << "missing golden: " << golden_path;
  std::ostringstream golden;
  golden << golden_in.rdbuf();
  EXPECT_EQ(out.str(), golden.str())
      << "--- actual ---\n"
      << out.str() << "--- golden (" << golden_path << ") ---\n"
      << golden.str();
}

}  // namespace
}  // namespace rod::telemetry
