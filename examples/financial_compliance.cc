// Financial compliance — the paper's "very wide graphs" discussion
// (§7.3.1: a proof-of-concept compliance application needed 25 operators
// for 3 rules; full applications have hundreds of rules). Builds a wide
// rule-checking network over market feeds, scales the rule count, and
// shows how ROD's advantage and runtime cost behave as the graph widens.
// Also demonstrates the §6.1 lower-bound extension: market feeds never
// fall below a known floor during trading hours.
//
//   $ ./build/examples/financial_compliance [num_rules]

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "rod.h"

int main(int argc, char** argv) {
  const size_t max_rules = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;

  std::cout << "rules  operators  ROD ratio  LLF ratio  Connected  "
               "placement time\n";
  for (size_t rules = 6; rules <= max_rules; rules *= 2) {
    const rod::query::QueryGraph graph = rod::query::BuildComplianceGraph(
        {.num_feeds = 2, .num_rules = rules, .base_cost = 0.2e-3});
    auto model = rod::query::BuildLoadModel(graph);
    if (!model.ok()) {
      std::cerr << model.status().ToString() << "\n";
      return 1;
    }
    const auto system = rod::place::SystemSpec::Homogeneous(4);
    const rod::place::PlacementEvaluator eval(*model, system);

    const auto start = std::chrono::steady_clock::now();
    auto rod_plan = rod::place::RodPlace(*model, system);
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    if (!rod_plan.ok()) {
      std::cerr << rod_plan.status().ToString() << "\n";
      return 1;
    }

    rod::Vector avg(2, 1.0);
    auto llf = rod::place::LargestLoadFirstPlace(*model, system, avg);
    auto connected =
        rod::place::ConnectedLoadBalancePlace(*model, graph, system, avg);

    rod::geom::VolumeOptions vol;
    vol.num_samples = 8192;
    std::cout << "  " << rules << "      " << graph.num_operators()
              << "       " << *eval.RatioToIdeal(*rod_plan, vol) << "      "
              << *eval.RatioToIdeal(*llf, vol) << "      "
              << *eval.RatioToIdeal(*connected, vol) << "      "
              << elapsed.count() << " ms\n";
  }

  // Lower-bound extension (§6.1): during trading hours the primary feed is
  // known to carry a heavy floor rate — optimize the region that actually
  // occurs instead of the whole orthant. A small rule set leaves ROD short
  // of ideal, so knowing the floor genuinely changes the best plan.
  const rod::query::QueryGraph graph = rod::query::BuildComplianceGraph(
      {.num_feeds = 2, .num_rules = 5, .base_cost = 0.2e-3});
  auto model = rod::query::BuildLoadModel(graph);
  const auto system = rod::place::SystemSpec::Homogeneous(4);
  const rod::place::PlacementEvaluator eval(*model, system);

  rod::place::RodOptions bounded;
  // The floor pins 60% of the primary feed's single-stream headroom.
  bounded.lower_bound = {
      0.6 * system.TotalCapacity() / model->total_coeffs()[0], 0.0};
  std::cout << "\nsmall deployment (5 rules, " << graph.num_operators()
            << " ops) with trading-hour floor (feed0 >= "
            << bounded.lower_bound[0] << " msg/s):\n";
  auto plain = rod::place::RodPlace(*model, system);
  auto aware = rod::place::RodPlace(*model, system, bounded);
  if (!plain.ok() || !aware.ok()) {
    std::cerr << "placement failed\n";
    return 1;
  }
  const rod::Vector floor_norm = rod::geom::NormalizePoint(
      bounded.lower_bound, model->total_coeffs(), system.TotalCapacity());
  auto w_plain = eval.WeightMatrix(*plain);
  auto w_aware = eval.WeightMatrix(*aware);
  rod::geom::VolumeOptions vol;
  vol.num_samples = 16384;
  std::cout << "  feasible share above the floor: plain ROD = "
            << *rod::geom::FeasibleSet(*w_plain).RatioToIdealAbove(floor_norm,
                                                                   vol)
            << ", floor-aware ROD = "
            << *rod::geom::FeasibleSet(*w_aware).RatioToIdealAbove(floor_norm,
                                                                   vol)
            << "\n";
  return 0;
}
