// rod-place: command-line placement tool. Reads a textual query-graph
// description (see src/query/parser.h for the format), places it on a
// cluster with the chosen algorithm, and prints the plan plus its
// resiliency metrics — the workflow a downstream operator of a stream
// processing cluster would actually run.
//
//   $ ./build/examples/placement_tool graph.txt --nodes 4
//   $ ./build/examples/placement_tool graph.txt --capacities 2,1,1
//         --algorithm llf --rates 100,50
//   $ ./build/examples/placement_tool graph.txt --nodes 2
//         --lower-bound 50,0 --samples 65536
//
// (long invocations shown wrapped; pass them on one line)
//
// With no file argument, a demo graph (the paper's Example 2) is used.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "query/parser.h"
#include "rod.h"

namespace {

constexpr const char* kDemoGraph = R"(# paper Example 2 (Figure 4)
input I1
input I2
op o1 map cost=4e-3 inputs=I1
op o2 map cost=6e-3 inputs=o1
op o3 filter cost=9e-3 sel=0.5 inputs=I2
op o4 map cost=4e-3 inputs=o3
)";

rod::Vector ParseList(const std::string& csv) {
  rod::Vector out;
  std::istringstream is(csv);
  std::string part;
  while (std::getline(is, part, ',')) out.push_back(std::stod(part));
  return out;
}

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [graph.txt] [options]\n"
      << "  --nodes N            homogeneous cluster of N unit nodes\n"
      << "  --capacities a,b,... explicit per-node capacities\n"
      << "  --algorithm A        rod (default) | llf | random | connected |\n"
      << "                       correlation | clustered-rod\n"
      << "  --rates r1,r2,...    observed rates (llf/connected need them;\n"
      << "                       also evaluated as an operating point)\n"
      << "  --lower-bound b,...  known rate floor (rod only, paper §6.1)\n"
      << "  --samples N          QMC samples for the feasible ratio\n"
      << "  --seed S             seed for randomized algorithms\n"
      << "  --dot FILE           write the placed graph as Graphviz DOT\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  size_t nodes = 2;
  rod::Vector capacities;
  std::string algorithm = "rod";
  rod::Vector rates;
  rod::Vector lower_bound;
  size_t samples = 16384;
  uint64_t seed = 42;
  std::string dot_path;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return ++a < argc ? argv[a] : nullptr;
    };
    try {
      if (arg == "--nodes") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        nodes = std::strtoul(v, nullptr, 10);
      } else if (arg == "--capacities") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        capacities = ParseList(v);
      } else if (arg == "--algorithm") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        algorithm = v;
      } else if (arg == "--rates") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        rates = ParseList(v);
      } else if (arg == "--lower-bound") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        lower_bound = ParseList(v);
      } else if (arg == "--samples") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        samples = std::strtoul(v, nullptr, 10);
      } else if (arg == "--seed") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        seed = std::strtoull(v, nullptr, 10);
      } else if (arg == "--dot") {
        const char* v = next();
        if (!v) return Usage(argv[0]);
        dot_path = v;
      } else if (arg == "--help" || arg == "-h") {
        return Usage(argv[0]);
      } else if (arg.rfind("--", 0) == 0) {
        std::cerr << "unknown option " << arg << "\n";
        return Usage(argv[0]);
      } else {
        graph_path = arg;
      }
    } catch (const std::exception& e) {
      std::cerr << "bad value for " << arg << ": " << e.what() << "\n";
      return 2;
    }
  }

  // Load the graph.
  auto graph = graph_path.empty()
                   ? rod::query::ParseQueryGraph(kDemoGraph)
                   : rod::query::LoadQueryGraphFile(graph_path);
  if (!graph.ok()) {
    std::cerr << "graph: " << graph.status().ToString() << "\n";
    return 1;
  }
  auto model = graph->RequiresLinearization()
                   ? rod::query::BuildLinearizedLoadModel(*graph)
                   : rod::query::BuildLoadModel(*graph);
  if (!model.ok()) {
    std::cerr << "load model: " << model.status().ToString() << "\n";
    return 1;
  }
  const rod::place::SystemSpec system =
      capacities.empty() ? rod::place::SystemSpec::Homogeneous(nodes)
                         : rod::place::SystemSpec{capacities};
  if (!system.Validate().ok()) {
    std::cerr << "bad cluster spec\n";
    return 1;
  }
  if (rates.empty()) {
    rates.assign(graph->num_input_streams(), 1.0);
  }
  if (rates.size() != graph->num_input_streams()) {
    std::cerr << "--rates must list one rate per input stream\n";
    return 1;
  }

  // Place.
  rod::Rng rng(seed);
  rod::Result<rod::place::Placement> plan =
      rod::Status::InvalidArgument("unknown algorithm '" + algorithm + "'");
  if (algorithm == "rod") {
    rod::place::RodOptions options;
    options.lower_bound = lower_bound;
    plan = rod::place::RodPlace(*model, system, options);
  } else if (algorithm == "llf") {
    plan = rod::place::LargestLoadFirstPlace(*model, system, rates);
  } else if (algorithm == "random") {
    plan = rod::place::RandomPlace(*model, system, rng);
  } else if (algorithm == "connected") {
    plan = rod::place::ConnectedLoadBalancePlace(*model, *graph, system, rates);
  } else if (algorithm == "correlation") {
    rod::Matrix series(64, graph->num_input_streams());
    for (size_t t = 0; t < series.rows(); ++t) {
      for (size_t k = 0; k < series.cols(); ++k) {
        series(t, k) = rates[k] * rng.Uniform(0.25, 1.75);
      }
    }
    plan = rod::place::CorrelationBasedPlace(*model, system, series);
  } else if (algorithm == "clustered-rod") {
    auto sweep = rod::place::ClusteredRodPlace(*model, *graph, system);
    if (sweep.ok()) {
      plan = sweep->placement;
    } else {
      plan = sweep.status();
    }
  }
  if (!plan.ok()) {
    std::cerr << "placement: " << plan.status().ToString() << "\n";
    return 1;
  }

  // Report.
  std::cout << "graph: " << graph->num_operators() << " operators, "
            << graph->num_input_streams() << " input streams"
            << (model->has_aux_vars()
                    ? " (+" +
                          std::to_string(model->num_vars() -
                                         model->num_system_inputs()) +
                          " linearized variables)"
                    : "")
            << "\ncluster: " << system.num_nodes()
            << " nodes, total capacity " << system.TotalCapacity() << "\n"
            << "placement: " << rod::place::SerializePlacement(*plan)
            << "\n\n";

  const rod::place::PlacementEvaluator eval(*model, system);
  rod::geom::VolumeOptions vol;
  vol.num_samples = samples;
  auto report = rod::place::ExplainPlacement(eval, *plan, &*graph, vol);
  if (!report.ok()) {
    std::cerr << "evaluation: " << report.status().ToString() << "\n";
    return 1;
  }
  std::cout << *report;

  auto weights = eval.WeightMatrix(*plan);
  if (weights.ok()) {
    auto critical = rod::geom::CriticalDirection(*weights);
    if (critical.ok()) {
      std::cout << "most fragile rate mix:        ";
      for (double v : *critical) std::cout << " " << v;
      std::cout << "\n";
    }
  }
  std::cout << "at --rates {";
  for (size_t k = 0; k < rates.size(); ++k) {
    std::cout << (k ? ", " : "") << rates[k];
  }
  const rod::Vector util = eval.NodeUtilizationAt(*plan, rates);
  double peak = 0.0;
  for (double u : util) peak = std::max(peak, u);
  std::cout << "}: " << (eval.FeasibleAt(*plan, rates) ? "feasible"
                                                       : "OVERLOADED")
            << ", peak utilization " << peak << ", headroom "
            << (peak > 0 ? 1.0 / peak : 0.0) << "x\n";

  if (!dot_path.empty()) {
    std::ofstream out(dot_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << dot_path << "\n";
      return 1;
    }
    out << rod::query::ToGraphviz(*graph, &plan->assignment());
    std::cout << "wrote " << dot_path
              << " (render: dot -Tpng " << dot_path << " -o plan.png)\n";
  }
  return 0;
}
