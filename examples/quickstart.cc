// Quickstart: build a tiny continuous-query graph, derive its load model,
// place it resiliently with ROD, and inspect what the placement buys you.
//
//   $ ./build/examples/quickstart
//
// Walks through the library's core loop:
//   QueryGraph -> LoadModel -> RodPlace -> PlacementEvaluator.

#include <iostream>

#include "rod.h"

int main() {
  // 1. Describe the dataflow. Two input streams, two operator chains —
  //    the paper's running example (Figure 4): costs are CPU-seconds per
  //    tuple, selectivity is output-rate / input-rate.
  rod::query::QueryGraph graph;
  const auto sensors = graph.AddInputStream("sensors");
  const auto clicks = graph.AddInputStream("clicks");

  auto parse = graph.AddOperator(
      {.name = "parse", .kind = rod::query::OperatorKind::kMap, .cost = 4e-3},
      {rod::query::StreamRef::Input(sensors)});
  auto enrich = graph.AddOperator(
      {.name = "enrich", .kind = rod::query::OperatorKind::kMap, .cost = 6e-3},
      {rod::query::StreamRef::Op(*parse)});
  auto select = graph.AddOperator({.name = "select",
                                   .kind = rod::query::OperatorKind::kFilter,
                                   .cost = 9e-3,
                                   .selectivity = 0.5},
                                  {rod::query::StreamRef::Input(clicks)});
  auto count = graph.AddOperator(
      {.name = "count", .kind = rod::query::OperatorKind::kAggregate,
       .cost = 4e-3, .selectivity = 0.2},
      {rod::query::StreamRef::Op(*select)});
  if (!count.ok()) {
    std::cerr << "graph construction failed: " << count.status().ToString()
              << "\n";
    return 1;
  }

  // 2. Derive the linear load model: every operator's CPU demand as a
  //    linear function of the input stream rates (paper §2.2).
  auto model = rod::query::BuildLoadModel(graph);
  if (!model.ok()) {
    std::cerr << "load model failed: " << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Load coefficient matrix L^o (rows = operators, cols = "
               "streams):\n"
            << model->op_coeffs().ToString() << "\n";

  // 3. Place the operators on a 2-node cluster so the system tolerates the
  //    largest possible set of input-rate combinations without moving
  //    anything at runtime.
  const auto system = rod::place::SystemSpec::Homogeneous(2, /*capacity=*/1.0);
  auto placement = rod::place::RodPlace(*model, system);
  if (!placement.ok()) {
    std::cerr << "placement failed: " << placement.status().ToString() << "\n";
    return 1;
  }
  const char* names[] = {"parse", "enrich", "select", "count"};
  std::cout << "ROD placement:\n";
  for (size_t j = 0; j < placement->num_operators(); ++j) {
    std::cout << "  " << names[j] << " -> node " << placement->node_of(j)
              << "\n";
  }

  // 4. Evaluate: how much of the theoretically maximal feasible set does
  //    this plan keep, and what does a naive "keep chains together" plan
  //    lose?
  const rod::place::PlacementEvaluator eval(*model, system);
  const rod::place::Placement connected(2, {0, 0, 1, 1});
  std::cout << "\nfeasible-set ratio (1.0 = theoretical ideal):\n"
            << "  ROD:              " << *eval.RatioToIdeal(*placement) << "\n"
            << "  chains-together:  " << *eval.RatioToIdeal(connected) << "\n";

  // 5. Check a concrete operating point (rates in tuples/second).
  const rod::Vector rates = {90.0, 55.0};
  std::cout << "\nat rates {sensors: 90/s, clicks: 55/s}: "
            << (eval.FeasibleAt(*placement, rates) ? "feasible"
                                                   : "OVERLOADED")
            << " (per-node utilization:";
  for (double u : eval.NodeUtilizationAt(*placement, rates)) {
    std::cout << " " << u;
  }
  std::cout << ")\n";
  return 0;
}
