// Network traffic monitoring — the paper's motivating domain (§1): an
// aggregation-heavy monitoring query network over several links, driven by
// bursty self-similar traces in the tuple-level runtime. Shows the
// operational difference between a ROD placement and a load-balanced
// placement when the same burst hits both.
//
//   $ ./build/examples/traffic_monitoring [mean_load_fraction]
//
// mean_load_fraction (default 0.75) positions the average load relative
// to the ROD plan's feasible boundary; bursts then probe past it.

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "rod.h"

namespace {

void Report(const char* name, const rod::sim::SimulationResult& run) {
  std::cout << "  " << name << ":\n"
            << "    tuples in/out:      " << run.input_tuples << " / "
            << run.output_tuples << "\n"
            << "    latency p50/p95/p99: " << run.p50_latency * 1e3 << " / "
            << run.p95_latency * 1e3 << " / " << run.p99_latency * 1e3
            << " ms\n"
            << "    max utilization:    " << run.max_node_utilization << "\n"
            << "    overloaded windows: " << run.overloaded_windows << "/"
            << run.total_windows << (run.saturated ? "  (SATURATED)" : "")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const double load_fraction = argc > 1 ? std::atof(argv[1]) : 0.75;

  // The monitoring query network: per-link protocol demux feeding windowed
  // byte/packet aggregations plus a cross-link "top talkers" rollup.
  rod::query::TrafficMonitoringOptions topts;
  topts.num_links = 3;
  topts.windows = {1.0, 10.0, 60.0};
  const rod::query::QueryGraph graph =
      rod::query::BuildTrafficMonitoringGraph(topts);
  auto model = rod::query::BuildLoadModel(graph);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  const auto system = rod::place::SystemSpec::Homogeneous(3);
  std::cout << "monitoring " << topts.num_links << " links with "
            << graph.num_operators() << " operators on "
            << system.num_nodes() << " nodes\n";

  // Two placements: resilient (ROD) and average-rate load balancing (LLF).
  auto rod_plan = rod::place::RodPlace(*model, system);
  rod::Vector avg_rates(graph.num_input_streams(), 1.0);
  auto llf_plan =
      rod::place::LargestLoadFirstPlace(*model, system, avg_rates);
  if (!rod_plan.ok() || !llf_plan.ok()) {
    std::cerr << "placement failed\n";
    return 1;
  }

  const rod::place::PlacementEvaluator eval(*model, system);
  std::cout << "feasible-set ratio: ROD " << *eval.RatioToIdeal(*rod_plan)
            << ", LLF " << *eval.RatioToIdeal(*llf_plan) << "\n";

  // Drive both with the same bursty TCP-like traces.
  const rod::Vector util = eval.NodeUtilizationAt(*rod_plan, avg_rates);
  const double boundary =
      1.0 / *std::max_element(util.begin(), util.end());
  const double mean_rate = load_fraction * boundary;
  std::cout << "driving each link at mean " << mean_rate
            << " pkts/s (" << load_fraction << " of ROD's boundary), "
            << "TCP-like burstiness\n\n";

  rod::sim::SimulationOptions sopts;
  sopts.duration = 120.0;
  std::vector<rod::trace::RateTrace> traces;
  for (size_t k = 0; k < graph.num_input_streams(); ++k) {
    rod::Rng rng(0x7f1c + k);
    traces.push_back(rod::trace::GeneratePreset(
                         rod::trace::TracePreset::kTcp,
                         static_cast<size_t>(sopts.duration), 1.0, rng)
                         .ScaledToMean(mean_rate));
  }

  auto rod_run =
      rod::sim::SimulatePlacement(graph, *rod_plan, system, traces, sopts);
  auto llf_run =
      rod::sim::SimulatePlacement(graph, *llf_plan, system, traces, sopts);
  if (!rod_run.ok() || !llf_run.ok()) {
    std::cerr << "simulation failed\n";
    return 1;
  }
  Report("ROD placement", *rod_run);
  Report("LLF load balancing", *llf_run);

  std::cout << "\nROD's placement absorbs each link's bursts across all\n"
               "nodes; the load balancer is tuned to the average and lets\n"
               "bursts pin whole links to single machines.\n";
  return 0;
}
