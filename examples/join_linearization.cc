// Join linearization — the §6.2 extension end to end: a correlation query
// joining two streams has a load that is *quadratic* in the input rates,
// so the linear placement theory does not apply directly. The library cuts
// the graph at the join, introduces the join-output rate as an auxiliary
// variable, places with ROD in the extended space, and validates the
// placement in the tuple-level runtime.
//
//   $ ./build/examples/join_linearization

#include <iostream>

#include "rod.h"

int main() {
  // Intrusion-detection style query: filter both packet streams, join
  // within a half-second window on flow key, aggregate alerts.
  rod::query::QueryGraph graph;
  const auto lan = graph.AddInputStream("lan_packets");
  const auto wan = graph.AddInputStream("wan_packets");
  auto f_lan = graph.AddOperator({.name = "lan_filter",
                                  .kind = rod::query::OperatorKind::kFilter,
                                  .cost = 1e-3,
                                  .selectivity = 0.7},
                                 {rod::query::StreamRef::Input(lan)});
  auto f_wan = graph.AddOperator({.name = "wan_filter",
                                  .kind = rod::query::OperatorKind::kFilter,
                                  .cost = 1e-3,
                                  .selectivity = 0.7},
                                 {rod::query::StreamRef::Input(wan)});
  auto correlate = graph.AddOperator(
      {.name = "correlate",
       .kind = rod::query::OperatorKind::kJoin,
       .cost = 4e-5,          // per tuple pair probed
       .selectivity = 0.15,   // matches per pair
       .window = 0.5},        // seconds
      {rod::query::StreamRef::Op(*f_lan), rod::query::StreamRef::Op(*f_wan)});
  auto alerts = graph.AddOperator(
      {.name = "alerts", .kind = rod::query::OperatorKind::kAggregate,
       .cost = 2e-3, .selectivity = 0.05},
      {rod::query::StreamRef::Op(*correlate)});
  if (!alerts.ok()) {
    std::cerr << alerts.status().ToString() << "\n";
    return 1;
  }

  // The strict linear builder refuses this graph...
  auto strict = rod::query::BuildLoadModel(graph);
  std::cout << "strict linear model: " << strict.status().ToString() << "\n";

  // ...so linearize: the join's output rate becomes variable r_3, and the
  // join's load becomes (cost/selectivity) * r_3 (paper Example 3).
  auto model = rod::query::BuildLinearizedLoadModel(graph);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "linearized model: " << model->num_vars() << " variables ("
            << model->num_system_inputs() << " physical + "
            << model->num_vars() - model->num_system_inputs()
            << " auxiliary)\n"
            << "extended L^o:\n"
            << model->op_coeffs().ToString() << "\n";

  // The auxiliary variable's value at a physical point:
  const rod::Vector rates = {80.0, 80.0};
  const rod::Vector extended = model->ExtendRates(rates);
  std::cout << "at 80/s on both streams, join output rate = "
            << extended.back() << " matches/s\n";

  // Place with ROD over the extended space and sanity-check at runtime.
  const auto system = rod::place::SystemSpec::Homogeneous(2);
  auto plan = rod::place::RodPlace(*model, system);
  if (!plan.ok()) {
    std::cerr << plan.status().ToString() << "\n";
    return 1;
  }
  const char* names[] = {"lan_filter", "wan_filter", "correlate", "alerts"};
  for (size_t j = 0; j < plan->num_operators(); ++j) {
    std::cout << "  " << names[j] << " -> node " << plan->node_of(j) << "\n";
  }

  const rod::place::PlacementEvaluator eval(*model, system);
  rod::sim::SimulationOptions sopts;
  sopts.duration = 30.0;
  // Because the join's load is quadratic, a modest rate increase blows
  // past the boundary: check both sides of it, analytically and in the
  // tuple-level runtime.
  for (double r : {80.0, 160.0}) {
    const rod::Vector point = {r, r};
    auto probed =
        rod::sim::ProbeFeasibleAt(graph, *plan, system, point, sopts);
    if (!probed.ok()) {
      std::cerr << probed.status().ToString() << "\n";
      return 1;
    }
    std::cout << "at " << r << "/s + " << r << "/s: analytic = "
              << (eval.FeasibleAt(*plan, point) ? "feasible" : "OVERLOADED")
              << ", runtime probe = "
              << (*probed ? "feasible" : "OVERLOADED") << "\n";
  }
  std::cout << "\nBecause the join's load is quadratic, doubling both\n"
               "input rates quadruples its CPU demand -- the linearized\n"
               "model captures this exactly through the auxiliary rate.\n";
  return 0;
}
