// rod-coordinator: the cluster control process. Waits for N workers to
// register on the control port, runs ROD placement over their advertised
// capacities, ships the serialized plan, starts the workload, monitors
// heartbeats, repairs worker failures via the plan-diff protocol, and
// writes an end-of-run cluster report (plus the incident flight-recorder
// artifact when a worker died mid-run).
//
//   $ ./build/tools/rod_coordinator --port 7341 --workers 3 \
//         --duration 3 --report report.json --flightrecorder fr.json
//
// The query graph defaults to the paper's random-trees workload
// (--gen-streams/--gen-ops/--gen-seed); pass --graph FILE to load the
// textual query-graph format instead.

#include <charconv>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "rod.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --workers N [options]\n"
      "options:\n"
      "  --workers N           workers to wait for before planning (required)\n"
      "  --port PORT           control port on 127.0.0.1 (default: ephemeral,\n"
      "                        printed on stdout as 'control_port=...')\n"
      "  --duration S          seconds of source generation (default 2)\n"
      "  --rate R              tuples/sec per input stream (default 200)\n"
      "  --seed S              workload seed (default 1)\n"
      "  --heartbeat-interval S  worker heartbeat cadence (default 0.25)\n"
      "  --heartbeat-timeout S   failure-detection timeout (default 1.0)\n"
      "  --register-timeout S  registration deadline (default 30)\n"
      "  --graph FILE          textual query graph (default: generated)\n"
      "  --gen-streams D       generated workload input streams (default 3)\n"
      "  --gen-ops M           generated operators per tree (default 6)\n"
      "  --gen-seed S          generator seed (default 7)\n"
      "  --http-port PORT      serve the coordinator observability plane\n"
      "  --report PATH         write the cluster report JSON here\n"
      "  --flightrecorder PATH write the incident artifact JSON here\n"
      "  --trace PATH          dump the coordinator's Chrome trace here\n"
      "                        (merge with rod_trace_merge)\n",
      argv0);
  return 2;
}

bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr) return false;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseU16(const char* text, uint16_t* out) {
  uint64_t value = 0;
  if (!ParseU64(text, &value) || value > 65535) return false;
  *out = static_cast<uint16_t>(value);
  return true;
}

bool ParseF64(const char* text, double* out) {
  if (text == nullptr) return false;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

int main(int argc, char** argv) {
  rod::cluster::CoordinatorOptions options;
  std::string graph_file;
  std::string report_path;
  std::string flightrecorder_path;
  uint64_t workers = 0;
  uint64_t gen_streams = 3;
  uint64_t gen_ops = 6;
  uint64_t gen_seed = 7;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--workers") == 0) {
      if (!ParseU64(value, &workers)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!ParseU16(value, &options.control_port)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--duration") == 0) {
      if (!ParseF64(value, &options.duration)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--rate") == 0) {
      if (!ParseF64(value, &options.default_rate)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!ParseU64(value, &options.seed)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--heartbeat-interval") == 0) {
      if (!ParseF64(value, &options.heartbeat_interval)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--heartbeat-timeout") == 0) {
      if (!ParseF64(value, &options.heartbeat_timeout)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--register-timeout") == 0) {
      if (!ParseF64(value, &options.register_timeout)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--graph") == 0) {
      if (value == nullptr) return Usage(argv[0]);
      graph_file = value;
      ++i;
    } else if (std::strcmp(arg, "--gen-streams") == 0) {
      if (!ParseU64(value, &gen_streams)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--gen-ops") == 0) {
      if (!ParseU64(value, &gen_ops)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--gen-seed") == 0) {
      if (!ParseU64(value, &gen_seed)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--http-port") == 0) {
      if (!ParseU16(value, &options.http_port)) return Usage(argv[0]);
      options.serve_http = true;
      ++i;
    } else if (std::strcmp(arg, "--report") == 0) {
      if (value == nullptr) return Usage(argv[0]);
      report_path = value;
      ++i;
    } else if (std::strcmp(arg, "--flightrecorder") == 0) {
      if (value == nullptr) return Usage(argv[0]);
      flightrecorder_path = value;
      ++i;
    } else if (std::strcmp(arg, "--trace") == 0) {
      if (value == nullptr) return Usage(argv[0]);
      options.trace_path = value;
      ++i;
    } else {
      return Usage(argv[0]);
    }
  }
  if (workers == 0) return Usage(argv[0]);
  options.expected_workers = static_cast<size_t>(workers);

  rod::query::QueryGraph graph;
  if (!graph_file.empty()) {
    auto loaded = rod::query::LoadQueryGraphFile(graph_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "rod_coordinator: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(loaded.value());
  } else {
    rod::query::GraphGenOptions gen;
    gen.num_input_streams = static_cast<size_t>(gen_streams);
    gen.ops_per_tree = static_cast<size_t>(gen_ops);
    rod::Rng rng(gen_seed);
    graph = rod::query::GenerateRandomTrees(gen, rng);
  }

  rod::cluster::Coordinator coordinator(std::move(graph),
                                        std::move(options));
  rod::Status status = coordinator.Listen();
  if (status.ok()) {
    std::printf("control_port=%u\n", coordinator.port());
    std::fflush(stdout);
    status = coordinator.Run();
  }

  // Write artifacts even on failure: a half-run's report and incident
  // notes are exactly what a post-mortem needs.
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (out) coordinator.WriteReportJson(out);
  }
  if (!flightrecorder_path.empty()) {
    std::ofstream out(flightrecorder_path);
    if (out) coordinator.flight_recorder().WriteJson(out);
  }

  if (!status.ok()) {
    std::fprintf(stderr, "rod_coordinator: %s\n", status.ToString().c_str());
    return 1;
  }
  const rod::cluster::ClusterReport& report = coordinator.report();
  std::printf(
      "cluster run done: workers=%zu plan_version=%llu "
      "plan_ship_ms=%.2f generated=%llu delivered=%llu lost=%llu "
      "incident=%s\n",
      report.num_workers,
      static_cast<unsigned long long>(report.plan_version),
      report.plan_ship_seconds * 1e3,
      static_cast<unsigned long long>(report.totals.generated),
      static_cast<unsigned long long>(report.totals.delivered),
      static_cast<unsigned long long>(report.totals.lost_tuples),
      report.had_incident ? "yes" : "no");
  return 0;
}
