// rod-trace-merge: merges per-process Chrome trace dumps (written by
// rod_coordinator --trace and rod_worker --trace) into one trace on the
// coordinator clock. Each input dump carries its coordinator-estimated
// clock offset in its top-level "rod" metadata; the merge rebases every
// timestamp by that offset and gives each process its own named row, so
// a kill-9 incident reads as a single aligned timeline in
// chrome://tracing / Perfetto.
//
//   $ ./build/tools/rod_trace_merge -o merged.json \
//         coordinator.trace.json w0.trace.json w1.trace.json

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/trace_merge.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-o OUTPUT] TRACE.json [TRACE.json ...]\n"
               "Merges per-process Chrome trace dumps onto the\n"
               "coordinator clock (default output: stdout).\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0 ||
        std::strcmp(argv[i], "--output") == 0) {
      if (i + 1 >= argc) return Usage(argv[0]);
      output_path = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      return Usage(argv[0]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) return Usage(argv[0]);

  std::vector<rod::telemetry::TraceDump> dumps;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "rod_trace_merge: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    // Strip any directory prefix for the fallback row label.
    const size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    auto dump = rod::telemetry::ParseChromeTraceDump(text, base);
    if (!dump.ok()) {
      std::fprintf(stderr, "rod_trace_merge: %s: %s\n", path.c_str(),
                   dump.status().ToString().c_str());
      return 1;
    }
    dumps.push_back(std::move(dump.value()));
  }

  rod::Status merged;
  if (output_path.empty()) {
    merged = rod::telemetry::MergeChromeTraces(dumps, std::cout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "rod_trace_merge: cannot write %s\n",
                   output_path.c_str());
      return 1;
    }
    merged = rod::telemetry::MergeChromeTraces(dumps, out);
  }
  if (!merged.ok()) {
    std::fprintf(stderr, "rod_trace_merge: %s\n", merged.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "rod_trace_merge: merged %zu dumps%s%s\n",
               dumps.size(), output_path.empty() ? "" : " into ",
               output_path.c_str());
  return 0;
}
