// rod-worker: one cluster worker process. Dials the coordinator on
// loopback, registers, and hosts whatever operator partition the shipped
// plan assigns to it until the coordinator orders shutdown (or dies).
//
//   $ ./build/tools/rod_worker --coordinator 7341
//   $ ./build/tools/rod_worker --coordinator 7341 --capacity 0.5 \
//         --http-port 9101 --name rack1-w0
//
// The process serves its own observability plane (/metrics, /healthz,
// /readyz, /flightrecorder) unless --no-http is given.

#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>

#include "rod.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --coordinator PORT [options]\n"
      "options:\n"
      "  --coordinator PORT  coordinator control port on 127.0.0.1 (required)\n"
      "  --data-port PORT    peer tuple listen port (default: ephemeral)\n"
      "  --http-port PORT    observability plane port (default: ephemeral)\n"
      "  --no-http           do not serve the observability plane\n"
      "  --capacity C        advertised CPU capacity (default 1.0)\n"
      "  --name NAME         diagnostic label (default worker-<pid>)\n"
      "  --connect-timeout S give up dialing after S seconds (default 10)\n"
      "  --trace PATH        dump this process's Chrome trace on exit\n"
      "                      (merge with rod_trace_merge)\n",
      argv0);
  return 2;
}

bool ParseU16(const char* text, uint16_t* out) {
  if (text == nullptr) return false;
  unsigned value = 0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  if (ec != std::errc() || ptr != end || value > 65535) return false;
  *out = static_cast<uint16_t>(value);
  return true;
}

bool ParseF64(const char* text, double* out) {
  if (text == nullptr) return false;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

int main(int argc, char** argv) {
  rod::cluster::WorkerOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--coordinator") == 0) {
      if (!ParseU16(value, &options.coordinator_port)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--data-port") == 0) {
      if (!ParseU16(value, &options.data_port)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--http-port") == 0) {
      if (!ParseU16(value, &options.http_port)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--no-http") == 0) {
      options.serve_http = false;
    } else if (std::strcmp(arg, "--capacity") == 0) {
      if (!ParseF64(value, &options.capacity)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--name") == 0) {
      if (value == nullptr) return Usage(argv[0]);
      options.name = value;
      ++i;
    } else if (std::strcmp(arg, "--connect-timeout") == 0) {
      if (!ParseF64(value, &options.connect_timeout)) return Usage(argv[0]);
      ++i;
    } else if (std::strcmp(arg, "--trace") == 0) {
      if (value == nullptr) return Usage(argv[0]);
      options.trace_path = value;
      ++i;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.coordinator_port == 0) return Usage(argv[0]);

  rod::cluster::Worker worker(std::move(options));
  const rod::Status status = worker.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "rod_worker: %s\n", status.ToString().c_str());
    return 1;
  }
  const rod::cluster::WorkerCounters& c = worker.counters();
  std::fprintf(stderr,
               "rod_worker %u done: generated=%llu processed=%llu "
               "delivered=%llu shipped=%llu received=%llu lost=%llu\n",
               worker.worker_id(),
               static_cast<unsigned long long>(c.generated),
               static_cast<unsigned long long>(c.processed),
               static_cast<unsigned long long>(c.delivered),
               static_cast<unsigned long long>(c.shipped),
               static_cast<unsigned long long>(c.received),
               static_cast<unsigned long long>(c.lost_tuples));
  return 0;
}
