// trace-convert: builds segmented binary arrival stores (trace/store)
// from the repo's trace interchange forms, inspects them, and verifies
// them. One store file holds one input stream's arrivals; the engine
// replays a set of them through SimulationOptions::replay.
//
//   # Materialize a rate-trace CSV into arrivals and store them
//   $ ./build/tools/trace_convert --csv trace.csv --out trace.rodtrc \
//         --seed 7 --duration 60 --self-check
//
//   # Several CSVs -> one store per input stream (out gets .s<k> inserted)
//   $ ./build/tools/trace_convert --csv a.csv --csv b.csv --out run.rodtrc
//
//   # Convert a raw timestamp log (one arrival instant per line)
//   $ ./build/tools/trace_convert --timestamps arrivals.log --out t.rodtrc
//
//   # Inspect / verify an existing store
//   $ ./build/tools/trace_convert --info t.rodtrc
//   $ ./build/tools/trace_convert --verify t.rodtrc
//
// (long invocations shown wrapped; pass them on one line)

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "rod.h"

namespace {

using rod::trace::store::ArrivalRecord;
using rod::trace::store::ReaderOptions;
using rod::trace::store::SegmentReader;
using rod::trace::store::SegmentWriter;
using rod::trace::store::StoreInfo;
using rod::trace::store::WriterOptions;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [inputs] [options]\n"
      "inputs (choose one kind; --csv may repeat, one stream each):\n"
      "  --csv FILE         rate-trace CSV (SaveCsv form); arrivals are\n"
      "                     materialized with the engine's driver\n"
      "  --timestamps FILE  raw arrival-timestamp log, one instant per line\n"
      "  --info STORE       print an existing store's manifest and exit\n"
      "  --verify STORE     full integrity scan of an existing store\n"
      "options:\n"
      "  --out PATH         output store (several streams: .s<k> inserted\n"
      "                     before the extension); required for conversion\n"
      "  --seed S           materialization seed (default 0xdecaf5eed)\n"
      "  --duration D       materialization horizon in seconds (default 60)\n"
      "  --even             evenly spaced arrivals instead of Poisson\n"
      "  --records-per-segment N  segment capacity (default 65536)\n"
      "  --self-check       re-read every written store on both the mmap\n"
      "                     and pread paths and compare to the source\n",
      argv0);
  return 2;
}

bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr) return false;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseF64(const char* text, double* out) {
  if (text == nullptr) return false;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, *out);
  return ec == std::errc() && ptr == end;
}

/// run.rodtrc -> run.s2.rodtrc (stream 2 of a multi-stream conversion).
std::string StreamPath(const std::string& out, size_t k, size_t streams) {
  if (streams == 1) return out;
  const size_t dot = out.rfind('.');
  const std::string tag = ".s" + std::to_string(k);
  if (dot == std::string::npos || dot == 0) return out + tag;
  return out.substr(0, dot) + tag + out.substr(dot);
}

void PrintInfo(const std::string& path, const StoreInfo& info) {
  std::printf("%s\n", path.c_str());
  std::printf("  records            %" PRIu64 "\n", info.total_records);
  std::printf("  segments           %" PRIu64 " x %u records\n",
              info.num_segments, info.records_per_segment);
  std::printf("  streams            %u\n", info.num_streams);
  std::printf("  file bytes         %" PRIu64 "\n", info.file_bytes());
  std::printf("  time span          [%.6f, %.6f] s\n", info.time_lo,
              info.time_hi);
}

/// Writes one stream's arrival instants as a store file.
rod::Status WriteStore(const std::vector<double>& arrivals, uint32_t stream,
                       const std::string& path, const WriterOptions& options) {
  return rod::trace::store::WriteTimestamps(arrivals, stream, path, options);
}

/// Self-check: reopen `path` on the mmap path and the pread path, run the
/// full integrity scan, and compare every record against `expect`.
rod::Status SelfCheck(const std::string& path,
                      const std::vector<double>& expect) {
  for (const bool use_mmap : {true, false}) {
    ReaderOptions opts;
    opts.use_mmap = use_mmap;
    opts.resident_segments = 2;
    auto reader = SegmentReader::Open(path, opts);
    ROD_RETURN_IF_ERROR(reader.status());
    ROD_RETURN_IF_ERROR(reader->VerifyAll());
    rod::trace::store::BatchCursor cursor(&*reader);
    size_t i = 0;
    for (;;) {
      auto span = cursor.NextSpan();
      ROD_RETURN_IF_ERROR(span.status());
      if (span->empty()) break;
      for (const ArrivalRecord& r : *span) {
        if (i >= expect.size() || r.time != expect[i]) {
          return rod::Status::Internal(
              "self-check mismatch at record " + std::to_string(i) +
              " (path " + (use_mmap ? "mmap" : "pread") + ")");
        }
        ++i;
      }
      cursor.Advance(span->size());
    }
    if (i != expect.size()) {
      return rod::Status::Internal(
          "self-check read " + std::to_string(i) + " records, expected " +
          std::to_string(expect.size()));
    }
  }
  return rod::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> csv_paths;
  std::vector<std::string> ts_paths;
  std::vector<std::string> info_paths;
  std::vector<std::string> verify_paths;
  std::string out;
  uint64_t seed = 0xdecaf5eedULL;
  double duration = 60.0;
  bool poisson = true;
  bool self_check = false;
  WriterOptions wopts;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto next = [&]() -> const char* {
      return ++a < argc ? argv[a] : nullptr;
    };
    if (arg == "--csv") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      csv_paths.push_back(v);
    } else if (arg == "--timestamps") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      ts_paths.push_back(v);
    } else if (arg == "--info") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      info_paths.push_back(v);
    } else if (arg == "--verify") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      verify_paths.push_back(v);
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out = v;
    } else if (arg == "--seed") {
      if (!ParseU64(next(), &seed)) return Usage(argv[0]);
    } else if (arg == "--duration") {
      if (!ParseF64(next(), &duration) || duration <= 0.0) {
        return Usage(argv[0]);
      }
    } else if (arg == "--even") {
      poisson = false;
    } else if (arg == "--records-per-segment") {
      uint64_t n = 0;
      if (!ParseU64(next(), &n) || n == 0 || n > UINT32_MAX) {
        return Usage(argv[0]);
      }
      wopts.records_per_segment = static_cast<uint32_t>(n);
    } else if (arg == "--self-check") {
      self_check = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return Usage(argv[0]);
    }
  }

  // Inspection modes need no output path and run before any conversion.
  for (const std::string& path : info_paths) {
    auto reader = SegmentReader::Open(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s\n", reader.status().ToString().c_str());
      return 1;
    }
    PrintInfo(path, reader->info());
  }
  for (const std::string& path : verify_paths) {
    auto reader = SegmentReader::Open(path);
    rod::Status status =
        reader.ok() ? reader->VerifyAll() : reader.status();
    if (!status.ok()) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   status.ToString().c_str());
      return 1;
    }
    std::printf("OK   %s (%" PRIu64 " records, %" PRIu64 " segments)\n",
                path.c_str(), reader->info().total_records,
                reader->info().num_segments);
  }

  const bool converting = !csv_paths.empty() || !ts_paths.empty();
  if (!converting) {
    if (info_paths.empty() && verify_paths.empty()) return Usage(argv[0]);
    return 0;
  }
  if (!csv_paths.empty() && !ts_paths.empty()) {
    std::fprintf(stderr, "mix of --csv and --timestamps; pick one kind\n");
    return Usage(argv[0]);
  }
  if (out.empty()) {
    std::fprintf(stderr, "conversion needs --out\n");
    return Usage(argv[0]);
  }

  // Gather one arrival vector per stream.
  std::vector<std::vector<double>> streams;
  if (!csv_paths.empty()) {
    std::vector<rod::trace::RateTrace> traces;
    for (const std::string& path : csv_paths) {
      auto trace = rod::trace::LoadCsv(path);
      if (!trace.ok()) {
        std::fprintf(stderr, "error loading '%s': %s\n", path.c_str(),
                     trace.status().ToString().c_str());
        return 1;
      }
      traces.push_back(std::move(*trace));
    }
    streams = rod::sim::MaterializeArrivals(traces, poisson, seed, duration);
  } else {
    for (const std::string& path : ts_paths) {
      auto ts = rod::trace::LoadTimestampLog(path);
      if (!ts.ok()) {
        std::fprintf(stderr, "error loading '%s': %s\n", path.c_str(),
                     ts.status().ToString().c_str());
        return 1;
      }
      streams.push_back(std::move(*ts));
    }
  }

  for (size_t k = 0; k < streams.size(); ++k) {
    const std::string path = StreamPath(out, k, streams.size());
    const rod::Status written =
        WriteStore(streams[k], static_cast<uint32_t>(k), path, wopts);
    if (!written.ok()) {
      std::fprintf(stderr, "error writing '%s': %s\n", path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    if (self_check) {
      const rod::Status checked = SelfCheck(path, streams[k]);
      if (!checked.ok()) {
        std::fprintf(stderr, "self-check failed for '%s': %s\n", path.c_str(),
                     checked.ToString().c_str());
        return 1;
      }
    }
    auto reader = SegmentReader::Open(path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error reopening '%s': %s\n", path.c_str(),
                   reader.status().ToString().c_str());
      return 1;
    }
    PrintInfo(path, reader->info());
    if (self_check) std::printf("  self-check       OK (mmap + pread)\n");
  }
  return 0;
}
